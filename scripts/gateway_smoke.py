#!/usr/bin/env python
"""CI gateway smoke: routing affinity, node death, failover, metrics.

Boots one in-process gateway fronting two real ``repro serve --register``
subprocesses, then proves the control-plane contract end to end:

1. the fleet registers and turns healthy;
2. the same submission routes to the same node twice, and the second time
   is answered from that node's result cache (digest affinity);
3. a SIGKILLed node's outstanding jobs are replayed onto the survivor from
   the gateway's replica journal, and every job still finishes;
4. the gateway's ``/v1/metrics`` scrape passes the metrics-families gate
   (``check_metrics_families.py --no-default-families``).

Subprocesses matter: SIGKILL gives the victim no chance to flush or
deregister, which is exactly what the replication design must absorb.
Exit code 0 when every stage holds; 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.gateway import create_gateway, node_id_for_url  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

import check_metrics_families  # noqa: E402

#: Large enough that a kill right after submission lands while work is
#: genuinely outstanding, small enough for CI.
JOB = {"type": "quantize_tensor", "params": {"rows": 192, "cols": 512}}

GATEWAY_FAMILIES = (
    "repro_gateway_requests_total",
    "repro_gateway_proxy_seconds",
    "repro_gateway_nodes",
    "repro_gateway_heartbeats_total",
    "repro_gateway_replicated_lines_total",
    "repro_gateway_failover_replays_total",
)


def spawn_node(gateway_url: str, journal_dir: Path) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve --register`` as a subprocess; return (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "2",
            "--journal", str(journal_dir),
            "--register", gateway_url,
            "--heartbeat-interval", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30.0
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"error: node exited early (rc={proc.poll()}):\n{banner}")
        banner += line
        if line.startswith("repro service listening on "):
            url = line.split()[-1].strip()
            threading.Thread(target=proc.stdout.read, daemon=True).start()
            return proc, url
    raise SystemExit(f"error: no listening banner within 30s:\n{banner}")


def wait_done(client: ServiceClient, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    record = {}
    while time.monotonic() < deadline:
        record = client.job(job_id)
        if record["state"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.1)
    raise SystemExit(f"error: job {job_id} not terminal within {timeout}s: {record}")


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as tmp:
        base = Path(tmp)
        gateway = create_gateway(
            port=0,
            state_dir=str(base / "state"),
            suspect_after=1.0,
            dead_after=2.5,
            sweep_interval=0.1,
            node_timeout=10.0,
        )
        threading.Thread(target=gateway.serve_forever, daemon=True).start()
        gateway_url = f"http://127.0.0.1:{gateway.port}"
        print(f"gateway listening on {gateway_url}")

        nodes: list[tuple[subprocess.Popen, str]] = []
        try:
            for i in range(2):
                nodes.append(spawn_node(gateway_url, base / f"journal-{i}"))
            client = ServiceClient(gateway_url, timeout=15.0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.health()["nodes"]["healthy"] == 2:
                    break
                time.sleep(0.1)
            else:
                raise SystemExit("error: fleet never reached 2 healthy nodes")
            print("fleet healthy: 2 nodes registered")

            # Stage 1: digest affinity — same work, same node, cached reply.
            first = client.request("POST", "/v1/jobs", JOB)
            wait_done(client, first["job_id"])
            second = client.request("POST", "/v1/jobs", JOB)
            if second["node"] != first["node"]:
                failures.append(
                    f"affinity: resubmission moved nodes "
                    f"({first['node']} -> {second['node']})"
                )
            if second.get("cache_hit") is not True:
                failures.append(f"affinity: second submission not a cache hit: {second}")
            print(f"affinity OK: digest {first['digest'][:12]} pinned to {first['node']}")

            # Stage 2: SIGKILL the node that owns fresh work; every job must
            # still finish via replica-journal failover onto the survivor.
            records = [
                client.request(
                    "POST", "/v1/jobs",
                    {"type": JOB["type"], "params": {**JOB["params"], "seed": seed}},
                )
                for seed in range(1, 7)
            ]
            by_node = {node_id_for_url(url): proc for proc, url in nodes}
            victim_id = records[0]["node"]
            by_node[victim_id].send_signal(signal.SIGKILL)
            print(f"killed {victim_id} with {len(records)} jobs in flight")
            for record in records:
                final = wait_done(client, record["job_id"])
                if final["state"] != "done":
                    failures.append(f"failover: job {record['job_id']} -> {final['state']}")
            counts = client.health()["nodes"]
            if counts["dead"] + counts["suspect"] < 1:
                failures.append(f"failover: victim still counted healthy: {counts}")
            print(f"failover OK: all {len(records)} jobs done, node counts {counts}")

            # Stage 3: the gateway's own metric families, via the CI gate.
            gate_argv = ["--url", gateway_url, "--no-default-families"]
            for family in GATEWAY_FAMILIES:
                gate_argv += ["--require", family]
            if check_metrics_families.main(gate_argv) != 0:
                failures.append("metrics: gateway scrape failed the families gate")
        finally:
            for proc, _url in nodes:
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            gateway.close()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gateway smoke: all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
