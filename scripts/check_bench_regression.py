#!/usr/bin/env python3
"""CI perf-regression gate: compare fresh pytest-benchmark JSON to a baseline.

Usage::

    python scripts/check_bench_regression.py \
        --baseline BENCH_kernels.json --current bench_current.json \
        [--tolerance 0.40] [--json gate_report.json]

Benchmarks are matched by name; for every matched benchmark the gate compares
the fresh ``stats.mean`` against the baseline's and **fails (exit 1) when any
matched benchmark regressed beyond the tolerance** — the default 40% absorbs
shared-runner noise while still catching order-of-magnitude slips like losing
the batched zero-point search or the artifact memo.  Benchmarks present on
only one side are reported but never fail the gate (new benchmarks land
without a baseline first; refresh the baseline to adopt them).

To refresh the baseline after an intentional perf change::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=BENCH_kernels.json

and commit the regenerated ``BENCH_kernels.json``.

Only the Python stdlib is used, so the gate runs anywhere the suite runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file."""
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: benchmark file not found: {path}")
    except json.JSONDecodeError as error:
        sys.exit(f"error: {path} is not valid JSON: {error}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        sys.exit(f"error: {path} has no 'benchmarks' list (not pytest-benchmark JSON?)")
    means: dict[str, float] = {}
    for bench in benchmarks:
        name = bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if isinstance(name, str) and isinstance(mean, (int, float)) and mean > 0:
            means[name] = float(mean)
    if not means:
        sys.exit(f"error: {path} contains no usable benchmark means")
    return means


def compare(
    baseline: dict[str, float], current: dict[str, float], tolerance: float
) -> dict:
    """Build the gate verdict: per-benchmark ratios and the failing subset."""
    rows = []
    for name in sorted(set(baseline) & set(current)):
        ratio = current[name] / baseline[name]
        rows.append(
            {
                "name": name,
                "baseline_mean_s": baseline[name],
                "current_mean_s": current[name],
                "ratio": ratio,
                "regressed": ratio > 1.0 + tolerance,
            }
        )
    return {
        "tolerance": tolerance,
        "matched": len(rows),
        "only_in_baseline": sorted(set(baseline) - set(current)),
        "only_in_current": sorted(set(current) - set(baseline)),
        "regressions": [row for row in rows if row["regressed"]],
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_kernels.json",
        type=Path,
        help="committed pytest-benchmark JSON baseline",
    )
    parser.add_argument(
        "--current",
        required=True,
        type=Path,
        help="freshly generated pytest-benchmark JSON",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.40,
        help="allowed fractional mean increase before failing (default 0.40 = +40%%)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also write the full verdict as JSON to this path",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    verdict = compare(load_means(args.baseline), load_means(args.current), args.tolerance)
    if args.json:
        args.json.write_text(json.dumps(verdict, indent=2, sort_keys=True) + "\n")

    name_width = max((len(row["name"]) for row in verdict["rows"]), default=4)
    print(f"{'benchmark':<{name_width}} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for row in verdict["rows"]:
        flag = "  << REGRESSED" if row["regressed"] else ""
        print(
            f"{row['name']:<{name_width}} "
            f"{row['baseline_mean_s'] * 1000:>10.2f}ms "
            f"{row['current_mean_s'] * 1000:>10.2f}ms "
            f"{row['ratio']:>7.2f}x{flag}"
        )
    for name in verdict["only_in_baseline"]:
        print(f"note: {name!r} is in the baseline but was not run (skipped benchmark?)")
    for name in verdict["only_in_current"]:
        print(f"note: {name!r} has no baseline entry (refresh BENCH_kernels.json to adopt)")

    if verdict["matched"] == 0:
        print("error: no benchmark names matched between baseline and current run")
        return 1
    if verdict["regressions"]:
        print(
            f"\nFAIL: {len(verdict['regressions'])} of {verdict['matched']} matched "
            f"benchmark(s) regressed beyond +{args.tolerance:.0%} "
            "(see scripts/check_bench_regression.py --help to refresh the baseline)"
        )
        return 1
    print(
        f"\nOK: {verdict['matched']} matched benchmark(s) within +{args.tolerance:.0%} "
        "of the committed baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
