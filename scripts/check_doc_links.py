#!/usr/bin/env python3
"""Check that every relative markdown link in docs/ and README.md resolves.

Docs rot by reference before they rot by content: a renamed file silently
breaks every ``[text](path.md)`` pointing at it.  This script extracts every
inline markdown link from ``README.md`` and ``docs/*.md``, skips external
(``http(s)://``, ``mailto:``) and pure-anchor (``#...``) targets, and
verifies the rest resolve to real files relative to the referencing
document.  For in-repo markdown targets with a ``#fragment``, the fragment
must match a heading in the target file (GitHub-style slugs).

    python scripts/check_doc_links.py          # check README.md + docs/*.md
    python scripts/check_doc_links.py FILES... # check specific files

Exit code 1 lists every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Images share the syntax; the
#: leading ``!`` (if any) is irrelevant for resolution.
LINK_PATTERN = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+)\)")

#: Fenced code blocks, removed before link extraction so shell examples
#: containing ``(...)`` are not misread as links.
FENCE_PATTERN = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading line."""
    text = heading.strip().lstrip("#").strip().lower()
    text = re.sub(r"`", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """Every heading anchor a markdown file defines."""
    slugs = set()
    content = FENCE_PATTERN.sub("", path.read_text())
    for line in content.splitlines():
        if line.startswith("#"):
            slugs.add(github_slug(line))
    return slugs


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    problems = []
    content = FENCE_PATTERN.sub("", path.read_text())
    for target in LINK_PATTERN.findall(content):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in heading_slugs(path):
                problems.append(f"{path}: broken anchor {target!r}")
            continue
        raw, _, fragment = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r} -> {resolved}")
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                problems.append(
                    f"{path}: link {target!r} -> no heading #{fragment} "
                    f"in {resolved.name}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

    problems = []
    for path in files:
        if not path.is_file():
            problems.append(f"{path}: no such file")
            continue
        problems.extend(check_file(path))

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"links OK: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
