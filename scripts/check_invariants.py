#!/usr/bin/env python3
"""CI gate: the static invariant checkers must pass over src/repro.

Runs every registered checker in :mod:`repro.analysis` (lock-order cycles,
unguarded ``self._*`` writes, digest purity, metric-label cardinality,
best-effort seams, span/timer hygiene) over the source tree and fails on
any unsuppressed finding.  Suppressions (``# repro: ignore[checker-id]``
with a justification comment) are printed so reviewers see what has been
acknowledged, not just what failed.

    python scripts/check_invariants.py              # gate src/repro
    python scripts/check_invariants.py PATHS...     # gate specific paths

Exit code 1 on findings, 2 when the analysis itself cannot run.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = argv or [str(REPO_ROOT / "src" / "repro")]

    from repro.analysis import analyze_paths, format_table

    try:
        report = analyze_paths(paths)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if report.suppressed:
        print(f"{len(report.suppressed)} suppressed finding(s) (acknowledged):")
        for line in format_table(report.suppressed).splitlines():
            print(f"  {line}")
    if report.findings:
        print(
            f"invariant violations ({len(report.findings)} finding(s) across "
            f"{report.files} file(s)):",
            file=sys.stderr,
        )
        print(format_table(report.findings), file=sys.stderr)
        print(
            "\nFix the finding or suppress it with a justified "
            "`# repro: ignore[checker-id]` comment (see docs/analysis.md).",
            file=sys.stderr,
        )
        return 1
    print(
        f"invariants OK: {report.files} file(s), "
        f"checkers: {', '.join(report.checkers)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
