#!/usr/bin/env python3
"""CI guard for the public API surface of the codec layer and the /v1 HTTP API.

Snapshots, as plain JSON:

* the public symbols of :mod:`repro.codecs` (``__all__``),
* every registered codec with its version and parameter names,
* the versioned HTTP route table (``repro.service.V1_ROUTES``),
* the gateway's route table (``repro.gateway.GATEWAY_ROUTES``),
* the scenario names of the default registry.

and compares the snapshot against the committed ``API_SURFACE.json``
baseline.  Any drift fails CI with a field-by-field diff, so breaking an
API consumer (removing a codec parameter, renaming a route, dropping a
scenario) is always an explicit, reviewed change:

    python scripts/check_api_surface.py            # verify (CI)
    python scripts/check_api_surface.py --update   # rewrite the baseline

Additive changes are also flagged — the baseline is the reviewed contract,
not a lower bound — but refreshing it is one ``--update`` commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "API_SURFACE.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def current_surface() -> dict:
    from repro import codecs
    from repro.gateway import GATEWAY_ROUTES
    from repro.service import API_VERSION, V1_ROUTES, build_default_registry

    return {
        "api_version": API_VERSION,
        "gateway_routes": sorted(GATEWAY_ROUTES),
        "codecs": {
            schema["name"]: {
                "version": schema["version"],
                "lossless": schema["lossless"],
                "params": sorted(schema["params"]),
            }
            for schema in codecs.describe_codecs()
        },
        "codecs_module": sorted(codecs.__all__),
        "scenarios": build_default_registry().names(),
        "v1_routes": sorted(V1_ROUTES),
    }


def _diff(baseline: dict, current: dict, path: str = "") -> list[str]:
    lines: list[str] = []
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in sorted(set(baseline) | set(current)):
            where = f"{path}.{key}" if path else key
            if key not in baseline:
                lines.append(f"added   {where}: {json.dumps(current[key])}")
            elif key not in current:
                lines.append(f"removed {where}: {json.dumps(baseline[key])}")
            else:
                lines.extend(_diff(baseline[key], current[key], where))
    elif baseline != current:
        lines.append(
            f"changed {path}: {json.dumps(baseline)} -> {json.dumps(current)}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite API_SURFACE.json from the current code",
    )
    args = parser.parse_args(argv)

    surface = current_surface()
    rendered = json.dumps(surface, indent=2, sort_keys=True) + "\n"

    if args.update:
        BASELINE_PATH.write_text(rendered)
        print(f"wrote {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.is_file():
        print(f"error: {BASELINE_PATH} is missing; run with --update", file=sys.stderr)
        return 1
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except json.JSONDecodeError as error:
        print(f"error: {BASELINE_PATH} is not valid JSON: {error}", file=sys.stderr)
        return 1

    drift = _diff(baseline, surface)
    if drift:
        print("API surface drift vs committed API_SURFACE.json:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf this change is intentional, refresh the baseline with:\n"
            "  python scripts/check_api_surface.py --update",
            file=sys.stderr,
        )
        return 1

    print(
        f"API surface OK: {len(surface['codecs'])} codecs, "
        f"{len(surface['v1_routes'])} /v1 routes, "
        f"{len(surface['scenarios'])} scenarios"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
