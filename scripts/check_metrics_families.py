#!/usr/bin/env python3
"""CI gate: a live ``/v1/metrics`` scrape must expose the core families.

Scrapes a running ``repro serve`` node and fails (exit 1) unless every
required metric family is present in the Prometheus text exposition with at
least one numeric sample.  This is the observability contract the dashboards
and the campaign dispatcher rely on; a refactor that silently drops an
instrumentation point must fail CI, not a production scrape.

Usage::

    python scripts/check_metrics_families.py --url http://127.0.0.1:8000
    python scripts/check_metrics_families.py --url ... --require my_family
"""

from __future__ import annotations

import argparse
import re
import sys
import urllib.error
import urllib.request

#: Families every healthy node must expose (histograms match their
#: ``_bucket``/``_sum``/``_count`` sample names by prefix).
DEFAULT_FAMILIES = (
    "repro_http_requests_total",
    "repro_job_queue_depth",
    "repro_cache_hits_total",
    "repro_codec_compress_seconds",
)

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


def scrape(url: str, timeout: float) -> str:
    target = url.rstrip("/") + "/v1/metrics"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        content_type = response.headers.get("Content-Type", "")
        if not content_type.startswith("text/plain"):
            raise SystemExit(
                f"error: {target} answered Content-Type {content_type!r}, "
                "expected Prometheus text exposition"
            )
        return response.read().decode("utf-8")


def check_families(text: str, families: list[str]) -> list[str]:
    """Return one problem string per family that fails the contract."""
    declared: set[str] = set()
    samples: dict[str, list[str]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) >= 3:
                declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match:
            samples.setdefault(match.group("name"), []).append(match.group("value"))

    problems = []
    for family in families:
        if family not in declared:
            problems.append(f"family {family!r} missing from the scrape")
            continue
        # A histogram family's samples live under suffixed names.
        values = [
            value
            for name, family_values in samples.items()
            if name == family or name.startswith(family + "_")
            for value in family_values
        ]
        if not values:
            problems.append(f"family {family!r} declared but has no samples")
            continue
        for value in values:
            if value == "+Inf" or value == "-Inf" or value == "NaN":
                continue
            try:
                float(value)
            except ValueError:
                problems.append(f"family {family!r} has non-numeric sample {value!r}")
                break
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True, help="base URL of a repro serve node")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FAMILY",
        help="additional required family (repeatable)",
    )
    parser.add_argument(
        "--no-default-families",
        action="store_true",
        help="check only --require families (for non-node scrapes, "
        "e.g. the gateway, which serves different families)",
    )
    parser.add_argument("--timeout", type=float, default=10.0)
    args = parser.parse_args(argv)

    families = ([] if args.no_default_families else list(DEFAULT_FAMILIES)) + args.require
    if not families:
        print("error: no families to check", file=sys.stderr)
        return 1
    try:
        text = scrape(args.url, args.timeout)
    except (urllib.error.URLError, OSError) as error:
        print(f"error: cannot scrape {args.url}: {error}", file=sys.stderr)
        return 1

    problems = check_families(text, families)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"metrics gate: {len(families)} families present and numeric")
    return 0


if __name__ == "__main__":
    sys.exit(main())
