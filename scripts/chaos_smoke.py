#!/usr/bin/env python
"""CI chaos smoke: faults in the path, none in the artifacts.

Two in-process serve nodes run the same small campaign twice — once directly
(the fault-free reference) and once through a :class:`repro.chaos.ChaosProxy`
per node injecting connection resets, added latency, and forced 429s with a
pinned seed.  The dispatched report must come out byte-identical to the
reference: every injected fault is absorbed by retries, circuit breaking, and
Retry-After pacing, never by changing results.

A second stage corrupts a job journal three ways (mid-file garbage, a torn
final record, a checksum mismatch) and proves replay quarantines the bad
lines instead of aborting.

Exit code 0 when both hold; 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import parse_spec  # noqa: E402
from repro.campaign.dispatch import CampaignDispatcher  # noqa: E402
from repro.chaos import ChaosProxy  # noqa: E402
from repro.service import (  # noqa: E402
    JobJournal,
    ResultCache,
    ScenarioRegistry,
    WorkerPool,
    create_server,
)
from repro.service.client import ServiceClient  # noqa: E402

SPEC = {
    "name": "chaos-smoke",
    "grids": [
        {
            "name": "quant",
            "scenario": "quantize_tensor",
            "params": {"rows": 16, "cols": 64, "backend": "ptq"},
            "sweep": {"bits": [4, 6, 8]},
        },
        {
            "name": "prune",
            "scenario": "prune_tensor",
            "params": {"rows": 32, "cols": 128},
            "sweep": {"num_columns": [2, 4]},
            "depends_on": ["quant"],
        },
    ],
}


def resilient_client(url: str, **kwargs) -> ServiceClient:
    kwargs.setdefault("retries", 8)
    kwargs.setdefault("backoff", 0.01)
    kwargs.setdefault("timeout", 60.0)
    return ServiceClient(url, **kwargs)


def dispatch(endpoints: list[str], run_dir: Path) -> dict:
    dispatcher = CampaignDispatcher(
        parse_spec(SPEC), endpoints, run_dir,
        poll_interval=0.02, client_factory=resilient_client,
    )
    return dispatcher.run()


def check_chaos_dispatch(base: Path) -> list[str]:
    failures: list[str] = []
    servers, threads, proxies = [], [], []
    for _ in range(2):
        server = create_server(port=0, max_workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    try:
        reference = dispatch(
            [f"http://127.0.0.1:{server.port}" for server in servers],
            base / "reference",
        )
        if not reference["report_written"] or reference["failed"]:
            failures.append(f"fault-free dispatch did not complete: {reference}")
            return failures

        for index, server in enumerate(servers):
            proxies.append(
                ChaosProxy(
                    upstream_port=server.port,
                    reset_p=0.15,
                    latency_p=0.3,
                    latency_s=0.01,
                    error_p=0.15,
                    error_status=429,
                    retry_after=0.02,
                    seed=1000 + index,
                ).start()
            )
        chaotic = dispatch([proxy.url for proxy in proxies], base / "chaotic")
        injected = {
            proxy.url: proxy.stats()["counts"] for proxy in proxies
        }
        print("chaos proxy fault counts:")
        for url, counts in injected.items():
            print(f"  {url}: {json.dumps(counts, sort_keys=True)}")
        if not any(
            kind != "forwarded" and count
            for counts in injected.values()
            for kind, count in counts.items()
        ):
            failures.append("the proxies injected no faults; the smoke proved nothing")
        if not chaotic["report_written"] or chaotic["failed"]:
            failures.append(f"chaotic dispatch did not complete: {chaotic}")
            return failures

        for name in ("report.json", "report.csv"):
            want = (base / "reference" / name).read_bytes()
            got = (base / "chaotic" / name).read_bytes()
            if want != got:
                failures.append(f"{name} differs between chaotic and fault-free runs")
            else:
                print(f"{name}: byte-identical through chaos ({len(got)} bytes)")
    finally:
        for proxy in proxies:
            proxy.stop()
        for server, thread in zip(servers, threads, strict=False):
            server.close()
            thread.join(timeout=10)
    return failures


def check_journal_quarantine(base: Path) -> list[str]:
    failures: list[str] = []
    journal_dir = base / "journal"
    registry = ScenarioRegistry()
    registry.add("echo", "echo", lambda value=0: {"value": value}, {"value": 0})

    journal = JobJournal(journal_dir)
    cache = ResultCache(directory=journal_dir / "cache")
    pool = WorkerPool(registry, cache=cache, max_workers=2, journal=journal)
    for value in range(3):
        pool.run("echo", {"value": value}, timeout=30)
    pool.shutdown()
    journal.close()

    path = journal_dir / "journal.jsonl"
    lines = path.read_text().splitlines()
    tampered = json.loads(lines[0])
    tampered["type"] = "tampered"
    with path.open("w") as handle:
        for line in lines:
            handle.write(line + "\n")
        handle.write("journal corruption smoke: not json\n")
        handle.write(json.dumps(tampered) + "\n")
        handle.write('{"event": "submit", "job_id": "job-9')  # torn final record

    registry2 = ScenarioRegistry()
    registry2.add("echo", "echo", lambda value=0: {"value": value}, {"value": 0})
    journal2 = JobJournal(journal_dir)
    pool2 = WorkerPool(
        registry2, cache=ResultCache(directory=journal_dir / "cache"),
        max_workers=2, journal=journal2,
    )
    stats = journal2.replay(pool2)
    pool2.shutdown()
    journal2.close()
    print(f"journal replay under corruption: {json.dumps(stats, sort_keys=True)}")

    if stats["quarantined"] != 3:
        failures.append(f"expected 3 quarantined lines, got {stats['quarantined']}")
    if stats["completed"] != 3:
        failures.append(f"expected 3 completed replays, got {stats['completed']}")
    quarantine = journal_dir / "journal.quarantine.jsonl"
    if not quarantine.exists():
        failures.append("journal.quarantine.jsonl was never written")
    else:
        reasons = sorted(
            json.loads(line)["reason"] for line in quarantine.read_text().splitlines()
        )
        if reasons != ["checksum_mismatch", "truncated", "unparseable"]:
            failures.append(f"unexpected quarantine reasons: {reasons}")
    return failures


def main() -> int:
    import tempfile

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        base = Path(tmp)
        failures += check_chaos_dispatch(base)
        failures += check_journal_quarantine(base)
    if failures:
        print("\nchaos smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nchaos smoke passed: faults injected, artifacts unchanged, "
          "corruption quarantined")
    return 0


if __name__ == "__main__":
    sys.exit(main())
