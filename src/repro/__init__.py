"""repro — reproduction of BBS: Bi-directional Bit-level Sparsity (MICRO 2024).

The package is organised into six subpackages:

* :mod:`repro.core` — the BBS algorithms (bit-plane sparsity analysis, binary
  pruning, compression encoding, global hardware-aware pruning).
* :mod:`repro.quant` — the quantization substrate and the compression
  baselines the paper compares against (PTQ, BitWave bit-flip, Microscaling,
  NoisyQuant, ANT, Olive).
* :mod:`repro.nn` — a numpy DNN substrate: layers, the benchmark model zoo
  (layer shapes of VGG-16, ResNet-34/50, ViT-S/B, BERT, Llama-3-8B),
  synthetic weight/activation generators, and a tiny trainer for end-to-end
  accuracy experiments.
* :mod:`repro.memory` — SRAM/DRAM energy models and traffic accounting.
* :mod:`repro.accelerators` — cycle-level models of BitVert and the six
  baseline accelerators (Stripes, Pragmatic, Bitlet, BitWave, SparTen, ANT).
* :mod:`repro.eval` — the experiment harness that regenerates every table and
  figure of the paper's evaluation section.
* :mod:`repro.codecs` — the composable Codec API: every compression backend
  (quant baselines, BBS pruning, bit-plane encoding) behind one registry with
  uniform results, chained pipelines, and versioned service discovery.

(:mod:`repro.service` and :mod:`repro.campaign` — the job-queue HTTP service
and the declarative campaign engine — import lazily; see their docstrings.)

Quickstart::

    import numpy as np
    from repro.core import prune_tensor, PruningStrategy

    weights = np.random.default_rng(0).normal(0, 20, (64, 256)).round().astype(np.int64)
    weights = np.clip(weights, -128, 127)
    pruned = prune_tensor(weights, num_columns=4,
                          strategy=PruningStrategy.ZERO_POINT_SHIFT)
    print(pruned.effective_bits(), pruned.mse())
"""

__version__ = "1.0.0"

from . import accelerators, codecs, core, eval, memory, nn, quant

__all__ = [
    "accelerators",
    "codecs",
    "core",
    "eval",
    "memory",
    "nn",
    "quant",
    "__version__",
]
