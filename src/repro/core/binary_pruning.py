"""Unified tensor-level binary pruning (Section III-B).

This module ties the two group-level strategies (rounded averaging and
zero-point shifting) together behind one API that operates on a whole weight
matrix: it groups the tensor, prunes every group, tracks the per-group
metadata, and reports the compression statistics (storage bits, effective
bits/weight, MSE, KL divergence) that the paper's accuracy and footprint
results are built on.

It also provides the BBS *dot-product identities* (Equations 1-3): helpers
that compute a dot product through the bi-directional bit-serial formulation
and through the compressed encoding, used by the tests to show the hardware
computation is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from . import metrics
from .bitplane import to_bitplanes, column_weights
from .encoding import (
    METADATA_BITS,
    PrunedGroup,
    PruningStrategy,
)
from .grouping import GroupedTensor, group_weights, ungroup_weights
from .hashing import stable_digest
from .memo import get_memo
from .rounded_average import rounded_average_groups
from .zero_point_shift import zero_point_shift_groups

__all__ = [
    "PrunedTensor",
    "prune_tensor",
    "prune_group",
    "bbs_dot_product",
    "compressed_dot_product",
]


@dataclass
class PrunedTensor(metrics.ReconstructionMetricsMixin):
    """A whole weight matrix after binary pruning.

    Attributes
    ----------
    values:
        Pruned weight matrix with the same shape as the input.
    strategy:
        Strategy used for the pruned groups.
    num_columns:
        Target number of pruned columns per group.
    group_size:
        Dot-product group size.
    num_redundant:
        ``(channels, num_groups)`` per-group redundant-column counts.
    num_sparse:
        ``(channels, num_groups)`` per-group generated sparse-column counts.
    constants:
        ``(channels, num_groups)`` per-group BBS constants.
    pruned_channel_mask:
        Boolean per-channel mask; ``False`` marks sensitive channels kept at
        full precision (used by global pruning).
    bits:
        Weight word width.
    """

    values: np.ndarray
    strategy: PruningStrategy
    num_columns: int
    group_size: int
    num_redundant: np.ndarray
    num_sparse: np.ndarray
    constants: np.ndarray
    pruned_channel_mask: np.ndarray
    bits: int = 8
    original: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_channels(self) -> int:
        return self.values.shape[0]

    @property
    def num_groups_per_channel(self) -> int:
        return self.num_redundant.shape[1]

    def storage_bits(self) -> int:
        """Total storage of the compressed matrix in bits (payload + metadata)."""
        per_group_pruned = self.num_redundant + self.num_sparse
        # Vectorized per-group form of :func:`group_storage_bits`: unpruned
        # groups carry no metadata word.
        per_group = np.where(
            per_group_pruned > 0,
            self.group_size * (self.bits - per_group_pruned) + METADATA_BITS,
            self.group_size * self.bits,
        )
        dense_channel = self.num_groups_per_channel * self.group_size * self.bits
        per_channel = np.where(
            self.pruned_channel_mask, per_group.sum(axis=1), dense_channel
        )
        return int(per_channel.sum())

    def dense_storage_bits(self) -> int:
        """Storage of the uncompressed matrix in bits (grouped / padded layout)."""
        return self.num_channels * self.num_groups_per_channel * self.group_size * self.bits

    def compression_ratio(self) -> float:
        """Dense size divided by compressed size (> 1 means smaller)."""
        compressed = self.storage_bits()
        if compressed == 0:
            return float("inf")
        return self.dense_storage_bits() / compressed

    def effective_bits(self) -> float:
        """Average stored bits per weight, including metadata."""
        num_weights = self.num_channels * self.num_groups_per_channel * self.group_size
        if num_weights == 0:
            return 0.0
        return self.storage_bits() / num_weights

    def kl_divergence(self) -> float:
        """KL divergence of the value histogram against the original tensor."""
        if self.original is None:
            return 0.0
        return metrics.kl_divergence(self.original, self.values)

    def extra_scalars(self) -> dict[str, float]:
        return {"compression_ratio": float(self.compression_ratio())}

    def content_digest(self) -> str:
        """Stable hex digest of the compressed contents + pruning configuration.

        Two :func:`prune_tensor` calls on identical inputs produce identical
        digests, so the digest can key result caches and deduplicate work (the
        ``original`` tensor is deliberately excluded: it does not affect the
        compressed artifact).
        """
        from .hashing import stable_digest

        return stable_digest(
            "PrunedTensor",
            self.values,
            self.strategy,
            self.num_columns,
            self.group_size,
            self.num_redundant,
            self.num_sparse,
            self.constants,
            self.pruned_channel_mask,
            self.bits,
        )


def prune_group(
    group: np.ndarray,
    num_columns: int,
    strategy: PruningStrategy | str = PruningStrategy.ROUNDED_AVERAGE,
    bits: int = 8,
) -> PrunedGroup:
    """Prune a single group with the requested strategy.

    Thin convenience wrapper over
    :func:`repro.core.rounded_average.rounded_average_group` and
    :func:`repro.core.zero_point_shift.zero_point_shift_group`.
    """
    from .rounded_average import rounded_average_group
    from .zero_point_shift import zero_point_shift_group

    strategy = PruningStrategy(strategy)
    if strategy is PruningStrategy.ROUNDED_AVERAGE:
        return rounded_average_group(group, num_columns, bits=bits)
    if strategy is PruningStrategy.ZERO_POINT_SHIFT:
        return zero_point_shift_group(group, num_columns, bits=bits)
    raise ValueError(f"cannot prune with strategy {strategy}")


def prune_tensor(
    weights: np.ndarray,
    num_columns: int,
    strategy: PruningStrategy | str = PruningStrategy.ROUNDED_AVERAGE,
    group_size: int = 32,
    bits: int = 8,
    sensitive_channels: np.ndarray | None = None,
    keep_original: bool = True,
) -> PrunedTensor:
    """Apply binary pruning to a 2-D integer weight matrix.

    Parameters
    ----------
    weights:
        ``(channels, reduction)`` integer weight matrix (use
        :func:`repro.nn.workloads.layer_weight_matrix` to flatten conv
        weights).
    num_columns:
        Bit columns to prune per group.
    strategy:
        ``"rounded_average"`` or ``"zero_point_shift"``.
    group_size:
        Weights per dot-product group (32 in all paper experiments).
    sensitive_channels:
        Optional boolean array of length ``channels``; ``True`` entries are
        *not* pruned (they stay at full precision).  Produced by
        :mod:`repro.core.global_pruning`.
    keep_original:
        Keep a copy of the original matrix to enable MSE/KL reporting.
    """
    strategy = PruningStrategy(strategy)
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {weights.shape}")
    if not np.issubdtype(weights.dtype, np.integer):
        raise TypeError("binary pruning operates on integer (quantized) weights")

    channels = weights.shape[0]
    if sensitive_channels is None:
        sensitive = np.zeros(channels, dtype=bool)
    else:
        sensitive = np.asarray(sensitive_channels, dtype=bool)
        if sensitive.shape != (channels,):
            raise ValueError(
                f"sensitive_channels must have shape ({channels},), got {sensitive.shape}"
            )

    # Content-hash memo: identical (weights, configuration) pairs are
    # compressed once per process; ``keep_original`` is deliberately outside
    # the key because it does not affect the compressed artifact.
    memo = get_memo()
    memo_key = None
    if memo.enabled:
        memo_key = stable_digest(
            "prune_tensor", weights, num_columns, strategy, group_size, bits, sensitive
        )
        cached = memo.tensors.get(memo_key)
        if cached is not None:
            return _copy_pruned(cached, weights, keep_original)

    grouped = group_weights(weights, group_size)
    channels, num_groups, _ = grouped.groups.shape

    prune_mask = ~sensitive
    flat = grouped.groups.reshape(channels * num_groups, group_size).astype(np.int64)
    flat_prune_mask = np.repeat(prune_mask, num_groups)

    pruned_flat = flat.copy()
    redundant = np.zeros(channels * num_groups, dtype=np.int64)
    sparse = np.zeros(channels * num_groups, dtype=np.int64)
    constants = np.zeros(channels * num_groups, dtype=np.int64)

    target_groups = flat[flat_prune_mask]
    if target_groups.size and num_columns > 0:
        if strategy is PruningStrategy.ROUNDED_AVERAGE:
            values, red, spr, const = rounded_average_groups(
                target_groups, num_columns, bits=bits
            )
        elif strategy is PruningStrategy.ZERO_POINT_SHIFT:
            values, red, spr, const = zero_point_shift_groups(
                target_groups, num_columns, bits=bits
            )
        else:
            raise ValueError(f"cannot prune with strategy {strategy}")
        pruned_flat[flat_prune_mask] = values
        redundant[flat_prune_mask] = red
        sparse[flat_prune_mask] = spr
        constants[flat_prune_mask] = const

    pruned_grouped = GroupedTensor(
        groups=pruned_flat.reshape(channels, num_groups, group_size),
        original_shape=grouped.original_shape,
        group_size=group_size,
        pad=grouped.pad,
    )
    pruned_values = ungroup_weights(pruned_grouped)

    result = PrunedTensor(
        values=pruned_values,
        strategy=strategy,
        num_columns=num_columns,
        group_size=group_size,
        num_redundant=redundant.reshape(channels, num_groups),
        num_sparse=sparse.reshape(channels, num_groups),
        constants=constants.reshape(channels, num_groups),
        pruned_channel_mask=prune_mask,
        bits=bits,
        original=weights.copy() if keep_original else None,
    )
    if memo_key is not None:
        # Snapshot with private arrays and no original, so later mutation of
        # the returned tensor cannot poison the memo.
        memo.tensors.put(memo_key, _copy_pruned(result, weights, False))
    return result


def _copy_pruned(
    pruned: PrunedTensor, weights: np.ndarray, keep_original: bool
) -> PrunedTensor:
    """Independent copy of a memoized :class:`PrunedTensor` (arrays included)."""
    return replace(
        pruned,
        values=pruned.values.copy(),
        num_redundant=pruned.num_redundant.copy(),
        num_sparse=pruned.num_sparse.copy(),
        constants=pruned.constants.copy(),
        pruned_channel_mask=pruned.pruned_channel_mask.copy(),
        original=weights.copy() if keep_original else None,
    )


def bbs_dot_product(weights: np.ndarray, activations: np.ndarray, bits: int = 8) -> int:
    """Compute a dot product through the BBS bit-serial formulation (Eq. 1-3).

    For every bit column the partial sum is computed through whichever side of
    the identity touches fewer bits: summing the activations under one-bits
    when ones are the minority, or subtracting the activations under zero-bits
    from the group activation sum when zeros are the minority.  The result is
    exactly ``weights @ activations``; the point of this function is that the
    tests can assert the bi-directional trick is lossless.
    """
    weights = np.asarray(weights).astype(np.int64)
    activations = np.asarray(activations).astype(np.int64)
    if weights.shape != activations.shape or weights.ndim != 1:
        raise ValueError("weights and activations must be 1-D arrays of equal length")
    planes = to_bitplanes(weights, bits)  # (N, bits)
    place = column_weights(bits, signed=True)
    act_sum = int(activations.sum())
    total = 0
    for column in range(bits):
        bit_vector = planes[:, column]
        ones = int(bit_vector.sum())
        if ones <= len(bit_vector) - ones:
            partial = int(activations[bit_vector == 1].sum())
        else:
            partial = act_sum - int(activations[bit_vector == 0].sum())
        total += int(place[column]) * partial
    return total


def compressed_dot_product(
    pruned: PrunedGroup, activations: np.ndarray
) -> int:
    """Dot product as the BitVert PE computes it from the compressed encoding.

    The stored bit columns contribute through bit-serial accumulation and the
    BBS constant contributes through a single multiplication with the group
    activation sum (Step 4 of the PE in Figure 7).  Equals
    ``pruned.values @ activations`` exactly.
    """
    activations = np.asarray(activations).astype(np.int64)
    values = np.asarray(pruned.values).astype(np.int64)
    if activations.shape != values.shape:
        raise ValueError("activations must match the group size")
    act_sum = int(activations.sum())

    if pruned.strategy is PruningStrategy.ZERO_POINT_SHIFT:
        stored = values + pruned.constant
        constant_term = -pruned.constant * act_sum
    elif pruned.strategy is PruningStrategy.ROUNDED_AVERAGE:
        low_block = 1 << pruned.num_sparse if pruned.num_sparse else 1
        stored = values - pruned.constant
        if pruned.num_sparse and np.any(stored % low_block != 0):
            raise ValueError("rounded-average group is not aligned to its constant")
        constant_term = pruned.constant * act_sum
    else:
        stored = values
        constant_term = 0

    serial_term = bbs_dot_product(stored, activations, bits=pruned.bits)
    return serial_term + constant_term
