"""Value-, bit-, and BBS-sparsity statistics.

This module reproduces the sparsity analysis of Figure 3: for an INT8 weight
tensor it measures

* **value sparsity** — fraction of exactly-zero weights,
* **bit sparsity (2's complement)** — fraction of zero bits over all bit
  positions,
* **bit sparsity (sign-magnitude)** — same, but in sign-magnitude format,
* **BBS** — bi-directional bit sparsity: for every bit *vector* (the bits of
  one significance across a group of weights) the sparse symbol is whichever
  of {0, 1} occurs more often, so the sparsity of any vector is at least 50 %.

It also provides per-bit-vector statistics used by the load-balance analysis
(Figures 14/15): the number of *effectual* bits a bit-serial PE has to process
per vector under each scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitplane import to_bitplanes, to_sign_magnitude_planes

__all__ = [
    "SparsityReport",
    "value_sparsity",
    "bit_sparsity_twos_complement",
    "bit_sparsity_sign_magnitude",
    "bbs_sparsity",
    "sparsity_report",
    "effectual_bits_per_vector",
    "bbs_effectual_bits_per_vector",
]


@dataclass(frozen=True)
class SparsityReport:
    """Sparsity of one weight tensor under the four definitions of Figure 3."""

    value: float
    bit_twos_complement: float
    bit_sign_magnitude: float
    bbs: float

    def as_dict(self) -> dict[str, float]:
        return {
            "value": self.value,
            "bit_twos_complement": self.bit_twos_complement,
            "bit_sign_magnitude": self.bit_sign_magnitude,
            "bbs": self.bbs,
        }


def value_sparsity(weights: np.ndarray) -> float:
    """Fraction of weights that are exactly zero."""
    weights = np.asarray(weights)
    if weights.size == 0:
        return 0.0
    return float(np.count_nonzero(weights == 0) / weights.size)


def bit_sparsity_twos_complement(weights: np.ndarray, bits: int = 8) -> float:
    """Fraction of zero bits in the two's-complement representation."""
    planes = to_bitplanes(np.asarray(weights), bits)
    return float(1.0 - planes.mean()) if planes.size else 0.0


def bit_sparsity_sign_magnitude(weights: np.ndarray, bits: int = 8) -> float:
    """Fraction of zero bits in the sign-magnitude representation.

    The single non-representable code ``-2**(bits-1)`` is clipped to
    ``-2**(bits-1) + 1``, mirroring what sign-magnitude accelerators
    (BitWave [39]) do in practice.
    """
    weights = np.asarray(weights).astype(np.int64)
    lo = -(1 << (bits - 1))
    weights = np.where(weights == lo, lo + 1, weights)
    planes = to_sign_magnitude_planes(weights, bits)
    return float(1.0 - planes.mean()) if planes.size else 0.0


def _bit_vectors(weights: np.ndarray, bits: int, vector_size: int) -> np.ndarray:
    """Reshape a weight tensor into bit vectors of length ``vector_size``.

    Returns an array of shape ``(num_vectors, vector_size)`` where each row is
    the bits of one significance across ``vector_size`` consecutive weights.
    Trailing weights that do not fill a vector are zero-padded; padding zeros
    are counted as sparse under every scheme, which matches how hardware pads
    partially-filled groups.
    """
    flat = np.asarray(weights).ravel()
    pad = (-flat.size) % vector_size
    if pad:
        flat = np.pad(flat, (0, pad))
    grouped = flat.reshape(-1, vector_size)
    planes = to_bitplanes(grouped, bits)  # (num_groups, vector_size, bits)
    # One bit vector per (group, significance).
    return planes.transpose(0, 2, 1).reshape(-1, vector_size)


def bbs_sparsity(weights: np.ndarray, bits: int = 8, vector_size: int = 8) -> float:
    """Bi-directional bit sparsity with the given bit-vector size.

    For every bit vector the sparse symbol is the majority symbol, so the
    per-vector sparsity is ``max(zeros, ones) / vector_size`` and is always at
    least 0.5.  The returned value is the mean over all vectors of the tensor.
    """
    vectors = _bit_vectors(weights, bits, vector_size)
    if vectors.size == 0:
        return 0.0
    ones = vectors.sum(axis=1)
    sparse = np.maximum(ones, vector_size - ones) / float(vector_size)
    return float(sparse.mean())


def sparsity_report(
    weights: np.ndarray, bits: int = 8, vector_size: int = 8
) -> SparsityReport:
    """Compute all four sparsity metrics of Figure 3 for one tensor."""
    return SparsityReport(
        value=value_sparsity(weights),
        bit_twos_complement=bit_sparsity_twos_complement(weights, bits),
        bit_sign_magnitude=bit_sparsity_sign_magnitude(weights, bits),
        bbs=bbs_sparsity(weights, bits, vector_size),
    )


def effectual_bits_per_vector(
    weights: np.ndarray,
    bits: int = 8,
    vector_size: int = 8,
    representation: str = "twos_complement",
) -> np.ndarray:
    """Number of one-bits in every bit vector (work for a zero-skipping PE).

    Parameters
    ----------
    representation:
        ``"twos_complement"`` or ``"sign_magnitude"``.

    Returns
    -------
    numpy.ndarray
        1-D integer array with one entry per bit vector.
    """
    if representation == "twos_complement":
        vectors = _bit_vectors(weights, bits, vector_size)
    elif representation == "sign_magnitude":
        flat = np.asarray(weights).astype(np.int64).ravel()
        lo = -(1 << (bits - 1))
        flat = np.where(flat == lo, lo + 1, flat)
        pad = (-flat.size) % vector_size
        if pad:
            flat = np.pad(flat, (0, pad))
        grouped = flat.reshape(-1, vector_size)
        planes = to_sign_magnitude_planes(grouped, bits)
        vectors = planes.transpose(0, 2, 1).reshape(-1, vector_size)
    else:
        raise ValueError(f"unknown representation {representation!r}")
    return vectors.sum(axis=1).astype(np.int64)


def bbs_effectual_bits_per_vector(
    weights: np.ndarray, bits: int = 8, vector_size: int = 8
) -> np.ndarray:
    """Effectual bits per vector under BBS (minority symbol count, ≤ vector_size / 2)."""
    vectors = _bit_vectors(weights, bits, vector_size)
    ones = vectors.sum(axis=1).astype(np.int64)
    return np.minimum(ones, vector_size - ones)
