"""Distribution- and error-metrics used throughout the BBS evaluation.

The paper quantifies how well a compression method preserves the original
INT8 weight tensor through two metrics:

* **MSE** between the original and compressed integer tensors (used inside the
  binary-pruning optimizers, Figures 4/5 and Algorithm 1).
* **KL divergence** between the histogram of the original weights and the
  histogram of the compressed weights (Figures 1 and 6), which tracks how many
  quantization levels survive compression.

This module also provides the *effective bit width* computation used by
Tables II/III/VI (average stored bits per weight, including metadata) and a
simple accuracy-loss proxy that maps KL divergence onto an expected accuracy
drop; the proxy is calibrated so that the orderings reported in the paper are
reproduced (see ``eval.experiments`` for how it is used and EXPERIMENTS.md for
the caveats).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ReconstructionMetricsMixin",
    "mse",
    "rmse",
    "kl_divergence",
    "normalized_kl",
    "effective_bits",
    "cosine_similarity",
    "sqnr_db",
]


class ReconstructionMetricsMixin:
    """Shared scalar-metric surface of every compression result dataclass.

    Every backend result (``repro.quant.*Result``, ``core.PrunedTensor``,
    ``codecs.CompressionResult``) carries a reconstructed tensor in ``values``
    and optionally the ``original`` it was compressed from, and reports the
    same two headline scalars: reconstruction MSE and effective stored bits
    per weight.  This mixin provides the common ``mse``/``scalars``/
    ``to_jsonable`` implementations so each dataclass only defines what is
    genuinely backend-specific (``effective_bits`` and any extra scalars).

    The mixin deliberately declares no dataclass fields; subclasses stay free
    to order (and freeze) their own fields.
    """

    def mse(self) -> float:
        """MSE against the original tensor (0 if the original was not kept)."""
        original = getattr(self, "original", None)
        if original is None:
            return 0.0
        return mse(original, self.values)

    def effective_bits(self) -> float:  # pragma: no cover - always overridden
        raise NotImplementedError

    def extra_scalars(self) -> dict[str, float]:
        """Backend-specific scalar metrics merged into :meth:`scalars`."""
        return {}

    def scalars(self) -> dict[str, float]:
        """The uniform scalar-metric dict every compression result reports."""
        return {
            "mse": float(self.mse()),
            "effective_bits": float(self.effective_bits()),
            **{key: float(value) for key, value in self.extra_scalars().items()},
        }

    def to_jsonable(self) -> dict:
        """Strict-JSON summary of this result (scalars only, no tensors)."""
        import math

        return {
            key: (value if math.isfinite(value) else None)
            for key, value in self.scalars().items()
        }


def mse(original: np.ndarray, compressed: np.ndarray) -> float:
    """Mean squared error between two tensors of identical shape."""
    original = np.asarray(original, dtype=np.float64)
    compressed = np.asarray(compressed, dtype=np.float64)
    if original.shape != compressed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {compressed.shape}"
        )
    if original.size == 0:
        return 0.0
    return float(np.mean((original - compressed) ** 2))


def rmse(original: np.ndarray, compressed: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(original, compressed)))


def kl_divergence(
    original: np.ndarray,
    compressed: np.ndarray,
    bins: int | None = None,
    value_range: tuple[float, float] | None = None,
    epsilon: float = 1e-10,
) -> float:
    """KL divergence ``D(P_original || P_compressed)`` between value histograms.

    Both tensors are histogrammed over the same support.  For integer tensors
    the default binning uses one bin per integer level, which is exactly the
    "quantization levels" view the paper takes: a method that collapses many
    levels (e.g. PTQ to 5 bits) produces a spiky compressed histogram and a
    large divergence, whereas BBS preserves all levels and keeps it small.

    Parameters
    ----------
    original, compressed:
        Value tensors (any shape, flattened internally).
    bins:
        Number of histogram bins.  Defaults to one bin per integer level for
        integer inputs and 256 bins otherwise.
    value_range:
        Histogram support; defaults to the combined min/max of both tensors.
    epsilon:
        Additive smoothing applied to the compressed histogram so that empty
        bins (lost quantization levels) contribute a large-but-finite penalty.
    """
    p_values = np.asarray(original, dtype=np.float64).ravel()
    q_values = np.asarray(compressed, dtype=np.float64).ravel()
    if p_values.size == 0 or q_values.size == 0:
        raise ValueError("cannot compute KL divergence of empty tensors")

    if value_range is None:
        lo = float(min(p_values.min(), q_values.min()))
        hi = float(max(p_values.max(), q_values.max()))
        if lo == hi:
            return 0.0
        value_range = (lo, hi)
    if bins is None:
        both_integral = np.all(p_values == np.round(p_values)) and np.all(
            q_values == np.round(q_values)
        )
        if both_integral:
            bins = int(value_range[1] - value_range[0]) + 1
        else:
            bins = 256
        bins = max(2, min(bins, 4096))

    p_hist, _ = np.histogram(p_values, bins=bins, range=value_range)
    q_hist, _ = np.histogram(q_values, bins=bins, range=value_range)
    p = p_hist.astype(np.float64)
    q = q_hist.astype(np.float64)
    p /= p.sum()
    q = (q + epsilon) / (q.sum() + epsilon * bins)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def normalized_kl(
    kl_values: dict[str, float], reference: str | None = None
) -> dict[str, float]:
    """Normalize a dict of KL divergences to a reference entry (max by default).

    Figure 6 of the paper reports *normalized* KL divergence, where the worst
    method in each configuration is scaled to 1.0.
    """
    if not kl_values:
        return {}
    if reference is None:
        denom = max(kl_values.values())
    else:
        denom = kl_values[reference]
    if denom <= 0:
        return {name: 0.0 for name in kl_values}
    return {name: value / denom for name, value in kl_values.items()}


def effective_bits(
    stored_bits_per_weight: float,
    metadata_bits: float = 0.0,
    group_size: int = 32,
) -> float:
    """Average number of bits stored per weight, amortizing group metadata.

    ``stored_bits_per_weight`` is the per-weight payload (e.g. ``8 - pruned``
    columns for BBS, the element width for PTQ/MX); ``metadata_bits`` is the
    per-group side information (8 bits for the BBS encoding, 8 bits for an MX
    shared exponent, ...), amortized over ``group_size`` weights.

    >>> effective_bits(6, metadata_bits=8, group_size=32)
    6.25
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    return float(stored_bits_per_weight) + float(metadata_bits) / float(group_size)


def cosine_similarity(original: np.ndarray, compressed: np.ndarray) -> float:
    """Cosine similarity between two flattened tensors (1.0 = identical direction)."""
    a = np.asarray(original, dtype=np.float64).ravel()
    b = np.asarray(compressed, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 and nb == 0.0:
        return 1.0
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def sqnr_db(original: np.ndarray, compressed: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in decibels (higher is better)."""
    original = np.asarray(original, dtype=np.float64)
    compressed = np.asarray(compressed, dtype=np.float64)
    noise = mse(original, compressed)
    signal = float(np.mean(original**2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(signal / noise))
