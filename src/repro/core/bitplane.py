"""Bit-plane decomposition of integer tensors.

The BBS paper reasons about DNN weights at the granularity of individual
*bit columns*: the b-th bit of every weight in a group forms one bit column
(also called a bit plane, or a bit vector when we look at a single group).
This module provides the conversion between integer tensors and their
bit-plane representation, for both two's-complement and sign-magnitude
binary formats, plus the "redundant column" analysis used by binary pruning
(Section III-B of the paper).

All functions operate on numpy integer arrays and are fully vectorized.
The bit-plane layout convention used throughout the package is::

    planes.shape == weights.shape + (bits,)

with ``planes[..., 0]`` holding the most-significant bit (the sign bit for
two's complement) and ``planes[..., bits - 1]`` holding the least-significant
bit.  Storing the MSB first matches the way the paper draws bit columns
(Figures 1, 4 and 5) and makes "the first k columns" mean "the k most
significant columns".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "int_range",
    "to_bitplanes",
    "from_bitplanes",
    "to_sign_magnitude_planes",
    "from_sign_magnitude_planes",
    "count_redundant_columns",
    "remove_redundant_columns",
    "column_weights",
]


def int_range(bits: int) -> tuple[int, int]:
    """Return the inclusive ``(min, max)`` range of a signed ``bits``-bit integer.

    >>> int_range(8)
    (-128, 127)
    """
    if bits < 2:
        raise ValueError(f"signed integers need at least 2 bits, got {bits}")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def _validate_range(values: np.ndarray, bits: int) -> None:
    lo, hi = int_range(bits)
    if values.size == 0:
        return
    vmin = int(values.min())
    vmax = int(values.max())
    if vmin < lo or vmax > hi:
        raise ValueError(
            f"values outside the {bits}-bit two's-complement range "
            f"[{lo}, {hi}]: observed [{vmin}, {vmax}]"
        )


def to_bitplanes(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Decompose a signed integer tensor into two's-complement bit planes.

    Parameters
    ----------
    values:
        Integer array with entries in the signed ``bits``-bit range.
    bits:
        Word width of the two's-complement representation.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of shape ``values.shape + (bits,)`` whose entries are
        0 or 1.  Index 0 along the last axis is the most-significant (sign)
        bit.

    >>> to_bitplanes(np.array([-57]), bits=8)[0]
    array([1, 1, 0, 0, 0, 1, 1, 1], dtype=uint8)
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"expected an integer array, got dtype {values.dtype}")
    _validate_range(values, bits)
    # Re-interpret negatives via the unsigned congruence: x mod 2**bits.
    unsigned = np.mod(values.astype(np.int64), 1 << bits)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    planes = (unsigned[..., None] >> shifts) & 1
    return planes.astype(np.uint8)


def from_bitplanes(planes: np.ndarray, signed: bool = True) -> np.ndarray:
    """Recompose a two's-complement bit-plane tensor into signed integers.

    Inverse of :func:`to_bitplanes`.  ``planes[..., 0]`` is interpreted as the
    sign bit carrying weight ``-2**(bits-1)`` when ``signed`` is True.

    >>> from_bitplanes(to_bitplanes(np.array([-57, 13]), 8))
    array([-57,  13])
    """
    planes = np.asarray(planes)
    bits = planes.shape[-1]
    weights = column_weights(bits, signed=signed)
    return np.tensordot(planes.astype(np.int64), weights, axes=([-1], [0]))


def column_weights(bits: int, signed: bool = True) -> np.ndarray:
    """Per-column place values, MSB first.

    For a signed (two's-complement) word the most significant column carries a
    negative weight of ``-2**(bits-1)``.

    >>> column_weights(4)
    array([-8,  4,  2,  1])
    """
    weights = 2 ** np.arange(bits - 1, -1, -1, dtype=np.int64)
    if signed:
        weights = weights.copy()
        weights[0] = -weights[0]
    return weights


def to_sign_magnitude_planes(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Decompose signed integers into sign-magnitude bit planes.

    The result has shape ``values.shape + (bits,)``.  Index 0 along the last
    axis is the sign bit (1 for negative); the remaining ``bits - 1`` columns
    are the magnitude, MSB first.  ``-2**(bits-1)`` is not representable in
    sign-magnitude and raises ``ValueError`` (the paper's sign-magnitude
    baselines clip this single code point).

    >>> to_sign_magnitude_planes(np.array([-57]), bits=8)[0]
    array([1, 0, 1, 1, 1, 0, 0, 1], dtype=uint8)
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"expected an integer array, got dtype {values.dtype}")
    lo, hi = int_range(bits)
    if values.size and int(values.min()) <= lo:
        raise ValueError(
            f"{lo} has no sign-magnitude representation in {bits} bits; "
            f"clip the tensor to [{lo + 1}, {hi}] first"
        )
    _validate_range(values, bits)
    sign = (values < 0).astype(np.uint8)
    magnitude = np.abs(values.astype(np.int64))
    shifts = np.arange(bits - 2, -1, -1, dtype=np.int64)
    mag_planes = ((magnitude[..., None] >> shifts) & 1).astype(np.uint8)
    return np.concatenate([sign[..., None], mag_planes], axis=-1)


def from_sign_magnitude_planes(planes: np.ndarray) -> np.ndarray:
    """Recompose sign-magnitude bit planes into signed integers.

    Inverse of :func:`to_sign_magnitude_planes`.
    """
    planes = np.asarray(planes)
    bits = planes.shape[-1]
    mag_weights = 2 ** np.arange(bits - 2, -1, -1, dtype=np.int64)
    magnitude = np.tensordot(planes[..., 1:].astype(np.int64), mag_weights, axes=([-1], [0]))
    sign = np.where(planes[..., 0] > 0, -1, 1).astype(np.int64)
    return sign * magnitude


def count_redundant_columns(
    group_planes: np.ndarray, max_redundant: int | None = None
) -> int:
    """Count redundant columns immediately following the MSB column of a group.

    A column is *redundant* (Section III-B, step 1 of Figure 4) when every row
    of the group has the same bit in that column as in the sign column; such
    columns can be dropped without changing the two's-complement value, as long
    as the remaining MSB keeps the negative place value.

    Parameters
    ----------
    group_planes:
        ``(group, bits)`` bit-plane array of one weight group (MSB first).
    max_redundant:
        Optional cap (the BBS encoding stores at most 3).

    Returns
    -------
    int
        Number of droppable columns directly after the sign column.
    """
    planes = np.asarray(group_planes)
    if planes.ndim != 2:
        raise ValueError(f"expected a (group, bits) array, got shape {planes.shape}")
    bits = planes.shape[1]
    sign = planes[:, 0]
    redundant = 0
    # A column may only be removed if it is identical to the sign column for
    # every group member, and removal proceeds from the column right after the
    # sign bit (removing column k is only legal if columns 1..k are all
    # redundant).  Never remove all magnitude columns.
    for col in range(1, bits - 1):
        if np.array_equal(planes[:, col], sign):
            redundant += 1
        else:
            break
    if max_redundant is not None:
        redundant = min(redundant, max_redundant)
    return redundant


def remove_redundant_columns(group_planes: np.ndarray, count: int) -> np.ndarray:
    """Drop ``count`` redundant columns after the sign column of a group.

    The returned planes have ``bits - count`` columns and still decode (via
    :func:`from_bitplanes`) to the original values, because the surviving MSB
    column keeps the negative place value.

    >>> g = to_bitplanes(np.array([-57, 13]), 8)
    >>> from_bitplanes(remove_redundant_columns(g, count_redundant_columns(g)))
    array([-57,  13])
    """
    planes = np.asarray(group_planes)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return planes.copy()
    available = count_redundant_columns(planes)
    if count > available:
        raise ValueError(
            f"cannot remove {count} redundant columns; only {available} are redundant"
        )
    return np.concatenate([planes[:, :1], planes[:, 1 + count:]], axis=1)
