"""Binary pruning strategy 2: zero-point shifting (Figure 5, Algorithm 1).

For aggressive pruning budgets (4 columns in the paper's moderate setting),
replacing many low columns with one rounded average costs too much MSE.
Zero-point shifting instead searches for a constant to *add* to the whole
group (shifting its zero point) such that, after the shift, the low columns
can be zeroed out — each weight either truncates down or rounds up to the
next multiple of ``2**k`` — with minimal error against the original weights.
The chosen constant is stored in the 6-bit BBS-constant metadata field and is
subtracted back during computation (``actual = shifted_pruned - constant``).

The search over the 64 possible 6-bit constants is exhaustive.  The fast path
(:func:`zero_point_shift_groups`) batches candidate constants into chunked
3-D int32 broadcasts, derives the per-candidate redundant-column counts from
hoisted per-group extrema instead of full per-element scans, prunes rows
through one shift-free vectorized kernel instead of per-``k`` mask passes,
and eliminates candidates early through a rounding-distance lower bound on
their error, scoring only the survivors.  The original per-candidate
implementation is kept as :func:`zero_point_shift_groups_reference`; the two
are bit-identical (property-tested in ``tests/test_perf_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from .encoding import (
    CONSTANT_FIELD_BITS,
    MAX_PRUNED_COLUMNS,
    MAX_REDUNDANT_COLUMNS,
    PrunedGroup,
    PruningStrategy,
)

__all__ = [
    "zero_point_shift_group",
    "zero_point_shift_groups",
    "zero_point_shift_groups_reference",
]

#: Candidate constants per batched broadcast; 16 keeps every chunk temporary
#: of a 512x2048 layer (8192 groups of 32) near 16 MB in int32.
_CANDIDATE_CHUNK = 16

#: Group rows per batched broadcast (bounds peak memory for huge layers).
_GROUP_BLOCK = 8192


def _constant_candidates(constant_bits: int) -> np.ndarray:
    half = 1 << (constant_bits - 1)
    return np.arange(-half, half, dtype=np.int64)


def zero_point_shift_group(
    group: np.ndarray,
    num_columns: int,
    bits: int = 8,
    constant_bits: int = CONSTANT_FIELD_BITS,
) -> PrunedGroup:
    """Apply zero-point shifting to a single weight group.

    Parameters
    ----------
    group:
        1-D integer weight group in the signed ``bits`` range.
    num_columns:
        Total number of bit columns to prune (redundant + zeroed).
    bits:
        Weight word width.
    constant_bits:
        Width of the signed zero-point constant (6 in the BBS encoding).

    Returns
    -------
    PrunedGroup
        ``values`` holds the actual weights after compression
        (``shifted_pruned - constant``).
    """
    group = np.asarray(group)
    if group.ndim != 1:
        raise ValueError(f"expected a 1-D group, got shape {group.shape}")
    values, redundant, sparse, constant = zero_point_shift_groups(
        group[None, :], num_columns, bits=bits, constant_bits=constant_bits
    )
    return PrunedGroup(
        values=values[0],
        num_redundant=int(redundant[0]),
        num_sparse=int(sparse[0]),
        constant=int(constant[0]),
        strategy=PruningStrategy.ZERO_POINT_SHIFT,
        bits=bits,
    )


def _validate_groups(groups: np.ndarray, num_columns: int) -> np.ndarray:
    groups = np.asarray(groups).astype(np.int64)
    if groups.ndim != 2:
        raise ValueError(f"expected (num_groups, group_size), got {groups.shape}")
    if num_columns < 0 or num_columns > MAX_PRUNED_COLUMNS:
        raise ValueError(
            f"num_columns must be in [0, {MAX_PRUNED_COLUMNS}], got {num_columns}"
        )
    return groups


def zero_point_shift_groups(
    groups: np.ndarray,
    num_columns: int,
    bits: int = 8,
    constant_bits: int = CONSTANT_FIELD_BITS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized zero-point shifting over many groups (Algorithm 1).

    Returns
    -------
    tuple
        ``(actual_values, num_redundant, num_sparse, constants)``.
        ``actual_values`` are the decoded weights (shift already removed).
    """
    groups = _validate_groups(groups, num_columns)
    num_groups, group_size = groups.shape
    if num_columns == 0 or num_groups == 0 or group_size == 0:
        zeros = np.zeros(num_groups, dtype=np.int64)
        sparse = (
            zeros.copy()
            if num_columns == 0
            else np.full(num_groups, num_columns, dtype=np.int64)
        )
        return groups.copy(), zeros, sparse, zeros.copy()

    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    # The int32 fast path is sized for word-range inputs and the 6-bit BBS
    # constant field; anything exotic takes the slow-but-general oracle.  For
    # in-range inputs every base rounding error is bounded by the block size
    # plus the constant magnitude, and the per-group squared-error dot must
    # fit the int32 accumulator of _score_rows.
    error_bound = (1 << MAX_PRUNED_COLUMNS) + (1 << (constant_bits - 1))
    if (
        bits > 24
        or constant_bits > 8
        or group_size * error_bound * error_bound >= 2**31
        or int(groups.min()) < lo
        or int(groups.max()) > hi
    ):
        return zero_point_shift_groups_reference(
            groups, num_columns, bits=bits, constant_bits=constant_bits
        )

    candidates = _constant_candidates(constant_bits)
    work = np.int32
    groups_w = groups.astype(work)
    gmax = groups_w.max(axis=1)
    gmin = groups_w.min(axis=1)

    # The search only selects; all errors are exact integers, so the per-group
    # squared error (SSE) is tracked in int64 and compared exactly.  The
    # reference compares float64 MSEs, but those equal SSE / group_size with
    # every intermediate exactly representable, so integer SSE order matches
    # the reference float order, and ties break toward the smaller constant —
    # exactly the reference's ascending scan with strict improvement.
    sse_sentinel = np.iinfo(np.int64).max
    best_sse = np.full(num_groups, sse_sentinel, dtype=np.int64)
    best_constant = np.zeros(num_groups, dtype=np.int64)

    # Contiguous ascending chunks, visited centre-out: near-zero shifts win
    # almost always, so scoring them first (with the closest chunk halved to
    # shrink the one dense, unbounded pass) makes the elimination bound tight
    # for the outer chunks.  Selection is order-independent because ties
    # resolve on (SSE, constant).
    chunks = [
        candidates[start : start + _CANDIDATE_CHUNK]
        for start in range(0, candidates.size, _CANDIDATE_CHUNK)
    ]
    chunks.sort(key=lambda chunk: int(np.abs(chunk).min()))
    if chunks[0].size > 1:
        half = chunks[0].size // 2
        chunks[:1] = [chunks[0][:half], chunks[0][half:]]
        chunks.sort(key=lambda chunk: int(np.abs(chunk).min()))

    max_chunk = max(chunk.size for chunk in chunks)
    for g0 in range(0, num_groups, _GROUP_BLOCK):
        g1 = min(g0 + _GROUP_BLOCK, num_groups)
        sub = groups_w[g0:g1]
        scratch = np.empty((2, max_chunk, g1 - g0, group_size), dtype=work)
        for chunk in chunks:
            _search_chunk(
                sub,
                gmax[g0:g1],
                gmin[g0:g1],
                chunk,
                num_columns,
                bits,
                lo,
                hi,
                scratch,
                best_sse[g0:g1],
                best_constant[g0:g1],
            )

    # Reconstruct the winning candidate's full result in one 2-D pass; this is
    # 1/len(candidates) of the search work and lets the search track nothing
    # but (SSE, constant) per group.
    cw = best_constant.astype(work)
    unclipped = groups_w + cw[:, None]
    clipped = np.clip(unclipped, lo, hi)
    redundant, sparse = _redundant_sparse(
        np.clip(gmax + cw, lo, hi), np.clip(gmin + cw, lo, hi), bits, num_columns
    )
    values = (
        _prune_rows(unclipped, clipped, sparse, redundant, cw, bits, lo, hi)
        - cw[:, None]
    ).astype(np.int64)
    return values, redundant.astype(np.int64), sparse.astype(np.int64), best_constant


def _redundant_sparse(
    shifted_max: np.ndarray,
    shifted_min: np.ndarray,
    bits: int,
    num_columns: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group redundant/sparse column split from the group extrema.

    The two's-complement magnitude ``v if v >= 0 else -v - 1`` is maximized at
    one of the group's extreme values, so the redundant-column count of
    :func:`_redundant_columns_batch` follows from the (clipped) max and min
    alone — no per-element pass inside the candidate loop.
    """
    magnitudes = np.maximum(shifted_max, -shifted_min - 1)
    bit_length = (
        np.floor(np.log2(magnitudes.astype(np.float64) + 0.5)).astype(np.int64) + 1
    )
    redundant = np.clip(bits - (bit_length + 1), 0, MAX_REDUNDANT_COLUMNS)
    redundant = np.minimum(redundant, num_columns)
    return redundant, num_columns - redundant


def _rounding_choice(
    unclipped: np.ndarray,
    clipped: np.ndarray,
    sparse: np.ndarray,
    redundant: np.ndarray,
    constants: np.ndarray,
    bits: int,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Round every weight of every row to its nearer allowed block multiple.

    ``unclipped``/``clipped`` are ``(rows, group_size)``; ``sparse``,
    ``redundant`` and ``constants`` are per-row.  Returns ``(down, up,
    err_down, err_up, take_up)`` where the err arrays are the base absolute
    errors (what enters the SSE).

    The reference adds a ``2**(2 * bits)`` penalty to out-of-word-range sides
    and an infinity to redundant-bound violations before comparing; because
    that penalty dwarfs every base error (at most ``2**MAX_PRUNED_COLUMNS``
    plus the constant magnitude for in-range inputs), its effect on the
    comparison reduces to pure boolean logic, which is what ``take_up``
    implements: up must be allowed, and it wins on a penalty it avoids or —
    penalties equal — on a strictly smaller base error.
    """
    work = clipped.dtype.type
    k = sparse.astype(clipped.dtype, copy=False)[:, None]
    block = work(1) << k
    down = clipped & -block  # two's-complement AND == floor to a block multiple
    up = down + block
    cols = constants[:, None]
    down_penalized = down < cols + lo
    up_penalized = up > cols + hi
    up_limit = np.minimum(
        (np.int64(1) << (bits - 1 - redundant.astype(np.int64))) - 1, hi
    ).astype(clipped.dtype, copy=False)
    up_allowed = up <= up_limit[:, None]
    err_down = np.abs(down - unclipped)
    err_up = np.abs(up - unclipped)
    take_up = up_allowed & (
        (down_penalized & ~up_penalized)
        | ((down_penalized == up_penalized) & (err_up < err_down))
    )
    return down, up, err_down, err_up, take_up


def _prune_rows(
    unclipped: np.ndarray,
    clipped: np.ndarray,
    sparse: np.ndarray,
    redundant: np.ndarray,
    constants: np.ndarray,
    bits: int,
    lo: int,
    hi: int,
) -> np.ndarray:
    down, up, _, _, take_up = _rounding_choice(
        unclipped, clipped, sparse, redundant, constants, bits, lo, hi
    )
    return np.where(take_up, up, down)


def _score_rows(
    unclipped: np.ndarray,
    clipped: np.ndarray,
    sparse: np.ndarray,
    redundant: np.ndarray,
    constants: np.ndarray,
    bits: int,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Exact per-row SSE of the rounding the reference would pick."""
    _, _, err_down, err_up, take_up = _rounding_choice(
        unclipped, clipped, sparse, redundant, constants, bits, lo, hi
    )
    np.copyto(err_down, err_up, where=take_up)
    # Base errors are bounded by block + |constant| (< 2**7 + 2**7), so the
    # int32 dot cannot overflow for any accepted group size.
    return np.einsum("ns,ns->n", err_down, err_down).astype(np.int64, copy=False)


def _search_chunk(
    sub: np.ndarray,
    sub_max: np.ndarray,
    sub_min: np.ndarray,
    chunk: np.ndarray,
    num_columns: int,
    bits: int,
    lo: int,
    hi: int,
    scratch: np.ndarray,
    best_sse: np.ndarray,
    best_constant: np.ndarray,
) -> None:
    """Score one ascending chunk of candidate constants; update bests in place."""
    num_blockgroups, group_size = sub.shape
    num_candidates = chunk.size
    work = sub.dtype
    cs = chunk.astype(work)
    redundant, sparse = _redundant_sparse(
        np.clip(sub_max[None, :] + cs[:, None], lo, hi),
        np.clip(sub_min[None, :] + cs[:, None], lo, hi),
        bits,
        num_columns,
    )

    sse_sentinel = np.iinfo(np.int64).max
    if best_sse[0] != sse_sentinel:
        # Early candidate elimination: every stored value is a multiple of the
        # group's block, so a candidate's SSE is at least the rounding
        # distance of the *unclipped* shifted weights to block multiples.  A
        # bound strictly above the incumbent can never win (ties keep the
        # incumbent's smaller constant, found in an earlier, closer-to-zero
        # chunk), so only the surviving rows are gathered and scored.
        block3 = (work.type(1) << sparse.astype(work, copy=False))[:, :, None]
        residue = np.add(
            sub[None, :, :], cs[:, None, None], out=scratch[0, :num_candidates]
        )
        np.bitwise_and(residue, block3 - work.type(1), out=residue)
        other = np.subtract(block3, residue, out=scratch[1, :num_candidates])
        np.minimum(residue, other, out=residue)
        bound_sse = np.einsum("cgs,cgs->cg", residue, residue)
        active = bound_sse <= best_sse[None, :]
        if not active.any():
            return
        ci, gi = np.nonzero(active)
        unclipped = sub[gi] + cs[ci][:, None]
        sse_rows = _score_rows(
            unclipped,
            np.clip(unclipped, lo, hi),
            sparse[ci, gi],
            redundant[ci, gi],
            cs[ci],
            bits,
            lo,
            hi,
        )
        chunk_sse = np.full(
            (num_candidates, num_blockgroups), sse_sentinel, dtype=np.int64
        )
        chunk_sse[ci, gi] = sse_rows
    else:
        unclipped = np.add(
            sub[None, :, :], cs[:, None, None], out=scratch[0, :num_candidates]
        ).reshape(num_candidates * num_blockgroups, group_size)
        clipped = np.clip(unclipped, lo, hi, out=scratch[1, :num_candidates].reshape(
            num_candidates * num_blockgroups, group_size
        ))
        chunk_sse = _score_rows(
            unclipped,
            clipped,
            sparse.reshape(-1),
            redundant.reshape(-1),
            np.repeat(cs, num_blockgroups),
            bits,
            lo,
            hi,
        ).reshape(num_candidates, num_blockgroups)

    # First minimum along the ascending chunk == smallest winning constant.
    winner = np.argmin(chunk_sse, axis=0)
    group_index = np.arange(num_blockgroups)
    win_sse = chunk_sse[winner, group_index]
    win_constant = chunk[winner]
    improved = (win_sse < best_sse) | (
        (win_sse == best_sse) & (win_constant < best_constant)
    )
    improved &= win_sse != sse_sentinel
    best_sse[improved] = win_sse[improved]
    best_constant[improved] = win_constant[improved]


def zero_point_shift_groups_reference(
    groups: np.ndarray,
    num_columns: int,
    bits: int = 8,
    constant_bits: int = CONSTANT_FIELD_BITS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Original per-candidate Algorithm-1 search, kept as the golden oracle.

    One full ``(num_groups, group_size)`` pass per candidate constant; the
    batched :func:`zero_point_shift_groups` must stay bit-identical to this.
    """
    groups = _validate_groups(groups, num_columns)
    num_groups = groups.shape[0]
    if num_columns == 0:
        zeros = np.zeros(num_groups, dtype=np.int64)
        return groups.copy(), zeros, zeros.copy(), zeros.copy()

    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    candidates = _constant_candidates(constant_bits)  # (C,)

    best_mse = np.full(num_groups, np.inf)
    best_values = groups.copy()
    best_redundant = np.zeros(num_groups, dtype=np.int64)
    best_sparse = np.full(num_groups, num_columns, dtype=np.int64)
    best_constant = np.zeros(num_groups, dtype=np.int64)

    for constant in candidates:
        shifted_unclipped = groups + constant
        shifted = np.clip(shifted_unclipped, lo, hi)
        redundant = _redundant_columns_batch(shifted, bits)
        redundant = np.minimum(redundant, num_columns)
        sparse = num_columns - redundant
        pruned_shifted = _prune_low_columns(
            shifted, shifted_unclipped, sparse, bits, redundant, int(constant)
        )
        actual = pruned_shifted - constant
        mse = ((actual - groups) ** 2).mean(axis=1)

        improved = mse < best_mse
        if np.any(improved):
            best_mse = np.where(improved, mse, best_mse)
            best_values[improved] = actual[improved]
            best_redundant[improved] = redundant[improved]
            best_sparse[improved] = sparse[improved]
            best_constant[improved] = constant

    return best_values, best_redundant, best_sparse, best_constant


def _redundant_columns_batch(groups: np.ndarray, bits: int) -> np.ndarray:
    """Redundant-column count per group (vectorized, capped at the 2-bit field).

    A column right after the sign bit is redundant for the whole group exactly
    when every member still fits in one fewer two's-complement bit, so the
    group's redundant-column count is ``bits - 1 - bit_length(max_magnitude)``
    where the "magnitude" of a negative value ``v`` is ``-v - 1``.  This
    arithmetic form avoids materializing bit planes inside the 64-candidate
    search loop of Algorithm 1.
    """
    magnitudes = np.where(groups >= 0, groups, -groups - 1).max(axis=1)
    # bit_length(m) = floor(log2(m + 0.5)) + 1 for m >= 0 (the +0.5 keeps exact
    # powers of two on the right side of the floor and maps m == 0 to 0).
    bit_length = np.floor(np.log2(magnitudes.astype(np.float64) + 0.5)).astype(np.int64) + 1
    redundant = bits - (bit_length + 1)
    redundant = np.clip(redundant, 0, MAX_REDUNDANT_COLUMNS)
    return redundant.astype(np.int64)


def _prune_low_columns(
    shifted_clipped: np.ndarray,
    shifted_unclipped: np.ndarray,
    sparse: np.ndarray,
    bits: int,
    redundant: np.ndarray,
    constant: int,
) -> np.ndarray:
    """Zero the ``sparse`` low columns of every group, rounding each weight
    down or up to whichever multiple of ``2**sparse`` is closer to its
    (unclipped) shifted value, without violating the redundant-column bound
    and keeping the decoded weight (``pruned - constant``) in the word range.

    ``sparse`` and ``redundant`` are per-group; groups are processed in
    batches keyed by their sparse-column count.
    """
    result = shifted_clipped.copy()
    word_lo, word_hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    for k in np.unique(sparse):
        k = int(k)
        if k == 0:
            continue
        mask = sparse == k
        block = 1 << k
        subset = shifted_clipped[mask]
        target = shifted_unclipped[mask]
        down = (subset // block) * block
        up = down + block
        # The redundant columns recorded in metadata promise that the stored
        # value fits in (bits - redundant) bits; rounding up must not break
        # that promise, nor exceed the word range.
        reduced_hi = (1 << (bits - 1 - redundant[mask])) - 1
        up_limit = np.minimum(reduced_hi, word_hi)[:, None]
        err_down = np.abs(down - target).astype(np.float64)
        err_up = np.abs(up - target).astype(np.float64)
        # Keep the decoded weight (pruned - constant) within the word range:
        # out-of-range candidates only win if the alternative is structurally
        # forbidden (which never happens simultaneously; see the tests).
        out_of_range_penalty = float(1 << (2 * bits))
        err_down += np.where(down - constant < word_lo, out_of_range_penalty, 0.0)
        err_up += np.where(up - constant > word_hi, out_of_range_penalty, 0.0)
        err_up = np.where(up <= up_limit, err_up, np.inf)
        result[mask] = np.where(err_up < err_down, up, down)
    return result
