"""Binary pruning strategy 2: zero-point shifting (Figure 5, Algorithm 1).

For aggressive pruning budgets (4 columns in the paper's moderate setting),
replacing many low columns with one rounded average costs too much MSE.
Zero-point shifting instead searches for a constant to *add* to the whole
group (shifting its zero point) such that, after the shift, the low columns
can be zeroed out — each weight either truncates down or rounds up to the
next multiple of ``2**k`` — with minimal error against the original weights.
The chosen constant is stored in the 6-bit BBS-constant metadata field and is
subtracted back during computation (``actual = shifted_pruned - constant``).

The search over the 64 possible 6-bit constants is exhaustive and fully
vectorized over both the candidate constants and the groups of a layer, which
is what makes whole-model compression take seconds rather than hours.
"""

from __future__ import annotations

import numpy as np

from .encoding import (
    CONSTANT_FIELD_BITS,
    MAX_PRUNED_COLUMNS,
    MAX_REDUNDANT_COLUMNS,
    PrunedGroup,
    PruningStrategy,
)

__all__ = ["zero_point_shift_group", "zero_point_shift_groups"]


def _constant_candidates(constant_bits: int) -> np.ndarray:
    half = 1 << (constant_bits - 1)
    return np.arange(-half, half, dtype=np.int64)


def zero_point_shift_group(
    group: np.ndarray,
    num_columns: int,
    bits: int = 8,
    constant_bits: int = CONSTANT_FIELD_BITS,
) -> PrunedGroup:
    """Apply zero-point shifting to a single weight group.

    Parameters
    ----------
    group:
        1-D integer weight group in the signed ``bits`` range.
    num_columns:
        Total number of bit columns to prune (redundant + zeroed).
    bits:
        Weight word width.
    constant_bits:
        Width of the signed zero-point constant (6 in the BBS encoding).

    Returns
    -------
    PrunedGroup
        ``values`` holds the actual weights after compression
        (``shifted_pruned - constant``).
    """
    group = np.asarray(group)
    if group.ndim != 1:
        raise ValueError(f"expected a 1-D group, got shape {group.shape}")
    values, redundant, sparse, constant = zero_point_shift_groups(
        group[None, :], num_columns, bits=bits, constant_bits=constant_bits
    )
    return PrunedGroup(
        values=values[0],
        num_redundant=int(redundant[0]),
        num_sparse=int(sparse[0]),
        constant=int(constant[0]),
        strategy=PruningStrategy.ZERO_POINT_SHIFT,
        bits=bits,
    )


def zero_point_shift_groups(
    groups: np.ndarray,
    num_columns: int,
    bits: int = 8,
    constant_bits: int = CONSTANT_FIELD_BITS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized zero-point shifting over many groups (Algorithm 1).

    Returns
    -------
    tuple
        ``(actual_values, num_redundant, num_sparse, constants)``.
        ``actual_values`` are the decoded weights (shift already removed).
    """
    groups = np.asarray(groups).astype(np.int64)
    if groups.ndim != 2:
        raise ValueError(f"expected (num_groups, group_size), got {groups.shape}")
    if num_columns < 0 or num_columns > MAX_PRUNED_COLUMNS:
        raise ValueError(
            f"num_columns must be in [0, {MAX_PRUNED_COLUMNS}], got {num_columns}"
        )
    num_groups = groups.shape[0]
    if num_columns == 0:
        zeros = np.zeros(num_groups, dtype=np.int64)
        return groups.copy(), zeros, zeros.copy(), zeros.copy()

    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    candidates = _constant_candidates(constant_bits)  # (C,)

    best_mse = np.full(num_groups, np.inf)
    best_values = groups.copy()
    best_redundant = np.zeros(num_groups, dtype=np.int64)
    best_sparse = np.full(num_groups, num_columns, dtype=np.int64)
    best_constant = np.zeros(num_groups, dtype=np.int64)

    for constant in candidates:
        shifted = np.clip(groups + constant, lo, hi)
        redundant = _redundant_columns_batch(shifted, bits)
        redundant = np.minimum(redundant, num_columns)
        sparse = num_columns - redundant
        pruned_shifted = _prune_low_columns(
            shifted, groups + constant, sparse, bits, redundant, int(constant)
        )
        actual = pruned_shifted - constant
        mse = ((actual - groups) ** 2).mean(axis=1)

        improved = mse < best_mse
        if np.any(improved):
            best_mse = np.where(improved, mse, best_mse)
            best_values[improved] = actual[improved]
            best_redundant[improved] = redundant[improved]
            best_sparse[improved] = sparse[improved]
            best_constant[improved] = constant

    return best_values, best_redundant, best_sparse, best_constant


def _redundant_columns_batch(groups: np.ndarray, bits: int) -> np.ndarray:
    """Redundant-column count per group (vectorized, capped at the 2-bit field).

    A column right after the sign bit is redundant for the whole group exactly
    when every member still fits in one fewer two's-complement bit, so the
    group's redundant-column count is ``bits - 1 - bit_length(max_magnitude)``
    where the "magnitude" of a negative value ``v`` is ``-v - 1``.  This
    arithmetic form avoids materializing bit planes inside the 64-candidate
    search loop of Algorithm 1.
    """
    magnitudes = np.where(groups >= 0, groups, -groups - 1).max(axis=1)
    # bit_length(m) = floor(log2(m + 0.5)) + 1 for m >= 0 (the +0.5 keeps exact
    # powers of two on the right side of the floor and maps m == 0 to 0).
    bit_length = np.floor(np.log2(magnitudes.astype(np.float64) + 0.5)).astype(np.int64) + 1
    redundant = bits - (bit_length + 1)
    redundant = np.clip(redundant, 0, MAX_REDUNDANT_COLUMNS)
    return redundant.astype(np.int64)


def _prune_low_columns(
    shifted_clipped: np.ndarray,
    shifted_unclipped: np.ndarray,
    sparse: np.ndarray,
    bits: int,
    redundant: np.ndarray,
    constant: int,
) -> np.ndarray:
    """Zero the ``sparse`` low columns of every group, rounding each weight
    down or up to whichever multiple of ``2**sparse`` is closer to its
    (unclipped) shifted value, without violating the redundant-column bound
    and keeping the decoded weight (``pruned - constant``) in the word range.

    ``sparse`` and ``redundant`` are per-group; groups are processed in
    batches keyed by their sparse-column count.
    """
    result = shifted_clipped.copy()
    word_lo, word_hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    for k in np.unique(sparse):
        k = int(k)
        if k == 0:
            continue
        mask = sparse == k
        block = 1 << k
        subset = shifted_clipped[mask]
        target = shifted_unclipped[mask]
        down = (subset // block) * block
        up = down + block
        # The redundant columns recorded in metadata promise that the stored
        # value fits in (bits - redundant) bits; rounding up must not break
        # that promise, nor exceed the word range.
        reduced_hi = (1 << (bits - 1 - redundant[mask])) - 1
        up_limit = np.minimum(reduced_hi, word_hi)[:, None]
        err_down = np.abs(down - target).astype(np.float64)
        err_up = np.abs(up - target).astype(np.float64)
        # Keep the decoded weight (pruned - constant) within the word range:
        # out-of-range candidates only win if the alternative is structurally
        # forbidden (which never happens simultaneously; see the tests).
        out_of_range_penalty = float(1 << (2 * bits))
        err_down += np.where(down - constant < word_lo, out_of_range_penalty, 0.0)
        err_up += np.where(up - constant > word_hi, out_of_range_penalty, 0.0)
        err_up = np.where(up <= up_limit, err_up, np.inf)
        result[mask] = np.where(err_up < err_down, up, down)
    return result
