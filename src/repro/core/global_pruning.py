"""Hardware-aware global binary pruning (Section III-C, Algorithm 2).

Binary pruning at the group level is lossy, and some weight channels (e.g.
convolution filters with large-magnitude outliers) are much more sensitive to
that loss than others.  The paper identifies sensitive channels globally —
across all layers at once — using the per-channel quantization scaling factors
as a magnitude proxy, keeps the top ``beta`` fraction of channels at full
8-bit precision, and prunes the rest.  To keep the hardware busy, the number
of sensitive channels in every layer is rounded up to a multiple of ``CH``,
the number of channels the accelerator processes in parallel (32 for
BitVert).

This module implements the channel-selection logic and a whole-model driver
that combines it with :func:`repro.core.binary_pruning.prune_tensor`.  The two
pruning presets evaluated in the paper are provided as
:data:`CONSERVATIVE_PRESET` (10 % sensitive channels, 2 columns pruned by
rounded averaging) and :data:`MODERATE_PRESET` (20 % sensitive channels, 4
columns pruned by zero-point shifting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .binary_pruning import PrunedTensor, prune_tensor
from .encoding import PruningStrategy

__all__ = [
    "PruningPreset",
    "CONSERVATIVE_PRESET",
    "MODERATE_PRESET",
    "select_sensitive_channels",
    "global_binary_prune",
    "GlobalPruningResult",
]


@dataclass(frozen=True)
class PruningPreset:
    """A named global-pruning configuration (Section V-A)."""

    name: str
    beta: float
    num_columns: int
    strategy: PruningStrategy
    group_size: int = 32
    channel_parallelism: int = 32

    def describe(self) -> str:
        return (
            f"{self.name}: {self.beta:.0%} sensitive channels at 8-bit, "
            f"{self.num_columns} columns pruned via {self.strategy.value} "
            f"(group {self.group_size}, CH {self.channel_parallelism})"
        )


#: Conservative pruning: 10 % sensitive channels, 2 columns, rounded averaging.
CONSERVATIVE_PRESET = PruningPreset(
    name="conservative",
    beta=0.10,
    num_columns=2,
    strategy=PruningStrategy.ROUNDED_AVERAGE,
)

#: Moderate pruning: 20 % sensitive channels, 4 columns, zero-point shifting.
MODERATE_PRESET = PruningPreset(
    name="moderate",
    beta=0.20,
    num_columns=4,
    strategy=PruningStrategy.ZERO_POINT_SHIFT,
)


@dataclass
class GlobalPruningResult:
    """Output of :func:`global_binary_prune` for a whole model."""

    pruned_layers: dict[str, PrunedTensor]
    sensitive_masks: dict[str, np.ndarray]
    preset: PruningPreset

    def total_storage_bits(self) -> int:
        return sum(layer.storage_bits() for layer in self.pruned_layers.values())

    def total_dense_bits(self) -> int:
        return sum(layer.dense_storage_bits() for layer in self.pruned_layers.values())

    def compression_ratio(self) -> float:
        compressed = self.total_storage_bits()
        if compressed == 0:
            return float("inf")
        return self.total_dense_bits() / compressed

    def effective_bits(self) -> float:
        weights = sum(
            layer.values.size for layer in self.pruned_layers.values()
        )
        if weights == 0:
            return 0.0
        return self.total_storage_bits() / weights

    def mean_mse(self) -> float:
        layers = list(self.pruned_layers.values())
        if not layers:
            return 0.0
        return float(np.mean([layer.mse() for layer in layers]))

    def mean_kl_divergence(self) -> float:
        layers = list(self.pruned_layers.values())
        if not layers:
            return 0.0
        return float(np.mean([layer.kl_divergence() for layer in layers]))

    def sensitive_fraction(self) -> float:
        total = sum(mask.size for mask in self.sensitive_masks.values())
        sensitive = sum(int(mask.sum()) for mask in self.sensitive_masks.values())
        return sensitive / total if total else 0.0


def select_sensitive_channels(
    channel_scores: dict[str, np.ndarray],
    beta: float,
    channel_parallelism: int = 32,
) -> dict[str, np.ndarray]:
    """Select sensitive channels globally and align per-layer counts to ``CH``.

    Parameters
    ----------
    channel_scores:
        Per-layer 1-D arrays of channel sensitivity scores.  The paper uses
        the per-channel quantization scaling factor; any magnitude proxy
        (channel standard deviation, max absolute value) works the same way.
    beta:
        Minimum global fraction of channels kept sensitive (at full
        precision).
    channel_parallelism:
        ``CH`` in Algorithm 2 — sensitive-channel counts per layer are rounded
        up to a multiple of this so reordered chunks fill the PE array.

    Returns
    -------
    dict[str, numpy.ndarray]
        Boolean mask per layer, ``True`` marking sensitive channels.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    if channel_parallelism <= 0:
        raise ValueError("channel_parallelism must be positive")
    if not channel_scores:
        return {}

    # Global sort: channels from every layer compete on the same score scale.
    entries: list[tuple[float, str, int]] = []
    for layer_name, scores in channel_scores.items():
        scores = np.asarray(scores, dtype=np.float64)
        for index, score in enumerate(scores):
            entries.append((float(score), layer_name, index))
    entries.sort(key=lambda item: item[0], reverse=True)

    total_channels = len(entries)
    num_global_sensitive = int(np.ceil(beta * total_channels))
    globally_sensitive: dict[str, set[int]] = {name: set() for name in channel_scores}
    for _score, layer_name, index in entries[:num_global_sensitive]:
        globally_sensitive[layer_name].add(index)

    masks: dict[str, np.ndarray] = {}
    for layer_name, scores in channel_scores.items():
        scores = np.asarray(scores, dtype=np.float64)
        num_channels = scores.size
        count = len(globally_sensitive[layer_name])
        if count > 0 or beta > 0.0:
            # Round the per-layer count up to a multiple of CH (never past the
            # layer size); if the layer got no globally sensitive channels it
            # still contributes at least zero — the paper only aligns layers
            # that have at least one sensitive channel, and so do we.
            if count > 0:
                aligned = int(np.ceil(count / channel_parallelism)) * channel_parallelism
                count = min(aligned, num_channels)
        order = np.argsort(-scores, kind="stable")
        mask = np.zeros(num_channels, dtype=bool)
        mask[order[:count]] = True
        masks[layer_name] = mask
    return masks


def global_binary_prune(
    layer_weights: dict[str, np.ndarray],
    channel_scores: dict[str, np.ndarray],
    preset: PruningPreset = MODERATE_PRESET,
    bits: int = 8,
    keep_original: bool = True,
) -> GlobalPruningResult:
    """Apply hardware-aware global binary pruning to a whole model.

    Parameters
    ----------
    layer_weights:
        Per-layer integer weight matrices of shape ``(channels, reduction)``.
    channel_scores:
        Per-layer channel sensitivity scores (same keys, length = channels).
    preset:
        Pruning configuration (:data:`CONSERVATIVE_PRESET` or
        :data:`MODERATE_PRESET`, or a custom :class:`PruningPreset`).
    """
    missing = set(layer_weights) - set(channel_scores)
    if missing:
        raise ValueError(f"missing channel scores for layers: {sorted(missing)}")
    for name, weights in layer_weights.items():
        scores = np.asarray(channel_scores[name])
        if scores.shape[0] != np.asarray(weights).shape[0]:
            raise ValueError(
                f"layer {name!r}: {weights.shape[0]} channels but "
                f"{scores.shape[0]} scores"
            )

    masks = select_sensitive_channels(
        {name: channel_scores[name] for name in layer_weights},
        beta=preset.beta,
        channel_parallelism=preset.channel_parallelism,
    )
    pruned_layers: dict[str, PrunedTensor] = {}
    for name, weights in layer_weights.items():
        pruned_layers[name] = prune_tensor(
            weights,
            num_columns=preset.num_columns,
            strategy=preset.strategy,
            group_size=preset.group_size,
            bits=bits,
            sensitive_channels=masks[name],
            keep_original=keep_original,
        )
    return GlobalPruningResult(
        pruned_layers=pruned_layers, sensitive_masks=masks, preset=preset
    )
