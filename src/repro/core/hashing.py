"""Stable content hashing of tensors and experiment configurations.

The service layer caches experiment results by a digest of their inputs, so
the digest must be *stable*: independent of dict insertion order, memory
layout, or Python hash randomization, and collision-safe across types (the
integer ``1`` and the string ``"1"`` must hash differently).  Every supported
value is folded into the hash with an explicit type tag; unsupported types
raise ``TypeError`` instead of silently falling back to ``repr``, which would
make cache keys depend on interpreter details.

Supported values: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
numpy scalars and arrays, enums, dataclasses, and arbitrarily nested
dict/list/tuple/set containers of the above.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import struct
from typing import Any

import numpy as np

__all__ = ["stable_digest", "tensor_digest"]


def _update(hasher: "hashlib._Hash", value: Any) -> None:
    """Fold one value into ``hasher`` with an unambiguous type-tagged encoding."""
    if value is None:
        hasher.update(b"N;")
    elif isinstance(value, (bool, np.bool_)):
        hasher.update(b"b1;" if value else b"b0;")
    elif isinstance(value, (int, np.integer)):
        hasher.update(f"i{int(value)};".encode())
    elif isinstance(value, (float, np.floating)):
        # struct gives a byte-exact encoding (repr of -0.0 / denormals varies).
        hasher.update(b"f" + struct.pack("<d", float(value)) + b";")
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        hasher.update(f"s{len(encoded)}:".encode() + encoded + b";")
    elif isinstance(value, (bytes, bytearray)):
        hasher.update(f"y{len(value)}:".encode() + bytes(value) + b";")
    elif isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        header = f"a{contiguous.dtype.str}{contiguous.shape}:".encode()
        hasher.update(header + contiguous.tobytes() + b";")
    elif isinstance(value, enum.Enum):
        hasher.update(f"e{type(value).__name__}.{value.name};".encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        hasher.update(f"D{type(value).__name__}(".encode())
        for field in dataclasses.fields(value):
            _update(hasher, field.name)
            _update(hasher, getattr(value, field.name))
        hasher.update(b");")
    elif isinstance(value, dict):
        hasher.update(f"d{len(value)}(".encode())
        items = sorted(value.items(), key=lambda kv: (type(kv[0]).__name__, repr(kv[0])))
        for key, item in items:
            _update(hasher, key)
            _update(hasher, item)
        hasher.update(b");")
    elif isinstance(value, (list, tuple)):
        tag = b"l" if isinstance(value, list) else b"t"
        hasher.update(tag + f"{len(value)}(".encode())
        for item in value:
            _update(hasher, item)
        hasher.update(b");")
    elif isinstance(value, (set, frozenset)):
        hasher.update(f"S{len(value)}(".encode())
        for item in sorted(value, key=lambda v: (type(v).__name__, repr(v))):
            _update(hasher, item)
        hasher.update(b");")
    else:
        raise TypeError(f"cannot hash value of type {type(value).__name__!r}")


def stable_digest(*values: Any, algorithm: str = "sha256") -> str:
    """Hex digest of any nesting of supported values; stable across processes."""
    hasher = hashlib.new(algorithm)
    for value in values:
        _update(hasher, value)
    return hasher.hexdigest()


def tensor_digest(array: np.ndarray, algorithm: str = "sha256") -> str:
    """Hex digest of one array's dtype + shape + contents."""
    return stable_digest(np.asarray(array), algorithm=algorithm)
