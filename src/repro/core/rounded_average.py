"""Binary pruning strategy 1: rounded column averaging (Figure 4).

Given a weight group and a target number of columns to prune, the strategy

1. removes up to 3 *redundant* columns — columns right after the sign column
   whose content equals the sign column for every group member (these cost
   nothing to drop),
2. replaces the remaining-to-prune lowest-significance columns of every weight
   with a single shared constant: the rounded average of the values those low
   columns held, which minimizes the group MSE among all shared constants,
3. records that constant in the 6-bit BBS-constant metadata field.

The strategy is cheap and works well for small pruning budgets (2 columns in
the paper's conservative setting) because the low bits of nearby weights tend
to hold similar values.
"""

from __future__ import annotations

import numpy as np

from .bitplane import to_bitplanes
from .encoding import (
    MAX_PRUNED_COLUMNS,
    MAX_REDUNDANT_COLUMNS,
    PrunedGroup,
    PruningStrategy,
)

__all__ = ["rounded_average_group", "rounded_average_groups"]


def _check_target(num_columns: int, bits: int) -> None:
    if num_columns < 0:
        raise ValueError(f"num_columns must be non-negative, got {num_columns}")
    if num_columns > MAX_PRUNED_COLUMNS:
        raise ValueError(
            f"the BBS encoding prunes at most {MAX_PRUNED_COLUMNS} columns of a "
            f"{bits}-bit weight, got {num_columns}"
        )


def rounded_average_group(
    group: np.ndarray, num_columns: int, bits: int = 8
) -> PrunedGroup:
    """Apply rounded column averaging to a single weight group.

    Parameters
    ----------
    group:
        1-D integer array (the weights of one group) in the signed ``bits``
        range.
    num_columns:
        Total number of bit columns to prune (redundant + averaged).
    bits:
        Weight word width.

    Returns
    -------
    PrunedGroup
        The pruned group; its ``values`` are the actual weights after
        compression and decode exactly from the BBS encoding.
    """
    group = np.asarray(group)
    _check_target(num_columns, bits)
    if group.ndim != 1:
        raise ValueError(f"expected a 1-D group, got shape {group.shape}")
    if num_columns == 0:
        return PrunedGroup(
            values=group.astype(np.int64),
            num_redundant=0,
            num_sparse=0,
            constant=0,
            strategy=PruningStrategy.ROUNDED_AVERAGE,
            bits=bits,
        )
    pruned_values, num_redundant, num_sparse, constant = _rounded_average_core(
        group[None, :].astype(np.int64), num_columns, bits
    )
    return PrunedGroup(
        values=pruned_values[0],
        num_redundant=int(num_redundant[0]),
        num_sparse=int(num_sparse[0]),
        constant=int(constant[0]),
        strategy=PruningStrategy.ROUNDED_AVERAGE,
        bits=bits,
    )


def rounded_average_groups(
    groups: np.ndarray, num_columns: int, bits: int = 8
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized rounded averaging over many groups at once.

    Parameters
    ----------
    groups:
        2-D array of shape ``(num_groups, group_size)``.
    num_columns:
        Columns to prune in every group.

    Returns
    -------
    tuple
        ``(pruned_values, num_redundant, num_sparse, constants)`` where
        ``pruned_values`` has the same shape as ``groups`` and the other three
        are 1-D per-group arrays.
    """
    groups = np.asarray(groups)
    if groups.ndim != 2:
        raise ValueError(f"expected (num_groups, group_size), got {groups.shape}")
    _check_target(num_columns, bits)
    if num_columns == 0:
        zeros = np.zeros(groups.shape[0], dtype=np.int64)
        return groups.astype(np.int64), zeros, zeros.copy(), zeros.copy()
    return _rounded_average_core(groups.astype(np.int64), num_columns, bits)


def _redundant_columns_batch(groups: np.ndarray, bits: int) -> np.ndarray:
    """Redundant-column count per group, vectorized, capped at the metadata field."""
    planes = to_bitplanes(groups, bits)  # (G, N, bits)
    sign = planes[:, :, :1]
    # Column c (1-indexed from the sign) is redundant if every row matches the
    # sign bit in columns 1..c.
    matches = np.all(planes[:, :, 1:] == sign, axis=1)  # (G, bits - 1)
    cumulative = np.cumprod(matches, axis=1)
    # Never drop every magnitude column: at most bits - 2 can be redundant.
    redundant = cumulative[:, : bits - 2].sum(axis=1)
    return np.minimum(redundant, MAX_REDUNDANT_COLUMNS).astype(np.int64)


def _rounded_average_core(
    groups: np.ndarray, num_columns: int, bits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    num_groups, _ = groups.shape
    num_redundant = _redundant_columns_batch(groups, bits)
    num_redundant = np.minimum(num_redundant, num_columns)
    num_sparse = (num_columns - num_redundant).astype(np.int64)

    pruned = groups.copy()
    constants = np.zeros(num_groups, dtype=np.int64)
    # Groups sharing the same number of sparse columns can be handled together.
    for sparse_cols in np.unique(num_sparse):
        k = int(sparse_cols)
        mask = num_sparse == k
        if k == 0:
            continue
        block = 1 << k
        subset = groups[mask]
        # Low k bits as an unsigned value in [0, 2**k); Python/numpy floor
        # division gives the right base for negative two's-complement values.
        low = np.mod(subset, block)
        base = subset - low
        # Rounded average of the low parts, one constant per group.  Round
        # half to even mirrors numpy and keeps the estimator unbiased.
        avg = np.rint(low.mean(axis=1)).astype(np.int64)
        avg = np.clip(avg, 0, block - 1)
        pruned[mask] = base + avg[:, None]
        constants[mask] = avg

    return pruned, num_redundant, num_sparse, constants
