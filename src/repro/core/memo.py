"""In-process artifact memo: content-hash reuse of expensive pipeline stages.

The 16 experiment functions repeatedly synthesize the same model weights and
re-compress the same layers: every ``BenchmarkSuite`` figure builds BitVert
accelerators that :func:`~repro.core.global_pruning.global_binary_prune` the
same seven models, and the KL/accuracy studies prune identical layers under
identical presets.  PR 1's service cache deduplicates whole *jobs* from the
outside; this memo deduplicates the *artifacts inside* them, so a cold job is
fast too.

Two :class:`~repro.core.cache.ResultCache` instances (the PR 1 machinery,
memory-only) are keyed by :func:`~repro.core.hashing.stable_digest` of the
full input:

* ``models`` — ``synthesize_model`` outputs, keyed by the model spec, seed,
  statistics, and sampling caps;
* ``tensors`` — ``prune_tensor`` results, keyed by the layer digest and the
  complete pruning configuration (columns, strategy, group size, word width,
  sensitive-channel mask).

Cache invalidation is therefore automatic: any change to any input — a
different seed, cap, preset, mask, or a single weight — produces a different
digest and a fresh computation.  ``tensors`` entries keep private array
copies and hits return fresh copies, so callers may freely mutate a
``PrunedTensor`` they receive.  ``models`` entries share their (large)
``LayerWeights`` objects across hits to avoid copying whole models per
experiment; treat synthesized weights as read-only, as every caller in the
repository does.

The memo is per-process (worker processes build their own) and is enabled by
default; set ``REPRO_MEMO=0`` to disable it, or use :func:`memo_disabled` to
suspend it in a scope (benchmarks measuring cold kernels do this).  Capacity
is bounded LRU; tune with ``REPRO_MEMO_MODELS`` / ``REPRO_MEMO_TENSORS``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .cache import ResultCache

__all__ = [
    "ArtifactMemo",
    "get_memo",
    "memo_stats",
    "clear_memo",
    "memo_disabled",
]


def _env_int(name: str, default: int) -> int:
    try:
        value = int(os.environ.get(name, ""))
    except ValueError:
        return default
    return value if value > 0 else default


def _env_enabled() -> bool:
    return os.environ.get("REPRO_MEMO", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


class ArtifactMemo:
    """LRU memo for synthesized models and compressed tensors."""

    def __init__(
        self,
        max_models: int | None = None,
        max_tensors: int | None = None,
        enabled: bool | None = None,
    ):
        self.models = ResultCache(
            max_entries=max_models or _env_int("REPRO_MEMO_MODELS", 32)
        )
        self.tensors = ResultCache(
            max_entries=max_tensors or _env_int("REPRO_MEMO_TENSORS", 256)
        )
        self.enabled = _env_enabled() if enabled is None else enabled

    def stats(self) -> dict:
        """Hit/miss/store counters per artifact kind (for tests and the API)."""
        return {
            "enabled": self.enabled,
            "models": self.models.stats(),
            "tensors": self.tensors.stats(),
        }

    def clear(self) -> None:
        """Drop every memoized artifact and reset the hit/miss counters."""
        self.models = ResultCache(max_entries=self.models.max_entries)
        self.tensors = ResultCache(max_entries=self.tensors.max_entries)


_MEMO = ArtifactMemo()


def get_memo() -> ArtifactMemo:
    """The process-wide artifact memo."""
    return _MEMO


def memo_stats() -> dict:
    return _MEMO.stats()


def clear_memo() -> None:
    _MEMO.clear()


@contextmanager
def memo_disabled() -> Iterator[None]:
    """Temporarily bypass the memo (cold-path benchmarks and golden tests)."""
    previous = _MEMO.enabled
    _MEMO.enabled = False
    try:
        yield
    finally:
        _MEMO.enabled = previous
