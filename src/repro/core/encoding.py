"""BBS compression encoding (Section III-B, "BBS Compression Encoding").

After binary pruning, a weight group of ``group_size`` p-bit weights is stored
as:

* the surviving bit columns (``p - num_redundant - num_sparse`` columns of
  ``group_size`` bits each), and
* an 8-bit metadata word per group: 2 bits for the number of *redundant*
  columns removed right after the sign column (0-3), and 6 bits for the *BBS
  constant* — the rounded column average for the rounded-averaging strategy or
  the zero-point shift for the zero-point-shifting strategy.

This module defines the dataclasses that carry a pruned group through the
pipeline (:class:`PrunedGroup`), the encoded storage form
(:class:`EncodedGroup`), and the encode/decode round trip plus storage-size
accounting used to report effective bit widths and memory-footprint
reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .bitplane import (
    column_weights,
    count_redundant_columns,
    to_bitplanes,
)

__all__ = [
    "PruningStrategy",
    "METADATA_BITS",
    "REDUNDANT_FIELD_BITS",
    "CONSTANT_FIELD_BITS",
    "MAX_REDUNDANT_COLUMNS",
    "MAX_PRUNED_COLUMNS",
    "PrunedGroup",
    "EncodedGroup",
    "encode_group",
    "decode_group",
    "group_storage_bits",
    "effective_bits_per_weight",
]


class PruningStrategy(str, Enum):
    """Which binary-pruning strategy produced a group (Section III-B)."""

    NONE = "none"
    ROUNDED_AVERAGE = "rounded_average"
    ZERO_POINT_SHIFT = "zero_point_shift"


#: Per-group metadata size in bits: 2 bits for the redundant-column count plus
#: 6 bits for the BBS constant (the paper's empirically chosen encoding).
REDUNDANT_FIELD_BITS = 2
CONSTANT_FIELD_BITS = 6
METADATA_BITS = REDUNDANT_FIELD_BITS + CONSTANT_FIELD_BITS

#: The 2-bit field can describe at most 3 redundant columns.
MAX_REDUNDANT_COLUMNS = (1 << REDUNDANT_FIELD_BITS) - 1

#: Pruning more than 6 columns of an 8-bit weight leaves at most one
#: effective bit, which the paper rules out as unacceptable.
MAX_PRUNED_COLUMNS = CONSTANT_FIELD_BITS


@dataclass(frozen=True)
class PrunedGroup:
    """Result of binary pruning applied to one weight group.

    Attributes
    ----------
    values:
        The *actual* (decoded) integer weights after pruning — what the dot
        product will effectively use.
    num_redundant:
        Redundant columns removed right after the sign column (0-3).
    num_sparse:
        Bi-directional sparse columns generated at the low-significance end.
    constant:
        The BBS constant: the rounded low-bit average (unsigned) for
        ``ROUNDED_AVERAGE``, the zero-point shift (signed) for
        ``ZERO_POINT_SHIFT``, 0 when no pruning was applied.
    strategy:
        Which strategy produced the group.
    bits:
        Word width of the original weights (8 in all paper experiments).
    """

    values: np.ndarray
    num_redundant: int
    num_sparse: int
    constant: int
    strategy: PruningStrategy
    bits: int = 8

    @property
    def num_pruned(self) -> int:
        """Total pruned columns (redundant + sparse)."""
        return self.num_redundant + self.num_sparse

    @property
    def stored_columns(self) -> int:
        """Bit columns that must actually be stored for this group."""
        return self.bits - self.num_pruned

    def storage_bits(self) -> int:
        """Total storage in bits for this group, including metadata."""
        return group_storage_bits(len(self.values), self.num_pruned, self.bits)


@dataclass(frozen=True)
class EncodedGroup:
    """On-"disk" (memory) representation of a BBS-compressed weight group.

    ``stored_planes`` holds the surviving bit columns in MSB-first order with
    shape ``(group_size, stored_columns)``.  The first stored column carries
    the negative place value ``-2**(bits - 1 - num_redundant)``.
    """

    stored_planes: np.ndarray
    num_redundant: int
    num_sparse: int
    constant: int
    strategy: PruningStrategy
    bits: int = 8

    @property
    def group_size(self) -> int:
        return int(self.stored_planes.shape[0])

    @property
    def stored_columns(self) -> int:
        return int(self.stored_planes.shape[1])

    def storage_bits(self) -> int:
        """Storage footprint of this group in bits (payload + metadata)."""
        return self.group_size * self.stored_columns + METADATA_BITS

    def metadata_word(self) -> int:
        """Pack the metadata into the 8-bit word the hardware reads.

        Layout (MSB to LSB): ``[redundant:2][constant:6]`` with the constant
        stored as a 6-bit two's-complement field for the zero-point-shift
        strategy and as an unsigned field for rounded averaging.
        """
        constant_field = self.constant & ((1 << CONSTANT_FIELD_BITS) - 1)
        return (self.num_redundant << CONSTANT_FIELD_BITS) | constant_field


def _validate_counts(num_redundant: int, num_sparse: int, bits: int) -> None:
    if not 0 <= num_redundant <= MAX_REDUNDANT_COLUMNS:
        raise ValueError(
            f"num_redundant must be in [0, {MAX_REDUNDANT_COLUMNS}], got {num_redundant}"
        )
    if num_sparse < 0:
        raise ValueError(f"num_sparse must be non-negative, got {num_sparse}")
    if num_redundant + num_sparse > MAX_PRUNED_COLUMNS:
        raise ValueError(
            f"cannot prune more than {MAX_PRUNED_COLUMNS} columns of a {bits}-bit "
            f"weight, got {num_redundant + num_sparse}"
        )


def group_storage_bits(group_size: int, num_pruned: int, bits: int = 8) -> int:
    """Storage in bits of one compressed group (payload + 8-bit metadata)."""
    if num_pruned < 0 or num_pruned > bits:
        raise ValueError(f"num_pruned must be in [0, {bits}], got {num_pruned}")
    if num_pruned == 0:
        # Uncompressed groups (e.g. sensitive channels) carry no metadata.
        return group_size * bits
    return group_size * (bits - num_pruned) + METADATA_BITS


def effective_bits_per_weight(group_size: int, num_pruned: int, bits: int = 8) -> float:
    """Average stored bits per weight for a compressed group.

    >>> effective_bits_per_weight(32, 4)
    4.25
    """
    return group_storage_bits(group_size, num_pruned, bits) / float(group_size)


def encode_group(pruned: PrunedGroup) -> EncodedGroup:
    """Turn a :class:`PrunedGroup` into its stored bit-column form.

    The encoder verifies the structural claims made by the pruner: the values
    must actually fit in ``bits - num_redundant`` bits (redundant columns are
    droppable) and, once the strategy's constant contribution is removed, the
    ``num_sparse`` lowest columns must be constant across the group.
    """
    _validate_counts(pruned.num_redundant, pruned.num_sparse, pruned.bits)
    values = np.asarray(pruned.values)
    bits = pruned.bits

    if pruned.strategy is PruningStrategy.ZERO_POINT_SHIFT:
        # The stored form is the shifted weight (original + constant), whose
        # low columns are all zero.
        stored_values = values + pruned.constant
    else:
        stored_values = values

    reduced_bits = bits - pruned.num_redundant
    lo, hi = -(1 << (reduced_bits - 1)), (1 << (reduced_bits - 1)) - 1
    if stored_values.size and (
        int(stored_values.min()) < lo or int(stored_values.max()) > hi
    ):
        raise ValueError(
            f"group values do not fit in {reduced_bits} bits after removing "
            f"{pruned.num_redundant} redundant columns"
        )

    planes = to_bitplanes(stored_values, reduced_bits)
    if pruned.num_sparse:
        low = planes[:, reduced_bits - pruned.num_sparse:]
        if pruned.strategy is PruningStrategy.ZERO_POINT_SHIFT:
            if np.any(low != 0):
                raise ValueError(
                    "zero-point-shifted group has non-zero bits in the pruned columns"
                )
        elif pruned.strategy is PruningStrategy.ROUNDED_AVERAGE:
            expected = to_bitplanes(
                np.full(len(values), pruned.constant, dtype=np.int64),
                pruned.num_sparse + 1,
            )[:, 1:]
            if not np.array_equal(low, expected):
                raise ValueError(
                    "rounded-average group's low columns do not match the BBS constant"
                )
        else:
            raise ValueError("cannot have sparse columns without a pruning strategy")
        planes = planes[:, : reduced_bits - pruned.num_sparse]

    return EncodedGroup(
        stored_planes=planes,
        num_redundant=pruned.num_redundant,
        num_sparse=pruned.num_sparse,
        constant=pruned.constant,
        strategy=pruned.strategy,
        bits=bits,
    )


def decode_group(encoded: EncodedGroup) -> np.ndarray:
    """Reconstruct the actual integer weights from an :class:`EncodedGroup`.

    Inverse of :func:`encode_group`: ``decode_group(encode_group(p))`` equals
    ``p.values`` for every valid :class:`PrunedGroup`.
    """
    reduced_bits = encoded.bits - encoded.num_redundant
    stored_bits = reduced_bits - encoded.num_sparse
    if encoded.stored_planes.shape[1] != stored_bits:
        raise ValueError(
            f"stored planes have {encoded.stored_planes.shape[1]} columns, "
            f"expected {stored_bits}"
        )
    weights = column_weights(reduced_bits, signed=True)[:stored_bits]
    high_part = np.tensordot(
        encoded.stored_planes.astype(np.int64), weights, axes=([-1], [0])
    )

    if encoded.strategy is PruningStrategy.ZERO_POINT_SHIFT:
        return high_part - encoded.constant
    if encoded.strategy is PruningStrategy.ROUNDED_AVERAGE:
        return high_part + encoded.constant
    if encoded.num_sparse:
        raise ValueError("cannot decode sparse columns without a pruning strategy")
    return high_part


def unpruned_group(values: np.ndarray, bits: int = 8) -> PrunedGroup:
    """Wrap an uncompressed (sensitive-channel) group in the common dataclass."""
    values = np.asarray(values)
    return PrunedGroup(
        values=values.copy(),
        num_redundant=0,
        num_sparse=0,
        constant=0,
        strategy=PruningStrategy.NONE,
        bits=bits,
    )


def natural_redundant_columns(values: np.ndarray, bits: int = 8) -> int:
    """Redundant-column count of an unmodified group, capped at the 2-bit field."""
    planes = to_bitplanes(np.asarray(values), bits)
    return count_redundant_columns(planes, max_redundant=MAX_REDUNDANT_COLUMNS)


__all__ += ["unpruned_group", "natural_redundant_columns"]
