"""Core BBS algorithms: bit-plane analysis, binary pruning, and encoding.

This subpackage implements the paper's primary algorithmic contribution:

* :mod:`repro.core.bitplane` — two's-complement / sign-magnitude bit-plane
  decomposition and redundant-column analysis.
* :mod:`repro.core.sparsity` — value, bit, and bi-directional bit sparsity
  statistics (Figure 3).
* :mod:`repro.core.metrics` — MSE, KL divergence, effective bit width.
* :mod:`repro.core.grouping` — dot-product group reshaping.
* :mod:`repro.core.encoding` — the BBS compression encoding and its
  encode/decode round trip.
* :mod:`repro.core.rounded_average` / :mod:`repro.core.zero_point_shift` —
  the two binary-pruning strategies (Figures 4 and 5, Algorithm 1).
* :mod:`repro.core.binary_pruning` — tensor-level pruning driver and the BBS
  dot-product identities.
* :mod:`repro.core.global_pruning` — hardware-aware global per-channel
  pruning (Algorithm 2) with the paper's conservative/moderate presets.
* :mod:`repro.core.hashing` — stable content digests of tensors and
  configurations (cache keys for the service layer).
* :mod:`repro.core.cache` / :mod:`repro.core.memo` — content-hash LRU cache
  and the process-wide artifact memo that deduplicates model synthesis and
  layer compression across experiments.
"""

from .bitplane import (
    column_weights,
    count_redundant_columns,
    from_bitplanes,
    from_sign_magnitude_planes,
    int_range,
    remove_redundant_columns,
    to_bitplanes,
    to_sign_magnitude_planes,
)
from .binary_pruning import (
    PrunedTensor,
    bbs_dot_product,
    compressed_dot_product,
    prune_group,
    prune_tensor,
)
from .encoding import (
    EncodedGroup,
    METADATA_BITS,
    PrunedGroup,
    PruningStrategy,
    decode_group,
    effective_bits_per_weight,
    encode_group,
    group_storage_bits,
)
from .global_pruning import (
    CONSERVATIVE_PRESET,
    MODERATE_PRESET,
    GlobalPruningResult,
    PruningPreset,
    global_binary_prune,
    select_sensitive_channels,
)
from .cache import CacheStats, ResultCache
from .grouping import GroupedTensor, group_weights, ungroup_weights
from .hashing import stable_digest, tensor_digest
from .memo import ArtifactMemo, clear_memo, get_memo, memo_disabled, memo_stats
from .metrics import (
    cosine_similarity,
    effective_bits,
    kl_divergence,
    mse,
    normalized_kl,
    rmse,
    sqnr_db,
)
from .rounded_average import rounded_average_group, rounded_average_groups
from .sparsity import (
    SparsityReport,
    bbs_effectual_bits_per_vector,
    bbs_sparsity,
    bit_sparsity_sign_magnitude,
    bit_sparsity_twos_complement,
    effectual_bits_per_vector,
    sparsity_report,
    value_sparsity,
)
from .zero_point_shift import (
    zero_point_shift_group,
    zero_point_shift_groups,
    zero_point_shift_groups_reference,
)

__all__ = [
    # bitplane
    "column_weights",
    "count_redundant_columns",
    "from_bitplanes",
    "from_sign_magnitude_planes",
    "int_range",
    "remove_redundant_columns",
    "to_bitplanes",
    "to_sign_magnitude_planes",
    # binary pruning
    "PrunedTensor",
    "bbs_dot_product",
    "compressed_dot_product",
    "prune_group",
    "prune_tensor",
    # encoding
    "EncodedGroup",
    "METADATA_BITS",
    "PrunedGroup",
    "PruningStrategy",
    "decode_group",
    "effective_bits_per_weight",
    "encode_group",
    "group_storage_bits",
    # global pruning
    "CONSERVATIVE_PRESET",
    "MODERATE_PRESET",
    "GlobalPruningResult",
    "PruningPreset",
    "global_binary_prune",
    "select_sensitive_channels",
    # grouping
    "GroupedTensor",
    "group_weights",
    "ungroup_weights",
    # hashing
    "stable_digest",
    "tensor_digest",
    # caching / memoization
    "ArtifactMemo",
    "CacheStats",
    "ResultCache",
    "clear_memo",
    "get_memo",
    "memo_disabled",
    "memo_stats",
    # metrics
    "cosine_similarity",
    "effective_bits",
    "kl_divergence",
    "mse",
    "normalized_kl",
    "rmse",
    "sqnr_db",
    # sparsity
    "SparsityReport",
    "bbs_effectual_bits_per_vector",
    "bbs_sparsity",
    "bit_sparsity_sign_magnitude",
    "bit_sparsity_twos_complement",
    "effectual_bits_per_vector",
    "sparsity_report",
    "value_sparsity",
    # strategies
    "rounded_average_group",
    "rounded_average_groups",
    "zero_point_shift_group",
    "zero_point_shift_groups",
    "zero_point_shift_groups_reference",
]
