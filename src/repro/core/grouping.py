"""Weight-grouping utilities.

BBS operates on *groups* of weights that contribute to the same dot-product
output (Section III-A).  For a 2-D weight matrix (output channels × input
features, the canonical GEMM view used by both convolutions via im2col and by
transformer linear layers) a group is a contiguous slice of ``group_size``
input features within one output channel.  This module reshapes tensors to and
from the ``(num_channels, num_groups, group_size)`` layout that the pruning
and accelerator code operates on, padding the reduction dimension if needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GroupedTensor", "group_weights", "ungroup_weights"]


@dataclass(frozen=True)
class GroupedTensor:
    """A weight matrix reshaped into dot-product groups.

    Attributes
    ----------
    groups:
        Array of shape ``(channels, num_groups, group_size)``.
    original_shape:
        Shape of the original 2-D weight matrix ``(channels, reduction)``.
    group_size:
        Number of weights per group.
    pad:
        Number of zero-padding elements appended to the reduction dimension so
        it divides evenly into groups.
    """

    groups: np.ndarray
    original_shape: tuple[int, int]
    group_size: int
    pad: int

    @property
    def num_channels(self) -> int:
        return self.groups.shape[0]

    @property
    def num_groups(self) -> int:
        return self.groups.shape[1]

    def flat_groups(self) -> np.ndarray:
        """All groups stacked into shape ``(channels * num_groups, group_size)``."""
        return self.groups.reshape(-1, self.group_size)


def group_weights(weights: np.ndarray, group_size: int = 32) -> GroupedTensor:
    """Reshape a 2-D weight matrix into dot-product groups.

    Convolution weights of shape ``(K, C, R, S)`` should first be flattened to
    ``(K, C * R * S)``; :func:`repro.nn.workloads.layer_weight_matrix` does
    this for the model-zoo layers.

    The reduction dimension is zero-padded up to a multiple of ``group_size``.
    Zero padding is neutral for every analysis in this package: padded zeros
    contribute no one-bits, no value, and no dot-product error.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(
            f"expected a 2-D (channels, reduction) matrix, got shape {weights.shape}"
        )
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    channels, reduction = weights.shape
    pad = (-reduction) % group_size
    if pad:
        weights = np.pad(weights, ((0, 0), (0, pad)))
    num_groups = (reduction + pad) // group_size
    grouped = weights.reshape(channels, num_groups, group_size)
    return GroupedTensor(
        groups=grouped,
        original_shape=(channels, reduction),
        group_size=group_size,
        pad=pad,
    )


def ungroup_weights(grouped: GroupedTensor) -> np.ndarray:
    """Inverse of :func:`group_weights`; strips any padding that was added."""
    channels, reduction = grouped.original_shape
    flat = grouped.groups.reshape(channels, -1)
    return flat[:, :reduction].copy()
