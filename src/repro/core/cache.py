"""Content-hash result cache: in-memory LRU with optional on-disk persistence.

Keys are stable digests of the inputs that produced a value (see
:mod:`repro.core.hashing`), so a repeated compression/experiment request is a
dictionary lookup instead of a recomputation.  Two layers build on this class:
the service worker pool (whole-job results, persisted as JSON) and the
in-process artifact memo of :mod:`repro.core.memo` (live Python artifacts,
memory only).  Values must be JSON-serializable only when a persistence
directory is configured.

The cache is thread-safe: the HTTP server handles each request on its own
thread and the worker pool stores results from worker threads.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from ..chaos.plan import maybe_fail
from ..obs.metrics import get_metrics

__all__ = ["MISSING", "CacheStats", "ResultCache"]

# Process-wide counters mirroring every cache instance's CacheStats: the
# per-instance stats stay authoritative for /v1/cache, the global families
# aggregate across instances (service pool, campaign pools, artifact memo)
# for /v1/metrics scrapes.  Bound once — counter lookups are off the hot path.
_OBS = get_metrics()
_OBS_HITS = _OBS.counter("repro_cache_hits_total", "Result-cache hits (memory or disk).")
_OBS_MISSES = _OBS.counter("repro_cache_misses_total", "Result-cache misses.")
_OBS_STORES = _OBS.counter("repro_cache_stores_total", "Result-cache stores.")
_OBS_EVICTIONS = _OBS.counter("repro_cache_evictions_total", "Result-cache LRU evictions.")
_OBS_DISK_ERRORS = _OBS.counter(
    "repro_cache_disk_errors_total",
    "Failed best-effort disk reads/writes of the result cache.",
)


class _Missing:
    """Sentinel distinguishing "no cached entry" from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


#: Pass as ``default`` to :meth:`ResultCache.get` to tell a miss apart from a
#: stored ``None`` — a legitimate job result that must still cache-hit.
MISSING: Any = _Missing()


class CacheStats:
    """Mutable hit/miss/eviction counters, exported as a dict for the API."""

    __slots__ = ("hits", "misses", "evictions", "stores", "disk_hits", "disk_errors")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        self.disk_hits = 0
        self.disk_errors = 0

    def as_dict(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
            "hit_rate": self.hits / total if total else 0.0,
        }


class ResultCache:
    """LRU mapping of content digests to job results.

    Parameters
    ----------
    max_entries:
        In-memory capacity; the least-recently-used entry is evicted first.
        Evicted entries remain recoverable from disk when ``directory`` is set.
    directory:
        Optional persistence directory.  Every stored value is also written to
        ``<directory>/<key>.json`` (atomically, via rename), and misses fall
        back to disk — so a restarted service keeps its warmed cache.
    """

    def __init__(self, max_entries: int = 256, directory: str | os.PathLike | None = None):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._stats = CacheStats()
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for ``key`` (LRU-refreshing), else ``default``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                _OBS_HITS.inc()
                return self._entries[key]
        # Disk fallback outside the lock: file I/O must not serialize every
        # concurrent cache access across worker and handler threads.
        value = self._load_from_disk(key)
        with self._lock:
            if key in self._entries:  # raced with a concurrent put/get
                self._entries.move_to_end(key)
                self._stats.hits += 1
                _OBS_HITS.inc()
                return self._entries[key]
            if value is not MISSING:
                self._insert(key)
                self._entries[key] = value
                self._stats.hits += 1
                self._stats.disk_hits += 1
                _OBS_HITS.inc()
                return value
            self._stats.misses += 1
            _OBS_MISSES.inc()
            return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, evicting LRU entries beyond capacity.

        The optional disk write is best-effort: a value that cannot be
        serialized (or a full/unwritable disk) only loses persistence — the
        in-memory entry stands and the caller's already-computed result is
        never turned into a failure.  Such skips count as ``disk_errors``.
        """
        with self._lock:
            self._insert(key)
            self._entries[key] = value
            self._stats.stores += 1
            _OBS_STORES.inc()
        if self._directory is not None:
            # Written outside the lock; the tmp-file + rename keeps each key's
            # file atomic, and concurrent writers of the same key write equal
            # content (keys are content digests).
            try:
                self._write_to_disk(key, value)
            except (TypeError, ValueError, OSError):
                with self._lock:
                    self._stats.disk_errors += 1
                _OBS_DISK_ERRORS.inc()

    def _insert(self, key: str) -> None:
        """Reserve a slot for ``key``: refresh if present, else evict to fit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            _OBS_EVICTIONS.inc()

    # ------------------------------------------------------------------ #
    # Disk persistence
    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{key}.json"

    def _write_to_disk(self, key: str, value: Any) -> None:
        maybe_fail("cache.disk_write")
        path = self._path(key)
        # Unique tmp file per writer: concurrent stores of the same key must
        # not interleave into one tmp file before the atomic rename.
        with tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{key}.", suffix=".tmp", delete=False
        ) as handle:
            try:
                json.dump(value, handle, allow_nan=False)
            except BaseException:
                # A half-written tmp file must not outlive the failed store.
                handle.close()
                with contextlib.suppress(OSError):
                    os.unlink(handle.name)
                raise
        os.replace(handle.name, path)

    def _load_from_disk(self, key: str) -> Any:
        if self._directory is None:
            return MISSING
        path = self._path(key)
        if not path.exists():
            return MISSING
        try:
            with path.open() as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return MISSING

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "persistent": self._directory is not None,
                **self._stats.as_dict(),
            }

    def clear(self) -> None:
        """Drop the in-memory entries (persisted files are left in place)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership check without touching LRU order or counters."""
        with self._lock:
            return key in self._entries
