"""Best-effort seam audit: swallowed exceptions must leave a trace.

The repo's best-effort zones — the job journal, the disk cache, the trace
fan-out — are allowed to absorb failures so the primary work proceeds, but
the contract is that every absorbed failure increments a counter or is
re-raised: silence is how partial outages go unnoticed for weeks.

The checker flags ``except`` handlers whose body does nothing (``pass``,
``continue``, ``...``) when either the handler is broad (``Exception``,
``BaseException``, or bare) anywhere in the tree, or the handler — of any
type — lives in a designated best-effort module.  Handlers that count,
log, or re-raise have a non-trivial body and never fire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..index import FileContext, SymbolIndex
from ..registry import Checker, register_checker

#: Modules where even a narrow silent handler is a finding: these seams
#: exist to absorb faults, so absorbing one silently defeats the design.
BEST_EFFORT_MODULES = {
    "repro.service.journal",
    "repro.core.cache",
    "repro.obs.trace",
}

BROAD_NAMES = {"Exception", "BaseException"}


def _exception_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []  # bare except
    if isinstance(node, ast.Tuple):
        names = []
        for elt in node.elts:
            names.extend(_exception_names(elt))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring or bare ``...`` is still silence
        return False
    return True


@register_checker
class SilentExceptChecker(Checker):
    """Silent exception handlers in broad catches or best-effort zones."""

    name = "silent-except"
    description = (
        "except handlers that swallow errors silently are findings: broad "
        "catches (Exception/BaseException/bare) everywhere, any catch in "
        "the best-effort zones (journal, disk cache, trace fan-out) — "
        "count the failure on a metric or re-raise"
    )

    def check_file(self, ctx: FileContext, index: SymbolIndex) -> Iterator[Finding]:
        in_zone = ctx.module in BEST_EFFORT_MODULES
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_silent(node.body):
                continue
            names = _exception_names(node.type)
            broad = not names or any(name in BROAD_NAMES for name in names)
            if broad or in_zone:
                caught = ", ".join(names) if names else "everything (bare except)"
                where = "best-effort zone" if in_zone and not broad else "broad catch"
                yield Finding(
                    path=str(ctx.path), line=node.lineno, checker=self.name,
                    message=(
                        f"silent except ({caught}) in {where}: increment a "
                        f"counter or re-raise so the failure stays visible"
                    ),
                )
