"""Lock discipline: acquisition-order cycles and unguarded state writes.

Two checkers share the lock-discovery machinery:

* ``lock-order`` builds the cross-module lock-acquisition graph — an edge
  ``L -> M`` means some code path acquires ``M`` (directly, lexically
  nested, or through a resolvable call chain) while holding ``L`` — and
  flags every cycle as a potential deadlock.
* ``lock-guard`` flags writes to ``self._*`` state in classes that own a
  ``_lock`` when the write happens outside any ``with self._lock`` scope.
  A private method whose every intra-class call site is (transitively)
  under the lock counts as guarded — the ``_helper()``-called-under-lock
  idiom used by ``CircuitBreaker`` and ``WorkerPool`` — so only genuinely
  reachable-unlocked writes fire.

Lock identity is ``<module>.<Class>.<attr>`` for instance locks assigned
``threading.Lock()``/``RLock()`` in ``__init__``, and ``<module>.<name>``
for module-level locks.  Locks the index cannot name (e.g. a lock passed
in as a constructor argument) are skipped rather than guessed.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..findings import Finding
from ..index import FileContext, FunctionInfo, SymbolIndex
from ..registry import Checker, register_checker


def _is_lock_ctor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("Lock", "RLock")
    return isinstance(func, ast.Name) and func.id in ("Lock", "RLock")


def _self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _private_self_root(target: ast.expr) -> str | None:
    """Root ``self._x`` attribute of a write target, else None.

    Peels subscripts and attribute chains so ``self._jobs[k] = v`` and
    ``self._stats.errors += 1`` both resolve to their guarded root.
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        attr = _self_attr(node)
        if attr is not None:
            return attr if attr.startswith("_") else None
        node = node.value if not isinstance(node, ast.Starred) else node.value
    return None


def _write_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _class_locks(cls: ast.ClassDef) -> set[str]:
    """Instance lock attributes assigned in ``__init__``."""
    locks: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for sub in ast.walk(stmt):
                for target in _write_targets(sub) if isinstance(sub, ast.stmt) else ():
                    attr = _self_attr(target)
                    if attr and isinstance(sub, ast.Assign) and _is_lock_ctor(sub.value):
                        locks.add(attr)
    return locks


def _module_locks(tree: ast.Module) -> set[str]:
    """Module-level names assigned ``threading.Lock()``/``RLock()``."""
    locks: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


class _MethodScan:
    """Lexical facts about one method: writes, calls, both with guardedness."""

    def __init__(self) -> None:
        #: (attr, line, guarded) for every ``self._*`` write.
        self.writes: list[tuple[str, int, bool]] = []
        #: (method name, guarded) for every ``self.<m>()`` call site.
        self.calls: list[tuple[str, bool]] = []


def _scan_method(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, lock_attrs: set[str]
) -> _MethodScan:
    scan = _MethodScan()

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                _self_attr(item.context_expr) in lock_attrs for item in node.items
            )
            for item in node.items:
                visit(item, guarded)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ) and node is not fn:
            return  # nested defs run at unknown times; stay conservative
        if isinstance(node, ast.stmt):
            for target in _write_targets(node):
                attr = _private_self_root(target)
                if attr is not None and attr not in lock_attrs:
                    scan.writes.append((attr, node.lineno, guarded))
        if isinstance(node, ast.Call):
            attr = _self_attr(node.func)
            if attr is not None:
                scan.calls.append((attr, guarded))
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(fn, guarded=False)
    return scan


def _guarded_methods(scans: dict[str, _MethodScan]) -> set[str]:
    """Private methods whose every intra-class call site holds the lock.

    Fixpoint over the intra-class call graph: a call site counts as held
    when it is lexically under ``with self._lock`` or its caller is itself
    always-held.  Methods with no intra-class call sites never qualify —
    they may be entered from anywhere.
    """
    callers: dict[str, list[tuple[str, bool]]] = {}
    for caller, scan in scans.items():
        for callee, guarded in scan.calls:
            if callee in scans:
                callers.setdefault(callee, []).append((caller, guarded))
    guarded: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in scans:
            if name in guarded or not name.startswith("_") or name == "__init__":
                continue
            sites = callers.get(name, [])
            if sites and all(held or caller in guarded for caller, held in sites):
                guarded.add(name)
                changed = True
    return guarded


@register_checker
class LockGuardChecker(Checker):
    """Unguarded ``self._*`` writes in classes that own a ``_lock``."""

    name = "lock-guard"
    description = (
        "writes to self._* state in a class owning a _lock must happen "
        "under `with self._lock` (directly or via an always-locked helper)"
    )

    def check_file(self, ctx: FileContext, index: SymbolIndex) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = _class_locks(cls)
        if "_lock" not in lock_attrs:
            return  # the contract applies to the canonical `_lock` idiom only
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        scans = {
            name: _scan_method(fn, lock_attrs) for name, fn in methods.items()
        }
        safe = _guarded_methods(scans)
        for name, scan in scans.items():
            if name == "__init__" or name in safe:
                continue
            for attr, line, held in scan.writes:
                if not held:
                    yield Finding(
                        path=str(ctx.path), line=line, checker=self.name,
                        message=(
                            f"{cls.name}.{name} writes self.{attr} outside "
                            f"`with self._lock` (class owns _lock)"
                        ),
                    )


@register_checker
class LockOrderChecker(Checker):
    """Cycles in the cross-module lock-acquisition graph."""

    name = "lock-order"
    description = (
        "the cross-module lock-acquisition graph (lock held while another "
        "is acquired, directly or through calls) must stay acyclic"
    )

    def check_project(self, index: SymbolIndex) -> Iterator[Finding]:
        lock_ids = self._discover_locks(index)
        edges = self._build_edges(index, lock_ids)
        yield from self._report_cycles(edges)

    # ------------------------------------------------------------------ #
    # Lock discovery and identification
    # ------------------------------------------------------------------ #

    def _discover_locks(self, index: SymbolIndex) -> dict[str, set[str]]:
        """Per-module: class lock attrs (``Cls.attr``) and module lock names."""
        lock_ids: dict[str, set[str]] = {}
        for ctx in index.files:
            names = {f"{name}" for name in _module_locks(ctx.tree)}
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    for attr in _class_locks(node):
                        names.add(f"{node.name}.{attr}")
            if names:
                lock_ids[ctx.module] = names
        return lock_ids

    def _lock_id(
        self, fn: FunctionInfo, expr: ast.expr, lock_ids: dict[str, set[str]]
    ) -> str | None:
        known = lock_ids.get(fn.module, set())
        attr = _self_attr(expr)
        if attr is not None and fn.cls is not None and f"{fn.cls}.{attr}" in known:
            return f"{fn.module}.{fn.cls}.{attr}"
        if isinstance(expr, ast.Name) and expr.id in known:
            return f"{fn.module}.{expr.id}"
        return None

    # ------------------------------------------------------------------ #
    # Acquisition graph
    # ------------------------------------------------------------------ #

    def _acquired_closure(
        self,
        fn: FunctionInfo,
        index: SymbolIndex,
        lock_ids: dict[str, set[str]],
        memo: dict[str, set[str]],
        visiting: set[str],
    ) -> set[str]:
        """Every lock ``fn`` may acquire, following resolvable calls."""
        if fn.qualname in memo:
            return memo[fn.qualname]
        if fn.qualname in visiting:
            return set()  # recursion: partial answer, refined by the caller
        visiting.add(fn.qualname)
        acquired: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self._lock_id(fn, item.context_expr, lock_ids)
                    if lock:
                        acquired.add(lock)
        for callee, _line in fn.calls:
            resolved = index.resolve(fn, callee)
            if resolved is not None:
                acquired |= self._acquired_closure(
                    resolved, index, lock_ids, memo, visiting
                )
        visiting.discard(fn.qualname)
        memo[fn.qualname] = acquired
        return acquired

    def _build_edges(
        self, index: SymbolIndex, lock_ids: dict[str, set[str]]
    ) -> dict[str, dict[str, tuple[str, int]]]:
        """``L -> {M: (path, line)}`` acquisition-order edges with one site."""
        memo: dict[str, set[str]] = {}
        edges: dict[str, dict[str, tuple[str, int]]] = {}

        def add_edge(held: str, inner: str, path: str, line: int) -> None:
            if held != inner:
                edges.setdefault(held, {}).setdefault(inner, (path, line))

        for fn in index.functions.values():
            self._walk_holding(fn, fn.node, [], index, lock_ids, memo, add_edge)
        return edges

    def _walk_holding(self, fn, node, held, index, lock_ids, memo, add_edge) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in node.items:
                lock = self._lock_id(fn, item.context_expr, lock_ids)
                if lock:
                    for outer in held:
                        add_edge(outer, lock, str(fn.ctx.path), node.lineno)
                    acquired.append(lock)
            inner = held + acquired
            for stmt in node.body:
                self._walk_holding(fn, stmt, inner, index, lock_ids, memo, add_edge)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ) and node is not fn.node:
            return
        if isinstance(node, ast.Call) and held:
            from ..index import call_name

            callee = call_name(node.func)
            resolved = index.resolve(fn, callee) if callee else None
            if resolved is not None:
                for lock in self._acquired_closure(
                    resolved, index, lock_ids, memo, set()
                ):
                    for outer in held:
                        add_edge(outer, lock, str(fn.ctx.path), node.lineno)
        for child in ast.iter_child_nodes(node):
            self._walk_holding(fn, child, held, index, lock_ids, memo, add_edge)

    # ------------------------------------------------------------------ #
    # Cycle reporting
    # ------------------------------------------------------------------ #

    def _report_cycles(
        self, edges: dict[str, dict[str, tuple[str, int]]]
    ) -> Iterator[Finding]:
        seen: set[tuple[str, ...]] = set()
        for start in sorted(edges):
            for cycle in self._cycles_from(start, edges):
                rotation = min(range(len(cycle)), key=lambda i: cycle[i])
                canonical = tuple(cycle[rotation:] + cycle[:rotation])
                if canonical in seen:
                    continue
                seen.add(canonical)
                path, line = edges[cycle[0]][cycle[1 % len(cycle)]]
                chain = " -> ".join(canonical + (canonical[0],))
                yield Finding(
                    path=path, line=line, checker=self.name,
                    message=f"lock-order cycle (potential deadlock): {chain}",
                )

    def _cycles_from(
        self, start: str, edges: dict[str, dict[str, tuple[str, int]]]
    ) -> Iterable[list[str]]:
        cycles: list[list[str]] = []
        stack = [(start, [start])]
        while stack:
            node, trail = stack.pop()
            for nxt in sorted(edges.get(node, ())):
                if nxt == start:
                    cycles.append(list(trail))
                elif nxt not in trail and len(trail) < 8:
                    stack.append((nxt, trail + [nxt]))
        return cycles
