"""Span/timer hygiene: observability contexts must survive exceptions.

A span finished only on the straight-line path leaks the moment the traced
code raises: the trace shows a span that never ended, and downstream tools
(waterfalls, duration histograms) silently lose the one request that
mattered — the failing one.  The repo's contract is that ``timed()`` is
always a ``with`` context, and a manually-managed span from
``start_span()`` is finished in a ``finally`` block or on both the success
path and a broad exception path.

Spans that *escape* the creating function — passed to another call (e.g.
``activate(span)``), stored on ``self``, returned — have their lifecycle
managed elsewhere and are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..index import FileContext, SymbolIndex, call_name
from ..registry import Checker, register_checker

BROAD_NAMES = {"Exception", "BaseException"}


def _exception_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for elt in node.elts:
            names.extend(_exception_names(elt))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _annotate(fn: ast.AST) -> tuple[dict[int, str], set[int]]:
    """Per-node (by ``id``) execution region, plus nodes inside nested defs.

    Regions: ``normal`` (straight-line), ``narrow``/``broad`` (inside an
    except handler of that breadth), ``finally``.
    """
    regions: dict[int, str] = {}
    nested: set[int] = set()

    def visit(node: ast.AST, region: str, in_nested: bool) -> None:
        regions[id(node)] = region
        if in_nested:
            nested.add(id(node))
        if isinstance(node, ast.Try):
            for stmt in list(node.body) + list(node.orelse):
                visit(stmt, region, in_nested)
            for handler in node.handlers:
                names = _exception_names(handler.type)
                broad = not names or any(n in BROAD_NAMES for n in names)
                for stmt in handler.body:
                    visit(stmt, "broad" if broad else "narrow", in_nested)
            for stmt in node.finalbody:
                visit(stmt, "finally", in_nested)
            return
        child_nested = in_nested or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            visit(child, region, child_nested)

    for child in ast.iter_child_nodes(fn):
        visit(child, "normal", False)
    return regions, nested


def _parent_map(fn: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


@register_checker
class SpanHygieneChecker(Checker):
    """Span/timed lifecycles that leak on exception paths."""

    name = "span-hygiene"
    description = (
        "timed() must be a `with` context, and start_span() spans must "
        "finish via try/finally or on both success and broad-exception "
        "paths — success-path-only .finish() leaks the span when the "
        "traced code raises"
    )

    def check_file(self, ctx: FileContext, index: SymbolIndex) -> Iterator[Finding]:
        yield from self._check_timed(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_fn(ctx, node)

    # ------------------------------------------------------------------ #
    # timed() usage
    # ------------------------------------------------------------------ #

    def _check_timed(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == "repro.obs.timing":
            return  # the defining module (docstring examples, internals)
        managed: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in managed:
                continue
            name = call_name(node.func)
            if name and name.rsplit(".", 1)[-1] == "timed":
                yield Finding(
                    path=str(ctx.path), line=node.lineno, checker=self.name,
                    message=(
                        "timed() must be used as a context manager "
                        "(`with timed(...) as timer:`)"
                    ),
                )

    # ------------------------------------------------------------------ #
    # start_span() lifecycles
    # ------------------------------------------------------------------ #

    def _check_fn(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        tracked = self._span_assignments(fn)
        if not tracked:
            return
        regions, nested = _annotate(fn)
        parents = _parent_map(fn)
        escaped: set[str] = set()
        rebound: set[str] = set()
        finishes: dict[str, set[str]] = {}

        for node in ast.walk(fn):
            if not (isinstance(node, ast.Name) and node.id in tracked):
                continue
            name = node.id
            parent = parents.get(id(node))
            if isinstance(node.ctx, ast.Store):
                if not (
                    isinstance(parent, ast.Assign)
                    and id(parent) == tracked[name][1]
                ):
                    rebound.add(name)  # reassigned: lifecycle untrackable
                continue
            if isinstance(parent, ast.Attribute) and parent.value is node:
                grand = parents.get(id(parent))
                if (
                    parent.attr == "finish"
                    and isinstance(grand, ast.Call)
                    and grand.func is parent
                ):
                    if id(grand) in nested:
                        escaped.add(name)  # closure-held finish: managed elsewhere
                    else:
                        finishes.setdefault(name, set()).add(
                            regions.get(id(grand), "normal")
                        )
                continue  # other attribute access (set_attr, .context, ...)
            escaped.add(name)  # passed along, returned, stored, compared, ...

        for name, (line, _assign_id) in sorted(tracked.items()):
            if name in escaped or name in rebound:
                continue
            regs = finishes.get(name, set())
            if "finally" in regs:
                continue
            if "broad" in regs and regs - {"broad"}:
                continue  # success path + broad exception path both finish
            problem = (
                "is never finished" if not regs
                else "is finished only on the success path"
            )
            yield Finding(
                path=str(ctx.path), line=line, checker=self.name,
                message=(
                    f"span {name!r} {problem}; close it in try/finally or "
                    f"finish it in a broad except handler too"
                ),
            )

    @staticmethod
    def _span_assignments(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, tuple[int, int]]:
        """``name -> (lineno, id(assign))`` for ``x = start_span(...)``."""
        tracked: dict[str, tuple[int, int]] = {}

        def find(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
                ):
                    continue  # nested scopes check themselves
                if (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                    and isinstance(child.value, ast.Call)
                ):
                    cname = call_name(child.value.func)
                    if cname and cname.rsplit(".", 1)[-1] == "start_span":
                        tracked[child.targets[0].id] = (child.lineno, id(child))
                find(child)

        find(fn)
        return tracked
