"""Metric-label cardinality: label values must come from closed sets.

Prometheus-style metrics multiply storage by the cross product of their
label values; one f-string label built from user input turns a bounded
family into an unbounded one.  The repo's contract is that label values
are literals, enum-ish locals, or pass through a collapse helper
(``_route_label``, ``str(...)`` over a closed set) — never string
interpolation at the call site.

The checker inspects the keyword arguments of every ``.inc``/``.observe``/
``.set``/``.dec`` call (the ``**labels`` channel of the metrics facade) and
the operation argument of ``timed(...)`` (which becomes the ``operation``
label on ``repro_operation_seconds``), flagging f-strings, string
concatenation/``%`` formatting, and ``.format(...)`` calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..index import FileContext, SymbolIndex, call_name
from ..registry import Checker, register_checker

#: The metrics facade's mutator methods; their kwargs are label values.
METRIC_METHODS = {"inc", "observe", "set", "dec"}

#: Keyword arguments that are measurement values, not labels.
VALUE_KWARGS = {"amount", "value"}


def _is_interpolated(node: ast.expr) -> bool:
    """String built at the call site (unbounded label value)."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return any(
            isinstance(side, ast.JoinedStr)
            or (isinstance(side, ast.Constant) and isinstance(side.value, str))
            for side in (node.left, node.right)
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr == "format"
    return False


@register_checker
class MetricLabelsChecker(Checker):
    """Interpolated strings used as metric label values."""

    name = "metric-labels"
    description = (
        "metric label values (.inc/.observe/.set/.dec kwargs and the "
        "timed() operation name) must come from closed sets or collapse "
        "helpers, never f-strings or string formatting at the call site"
    )

    def check_file(self, ctx: FileContext, index: SymbolIndex) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in METRIC_METHODS:
                for kw in node.keywords:
                    if kw.arg is None or kw.arg in VALUE_KWARGS:
                        continue
                    if _is_interpolated(kw.value):
                        yield Finding(
                            path=str(ctx.path), line=node.lineno, checker=self.name,
                            message=(
                                f"label {kw.arg!r} on .{func.attr}() is built "
                                f"by string interpolation; label values must "
                                f"come from a closed set or a collapse helper"
                            ),
                        )
            elif call_name(func) in ("timed", "timing.timed"):
                if node.args and _is_interpolated(node.args[0]):
                    yield Finding(
                        path=str(ctx.path), line=node.lineno, checker=self.name,
                        message=(
                            "timed() operation name is built by string "
                            "interpolation; it becomes the 'operation' label "
                            "on repro_operation_seconds"
                        ),
                    )
