"""Built-in checkers; importing this package registers them all."""

from . import digest, locks, metric_labels, seams, spans  # noqa: F401
