"""Digest purity: content hashes must be deterministic functions of inputs.

``stable_digest``/``tensor_digest`` outputs are content addresses — cache
keys, checkpoint names, provenance records.  Any nondeterminism feeding a
digest silently splits the address space: the same logical work stops
deduplicating and resumed campaigns recompute finished cells.

Scope is built around what actually *feeds* the digest.  A function that
calls a digest constructor is a root: its whole body is scanned for
nondeterminism sources (a ``time.time()`` two lines above the digest call
is almost certainly about to be hashed).  Functions called *inside the
digest call's argument list* have their return values hashed, so they —
and, transitively, what they call — are scanned in full, including reads
of digest-excluded fields (``deadline_s``), which in a root only count
when they appear inside the argument list itself.  Calls a root makes
*outside* the argument list (deadline timers, span bookkeeping) do not
feed the digest and are deliberately out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..index import FunctionInfo, SymbolIndex, call_name
from ..registry import Checker, register_checker

#: Digest constructors; calling one makes a function a purity root.
DIGEST_FUNCS = {"stable_digest", "tensor_digest", "config_digest", "job_digest"}

#: Module roots whose every call is nondeterministic in digest scope.
IMPURE_MODULES = {"time", "random"}

#: Fields excluded from digest construction by contract; reading one while
#: building digest input means the exclusion is about to be violated.
EXCLUDED_FIELDS = {"deadline_s"}

#: How many call hops past a digest argument the feeding scope extends.
MAX_DEPTH = 3


@register_checker
class DigestPurityChecker(Checker):
    """Nondeterminism feeding digest construction."""

    name = "digest-purity"
    description = (
        "code feeding stable_digest/tensor_digest must not use time, "
        "random, os.urandom, id(), or unordered-set iteration, and must "
        "not read digest-excluded fields (deadline_s)"
    )

    def check_project(self, index: SymbolIndex) -> Iterator[Finding]:
        feeders: dict[str, FunctionInfo] = {}
        for fn in index.functions.values():
            if fn.name in DIGEST_FUNCS:
                continue  # the constructors themselves are the vetted API
            digest_calls = self._digest_calls(fn)
            if not digest_calls:
                continue
            arg_nodes = self._argument_nodes(digest_calls)
            yield from self._scan(fn, excluded_ok_outside=arg_nodes)
            for callee in self._argument_callees(fn, arg_nodes, index):
                feeders.setdefault(callee.qualname, callee)
        yield from self._scan_feeders(feeders, index)

    # ------------------------------------------------------------------ #
    # Scope construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _digest_calls(fn: FunctionInfo) -> list[ast.Call]:
        calls = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                name = call_name(node.func)
                if name and name.rsplit(".", 1)[-1] in DIGEST_FUNCS:
                    calls.append(node)
        return calls

    @staticmethod
    def _argument_nodes(digest_calls: list[ast.Call]) -> set[int]:
        """``id()`` of every AST node inside a digest call's argument list."""
        nodes: set[int] = set()
        for call in digest_calls:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for sub in ast.walk(arg):
                    nodes.add(id(sub))
        return nodes

    def _argument_callees(
        self, fn: FunctionInfo, arg_nodes: set[int], index: SymbolIndex
    ) -> list[FunctionInfo]:
        callees = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and id(node) in arg_nodes:
                name = call_name(node.func)
                if name and name.rsplit(".", 1)[-1] not in DIGEST_FUNCS:
                    resolved = index.resolve(fn, name)
                    if resolved is not None:
                        callees.append(resolved)
        return callees

    def _scan_feeders(
        self, seeds: dict[str, FunctionInfo], index: SymbolIndex
    ) -> Iterator[Finding]:
        seen = dict(seeds)
        frontier = list(seeds.values())
        for _hop in range(MAX_DEPTH):
            nxt: list[FunctionInfo] = []
            for fn in frontier:
                for callee, _line in fn.calls:
                    if callee.rsplit(".", 1)[-1] in DIGEST_FUNCS:
                        continue
                    resolved = index.resolve(fn, callee)
                    if resolved is not None and resolved.qualname not in seen:
                        seen[resolved.qualname] = resolved
                        nxt.append(resolved)
            frontier = nxt
        for fn in sorted(seen.values(), key=lambda f: f.qualname):
            yield from self._scan(fn, excluded_ok_outside=None)

    # ------------------------------------------------------------------ #
    # Per-function scan
    # ------------------------------------------------------------------ #

    def _scan(
        self, fn: FunctionInfo, excluded_ok_outside: set[int] | None
    ) -> Iterator[Finding]:
        """Flag impurities in ``fn``.

        ``excluded_ok_outside`` carries the digest-argument node ids for a
        root: excluded-field reads outside that set are the root doing
        unrelated bookkeeping and stay legal.  ``None`` (a feeder) means
        the whole body builds digest input, so every read counts.
        """
        path = str(fn.ctx.path)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield from self._check_call(fn, path, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._unordered_iterable(node.iter):
                    yield Finding(
                        path=path, line=node.lineno, checker=self.name,
                        message=(
                            f"{fn.qualname} iterates an unordered set in "
                            f"digest scope; wrap it in sorted()"
                        ),
                    )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node.attr in EXCLUDED_FIELDS and (
                    excluded_ok_outside is None or id(node) in excluded_ok_outside
                ):
                    yield self._excluded_field(fn, path, node.lineno, node.attr)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                key = node.slice
                if (
                    isinstance(key, ast.Constant)
                    and key.value in EXCLUDED_FIELDS
                    and (excluded_ok_outside is None or id(node) in excluded_ok_outside)
                ):
                    yield self._excluded_field(fn, path, node.lineno, key.value)

    def _check_call(
        self, fn: FunctionInfo, path: str, node: ast.Call
    ) -> Iterator[Finding]:
        name = call_name(node.func)
        if not name:
            return
        root = name.partition(".")[0]
        if root in IMPURE_MODULES and "." in name:
            yield Finding(
                path=path, line=node.lineno, checker=self.name,
                message=f"{fn.qualname} calls {name}() in digest scope",
            )
        elif name == "os.urandom":
            yield Finding(
                path=path, line=node.lineno, checker=self.name,
                message=f"{fn.qualname} calls os.urandom() in digest scope",
            )
        elif name == "id" and node.args:
            yield Finding(
                path=path, line=node.lineno, checker=self.name,
                message=(
                    f"{fn.qualname} calls id() in digest scope; object "
                    f"identity is process-local"
                ),
            )

    @staticmethod
    def _unordered_iterable(node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call):
            return call_name(node.func) in ("set", "frozenset")
        return False

    def _excluded_field(
        self, fn: FunctionInfo, path: str, line: int, field: str
    ) -> Finding:
        return Finding(
            path=path, line=line, checker=self.name,
            message=(
                f"{fn.qualname} reads digest-excluded field {field!r} while "
                f"building digest input; the exclusion contract forbids it"
            ),
        )
