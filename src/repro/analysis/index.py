"""Lightweight symbol/call index built once per analysis run.

The index is deliberately modest: it records every function and method
definition across the analyzed files together with the *textual* callees
each one invokes, and resolves calls conservatively — ``self.helper()``
to a method of the same class, a bare or dotted name to an indexed
function only when exactly one definition carries that name.  Ambiguous
names stay unresolved rather than guessed, so cross-module checkers
(lock-order, digest-purity) over-approximate reachability without
chasing phantom edges.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path


@dataclasses.dataclass
class FileContext:
    """One parsed source file plus everything checkers need alongside it."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]]

    @property
    def display_path(self) -> str:
        """The path as findings should print it (repo-relative when possible)."""
        return str(self.path)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition and its outgoing calls."""

    qualname: str  # "<module>:<Class>.<name>" or "<module>:<name>"
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    calls: list[tuple[str, int]] = dataclasses.field(default_factory=list)


def call_name(func: ast.expr) -> str | None:
    """Dotted text of a call target (``a.b.c``, ``self.m``), else ``None``."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SymbolIndex:
    """Function definitions and conservative call resolution across files."""

    def __init__(self) -> None:
        self.files: list[FileContext] = []
        self.functions: dict[str, FunctionInfo] = {}
        self._by_name: dict[str, list[FunctionInfo]] = {}

    def add_file(self, ctx: FileContext) -> None:
        """Index every function/method definition in one parsed file."""
        self.files.append(ctx)
        self._walk(ctx, ctx.tree, cls=None)

    def _walk(self, ctx: FileContext, node: ast.AST, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._walk(ctx, child, cls=child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, child, cls)
            else:
                self._walk(ctx, child, cls)

    def _add_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> None:
        qual = f"{ctx.module}:{cls + '.' if cls else ''}{node.name}"
        info = FunctionInfo(
            qualname=qual, module=ctx.module, cls=cls, name=node.name,
            node=node, ctx=ctx,
        )
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = call_name(sub.func)
                if name:
                    info.calls.append((name, sub.lineno))
        self.functions[qual] = info
        self._by_name.setdefault(node.name, []).append(info)

    def resolve(self, caller: FunctionInfo, callee: str) -> FunctionInfo | None:
        """Resolve a textual callee to a unique indexed definition, or None.

        ``self.x`` resolves within the caller's class; anything else only
        when the final name segment has exactly one definition repo-wide.
        """
        last = callee.rsplit(".", 1)[-1]
        if callee.startswith("self.") and caller.cls is not None:
            return self.functions.get(f"{caller.module}:{caller.cls}.{last}")
        candidates = self._by_name.get(last, [])
        if len(candidates) == 1:
            return candidates[0]
        return None
