"""Checker registry: the codec-registry idiom applied to static analysis.

Checkers self-register with :func:`register_checker` (a class decorator,
exactly like ``@register_codec``), the engine looks them up by id, and
:func:`describe_checkers` renders the catalog for ``repro analyze --list``
and the generated docs.  Registration validates the contract up front —
subclass, id pattern, non-empty description — so a malformed checker fails
at import time, not mid-analysis.
"""

from __future__ import annotations

import re
import threading
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .findings import Finding
    from .index import FileContext, SymbolIndex

#: Checker ids are short kebab-case slugs: usable in suppression comments
#: and ``--select`` lists without quoting or escaping.
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9-]{2,32}$")

_REGISTRY: dict[str, "Checker"] = {}
_lock = threading.Lock()


class Checker:
    """Base class every registered checker must subclass.

    A checker implements one or both passes: :meth:`check_file` runs once
    per parsed file, :meth:`check_project` runs once over the whole
    :class:`~repro.analysis.index.SymbolIndex` (for cross-module rules such
    as the lock-acquisition graph).  Both default to no findings.
    """

    #: Stable checker id (kebab-case) used in findings, suppressions,
    #: and ``--select``/``--ignore``.
    name: str = ""
    #: One-line summary for ``repro analyze --list`` and docs.
    description: str = ""
    #: Default severity stamped on this checker's findings.
    severity: str = "error"

    def check_file(self, ctx: "FileContext", index: "SymbolIndex") -> Iterable["Finding"]:
        """Per-file pass; yield findings for ``ctx``."""
        return ()

    def check_project(self, index: "SymbolIndex") -> Iterable["Finding"]:
        """Whole-project pass; yield findings spanning multiple files."""
        return ()


def register_checker(cls: type) -> type:
    """Class decorator registering a :class:`Checker` subclass by its id."""
    if not (isinstance(cls, type) and issubclass(cls, Checker)):
        raise TypeError(f"register_checker expects a Checker subclass, got {cls!r}")
    name = getattr(cls, "name", "")
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ValueError(
            f"checker id {name!r} must match {_NAME_PATTERN.pattern}"
        )
    if not getattr(cls, "description", ""):
        raise ValueError(f"checker {name!r} needs a one-line description")
    with _lock:
        existing = _REGISTRY.get(name)
        if existing is not None and type(existing) is not cls:
            raise ValueError(f"duplicate checker id {name!r}")
        _REGISTRY[name] = cls()
    return cls


def get_checker(name: str) -> Checker:
    """The registered checker instance for ``name`` (shared, stateless)."""
    _ensure_builtins()
    with _lock:
        try:
            return _REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY)) or "none"
            raise ValueError(
                f"unknown checker {name!r} (known: {known})"
            ) from None


def checker_names() -> list[str]:
    """Every registered checker id, sorted."""
    _ensure_builtins()
    with _lock:
        return sorted(_REGISTRY)


def describe_checkers() -> list[dict]:
    """Catalog records (id, severity, description) for docs and ``--list``."""
    _ensure_builtins()
    with _lock:
        return [
            {
                "name": name,
                "severity": _REGISTRY[name].severity,
                "description": _REGISTRY[name].description,
            }
            for name in sorted(_REGISTRY)
        ]


def _ensure_builtins() -> None:
    """Import the built-in checkers so first lookup sees a full registry."""
    from . import checkers  # noqa: F401  (import side effect registers them)
