"""Structured findings and ``# repro: ignore[...]`` suppression comments.

A checker reports :class:`Finding` records — file, line, checker id,
severity, message — never raw strings, so the engine can sort, filter,
and render them uniformly (table for humans, JSON for tooling).

Suppression is explicit and per-checker: a ``# repro: ignore[checker-id]``
comment on the offending line (or on a comment-only line directly above
it) downgrades matching findings from failures to acknowledged noise.
Suppressed findings are still collected — ``repro analyze`` can show them —
but they do not affect the exit code.
"""

from __future__ import annotations

import dataclasses
import json
import re

#: ``# repro: ignore[id, id2]`` — trailing prose after the bracket is the
#: conventional place for the justification and is not parsed.
SUPPRESS_PATTERN = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-,\s]+)\]")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation anchored to a source location."""

    path: str
    line: int
    checker: str
    message: str
    severity: str = "error"

    def location(self) -> str:
        """``path:line`` for terminal output (clickable in most editors)."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict:
        """JSON-ready record (stable key order via dataclass field order)."""
        return dataclasses.asdict(self)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> checker ids suppressed on that line.

    A suppression on a code line guards that line; on a comment-only line
    it guards the next line (the usual place when the code line is long).
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_PATTERN.search(text)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        before_comment = text.split("#", 1)[0].strip()
        target = lineno if before_comment else lineno + 1
        suppressions.setdefault(target, set()).update(ids)
    return suppressions


def is_suppressed(finding: Finding, suppressions: dict[int, set[str]]) -> bool:
    """Whether ``finding`` is covered by a parsed suppression map."""
    ids = suppressions.get(finding.line, set())
    return finding.checker in ids or "all" in ids


def format_table(findings: list[Finding]) -> str:
    """Human-readable one-line-per-finding rendering."""
    rows = [
        f"{f.location()}: [{f.checker}] {f.severity}: {f.message}"
        for f in sorted(findings)
    ]
    return "\n".join(rows)


def format_json(findings: list[Finding], suppressed: list[Finding]) -> str:
    """Machine-readable rendering for tooling and CI artifacts."""
    payload = {
        "findings": [f.to_dict() for f in sorted(findings)],
        "suppressed": [f.to_dict() for f in sorted(suppressed)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
