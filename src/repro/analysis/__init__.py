"""repro.analysis — AST-based invariant checkers for this repository.

The runtime enforces the repo's contracts (digest stability, bounded metric
cardinality, best-effort seams, lock discipline) with tests; this package
enforces them *statically*, before the regression ships.  It is a small
stdlib-``ast`` engine: files parse once into a shared
:class:`~repro.analysis.index.SymbolIndex`, registered checkers (the codec
registry idiom — ``@register_checker``, ``describe_checkers()``) run
per-file and project-wide passes, and violations surface as structured
:class:`~repro.analysis.findings.Finding` records with per-line
``# repro: ignore[checker-id]`` suppression.

Entry points: ``repro analyze`` (CLI), ``scripts/check_invariants.py``
(CI gate), and :func:`analyze_paths` (library).  See ``docs/analysis.md``
for the checker catalog and suppression syntax.
"""

from .engine import AnalysisReport, analyze_paths
from .findings import Finding, format_json, format_table, parse_suppressions
from .registry import (
    Checker,
    checker_names,
    describe_checkers,
    get_checker,
    register_checker,
)

__all__ = [
    "AnalysisReport",
    "Checker",
    "Finding",
    "analyze_paths",
    "checker_names",
    "describe_checkers",
    "format_json",
    "format_table",
    "get_checker",
    "parse_suppressions",
    "register_checker",
]
