"""Analysis driver: collect files, build the index, run checkers, filter.

Two passes, mirroring how the checkers are written: every file is parsed
once into a :class:`~repro.analysis.index.FileContext` and folded into the
shared :class:`~repro.analysis.index.SymbolIndex`, then each selected
checker runs its per-file pass over every file and its project pass over
the index.  Suppression comments are applied last, so the report can show
what was acknowledged as well as what failed.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path

from .findings import Finding, is_suppressed, parse_suppressions
from .index import FileContext, SymbolIndex
from .registry import checker_names, get_checker


@dataclasses.dataclass
class AnalysisReport:
    """Everything one ``analyze`` run produced."""

    findings: list[Finding]
    suppressed: list[Finding]
    files: int
    checkers: list[str]

    @property
    def clean(self) -> bool:
        """True when no unsuppressed findings remain (exit code 0)."""
        return not self.findings


def _iter_py_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    # De-duplicate while keeping order (a file listed twice analyzes once).
    seen: set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _module_name(path: Path) -> str:
    """Dotted module name for ``path`` (``src``-rooted when possible)."""
    resolved = path.resolve()
    parts = list(resolved.parts)
    for anchor in ("src",):
        if anchor in parts:
            rel = parts[parts.index(anchor) + 1:]
            break
    else:
        rel = [resolved.name]
    if not rel:
        rel = [resolved.name]
    rel[-1] = rel[-1].removesuffix(".py")
    if rel[-1] == "__init__":
        rel = rel[:-1] or [resolved.parent.name]
    return ".".join(rel)


def _select_checkers(select: list[str] | None, ignore: list[str] | None) -> list[str]:
    known = checker_names()
    chosen = list(select) if select else known
    unknown = [name for name in chosen + list(ignore or []) if name not in known]
    if unknown:
        raise ValueError(
            f"unknown checker id(s): {', '.join(sorted(set(unknown)))} "
            f"(known: {', '.join(known)})"
        )
    ignored = set(ignore or [])
    return [name for name in chosen if name not in ignored]


def analyze_paths(
    paths: list[str | Path],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> AnalysisReport:
    """Run the selected checkers over ``paths`` and return the report.

    ``paths`` may mix files and directories (directories recurse into
    ``*.py``).  Raises :class:`ValueError` for unknown checker ids and
    :class:`FileNotFoundError` for missing paths — usage errors, distinct
    from findings.
    """
    resolved_paths = [Path(p) for p in paths]
    for path in resolved_paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    names = _select_checkers(select, ignore)

    index = SymbolIndex()
    findings: list[Finding] = []
    for path in _iter_py_files(resolved_paths):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            findings.append(Finding(
                path=str(path), line=error.lineno or 1, checker="syntax-error",
                message=f"file does not parse: {error.msg}",
            ))
            continue
        index.add_file(FileContext(
            path=path, module=_module_name(path), source=source,
            tree=tree, suppressions=parse_suppressions(source),
        ))

    for name in names:
        checker = get_checker(name)
        for ctx in index.files:
            findings.extend(checker.check_file(ctx, index))
        findings.extend(checker.check_project(index))

    suppressions_by_path = {str(ctx.path): ctx.suppressions for ctx in index.files}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        marks = suppressions_by_path.get(finding.path, {})
        (suppressed if is_suppressed(finding, marks) else kept).append(finding)
    return AnalysisReport(
        findings=sorted(kept), suppressed=sorted(suppressed),
        files=len(index.files), checkers=names,
    )
