"""DDR3-style off-chip DRAM model.

The paper estimates DRAM power with the DDR3 device model of DRAMsim3 [22].
For the reproduction we need two things from the DRAM: the energy charged per
byte moved (dominant term of the off-chip bar in Figure 13) and the sustained
bandwidth that bounds memory-limited layers in the performance model.  Both
are captured by a small dataclass with representative DDR3-1600 numbers; the
activation/row-buffer structure of a full DRAM simulator changes the absolute
constants, not the accelerator ordering the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramModel", "DEFAULT_DRAM"]


@dataclass(frozen=True)
class DramModel:
    """Off-chip memory characterized by per-byte energy and sustained bandwidth.

    Attributes
    ----------
    name:
        Device name (informational).
    energy_per_byte_pj:
        Average access energy per byte moved, including I/O and background
        share.  DDR3 at moderate utilization costs on the order of
        100-150 pJ/byte; we use 120.
    bandwidth_gb_per_s:
        Sustained bandwidth available to the accelerator.
    """

    name: str = "DDR3-1600"
    energy_per_byte_pj: float = 120.0
    bandwidth_gb_per_s: float = 12.8

    def access_energy_pj(self, num_bytes: float) -> float:
        """Energy in pJ to move ``num_bytes`` to or from DRAM."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.energy_per_byte_pj

    def transfer_cycles(self, num_bytes: float, clock_ghz: float) -> float:
        """Accelerator cycles needed to stream ``num_bytes`` at this bandwidth.

        Parameters
        ----------
        num_bytes:
            Bytes moved.
        clock_ghz:
            Accelerator clock in GHz (0.8 for the paper's 800 MHz designs).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        bytes_per_second = self.bandwidth_gb_per_s * 1e9
        seconds = num_bytes / bytes_per_second
        return seconds * clock_ghz * 1e9


#: Default DDR3 device used by every accelerator in the evaluation.
DEFAULT_DRAM = DramModel()
