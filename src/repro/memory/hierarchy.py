"""Buffer tiling and off-chip traffic accounting.

Given a GEMM workload and the on-chip buffer capacities, this module estimates
how many bytes of weights, activations and outputs must cross the DRAM
interface.  The estimate follows the standard tiled-GEMM reuse analysis also
used by the baseline accelerator papers:

* if a tensor fits its buffer it is fetched exactly once,
* otherwise the loop nest re-fetches one operand once per tile of the other
  operand; the model picks whichever loop order (weight-stationary or
  activation/output-stationary over M-tiles) moves fewer bytes, because every
  accelerator's compiler would do the same.

Compression changes the *weight* byte count (and the metadata byte count), so
accelerators that shrink the stored model — BitWave and BitVert — fetch fewer
bytes and may also drop from the "does not fit" to the "fits" regime, which is
exactly the effect behind the off-chip energy differences in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .dram import DEFAULT_DRAM, DramModel
from .sram import DEFAULT_ACTIVATION_BUFFER, DEFAULT_WEIGHT_BUFFER, SramBuffer
from ..nn.workloads import GemmWorkload

__all__ = ["MemoryTraffic", "MemorySystem"]


@dataclass(frozen=True)
class MemoryTraffic:
    """Per-layer DRAM traffic and on-chip access volumes, in bytes."""

    dram_weight_bytes: float
    dram_activation_bytes: float
    dram_output_bytes: float
    sram_weight_bytes: float
    sram_activation_bytes: float
    sram_output_bytes: float

    @property
    def dram_total_bytes(self) -> float:
        return self.dram_weight_bytes + self.dram_activation_bytes + self.dram_output_bytes

    @property
    def sram_total_bytes(self) -> float:
        return self.sram_weight_bytes + self.sram_activation_bytes + self.sram_output_bytes

    def scaled(self, factor: float) -> "MemoryTraffic":
        """Scale all byte counts (used for layers with a repeat count)."""
        return MemoryTraffic(
            dram_weight_bytes=self.dram_weight_bytes * factor,
            dram_activation_bytes=self.dram_activation_bytes * factor,
            dram_output_bytes=self.dram_output_bytes * factor,
            sram_weight_bytes=self.sram_weight_bytes * factor,
            sram_activation_bytes=self.sram_activation_bytes * factor,
            sram_output_bytes=self.sram_output_bytes * factor,
        )


@dataclass
class MemorySystem:
    """The memory hierarchy shared by all accelerator models."""

    activation_buffer: SramBuffer = DEFAULT_ACTIVATION_BUFFER
    weight_buffer: SramBuffer = DEFAULT_WEIGHT_BUFFER
    dram: DramModel = DEFAULT_DRAM

    def layer_traffic(
        self,
        workload: GemmWorkload,
        stored_weight_bytes: float | None = None,
        metadata_bytes: float = 0.0,
        activation_bits: int | None = None,
    ) -> MemoryTraffic:
        """Estimate DRAM and SRAM traffic for one GEMM layer.

        Parameters
        ----------
        workload:
            The layer GEMM.
        stored_weight_bytes:
            Compressed weight footprint in bytes (defaults to the dense
            footprint).  Compression reduces both DRAM and SRAM weight bytes.
        metadata_bytes:
            Extra per-layer metadata (BBS encoding words, sparse bitmasks...)
            fetched alongside the weights.
        activation_bits:
            Override for the activation precision (e.g. 6-bit ANT
            activations).
        """
        act_bits = activation_bits or workload.activation_bits
        weight_bytes = (
            float(stored_weight_bytes)
            if stored_weight_bytes is not None
            else float(workload.weight_bytes)
        ) + metadata_bytes
        activation_bytes = workload.m * workload.k * act_bits / 8.0
        output_bytes = workload.m * workload.n * act_bits / 8.0

        weights_fit = weight_bytes <= self.weight_buffer.capacity_bytes
        activations_fit = activation_bytes <= self.activation_buffer.capacity_bytes

        if weights_fit and activations_fit:
            dram_weight = weight_bytes
            dram_activation = activation_bytes
        elif weights_fit:
            # Weights stay resident; stream activation tiles once.
            dram_weight = weight_bytes
            dram_activation = activation_bytes
        elif activations_fit:
            # Activations stay resident; stream weight tiles once.
            dram_weight = weight_bytes
            dram_activation = activation_bytes
        else:
            # Neither operand fits: tile both and pick the cheaper loop order.
            weight_tiles = max(1, ceil(weight_bytes / self.weight_buffer.capacity_bytes))
            activation_tiles = max(
                1, ceil(activation_bytes / self.activation_buffer.capacity_bytes)
            )
            weight_stationary = weight_bytes + activation_bytes * weight_tiles
            activation_stationary = activation_bytes + weight_bytes * activation_tiles
            if weight_stationary <= activation_stationary:
                dram_weight = weight_bytes
                dram_activation = activation_bytes * weight_tiles
            else:
                dram_weight = weight_bytes * activation_tiles
                dram_activation = activation_bytes

        # On-chip accesses: every operand byte is read from SRAM once per MAC
        # row/column it participates in, but the PE-array register reuse means
        # the buffer is accessed once per tile element; we charge one SRAM read
        # per DRAM byte plus one per compute reuse of the smaller operand.
        sram_weight = max(dram_weight, weight_bytes)
        sram_activation = max(dram_activation, activation_bytes)
        sram_output = output_bytes

        return MemoryTraffic(
            dram_weight_bytes=dram_weight,
            dram_activation_bytes=dram_activation,
            dram_output_bytes=output_bytes,
            sram_weight_bytes=sram_weight,
            sram_activation_bytes=sram_activation,
            sram_output_bytes=sram_output,
        )

    def traffic_energy_pj(self, traffic: MemoryTraffic) -> tuple[float, float]:
        """Return ``(dram_energy_pj, sram_energy_pj)`` for a traffic record."""
        dram_energy = self.dram.access_energy_pj(traffic.dram_total_bytes)
        sram_energy = self.weight_buffer.access_energy_pj(
            traffic.sram_weight_bytes
        ) + self.activation_buffer.access_energy_pj(
            traffic.sram_activation_bytes, traffic.sram_output_bytes
        )
        return dram_energy, sram_energy

    def dram_cycles(self, traffic: MemoryTraffic, clock_ghz: float = 0.8) -> float:
        """Accelerator cycles to move the layer's DRAM traffic."""
        return self.dram.transfer_cycles(traffic.dram_total_bytes, clock_ghz)
