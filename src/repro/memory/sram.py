"""CACTI-style on-chip SRAM buffer model.

The paper models its on-chip buffers (256 KB activation buffer, 256 KB weight
buffer, plus small metadata/index buffers) with CACTI 7 [4] at 28 nm.  We use
a compact analytical fit of the same technology point: access energy grows
roughly with the square root of the capacity (bitline/wordline length), and
area grows slightly super-linearly with capacity due to peripheral overhead.
The absolute constants are representative 28 nm numbers (a 256 KB SRAM read
costs on the order of 1 pJ/byte); what matters for the reproduction is that
every accelerator is charged with the same buffer model, so relative energy
results depend only on access counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SramBuffer", "DEFAULT_ACTIVATION_BUFFER", "DEFAULT_WEIGHT_BUFFER"]


@dataclass(frozen=True)
class SramBuffer:
    """An on-chip SRAM buffer characterized by capacity and port width.

    Attributes
    ----------
    name:
        Human-readable buffer name.
    capacity_bytes:
        Total capacity.
    port_bits:
        Width of one access port (energy is charged per byte regardless;
        the port width matters for bandwidth accounting).
    technology_nm:
        Process node; energies scale linearly with the node relative to 28 nm
        (a crude but monotone approximation, only used if callers model other
        nodes).
    """

    name: str
    capacity_bytes: int
    port_bits: int = 128
    technology_nm: float = 28.0

    # Calibration constants for the 28 nm fit (pJ per byte at 1 KB, exponent).
    _ENERGY_AT_1KB_PJ_PER_BYTE: float = 0.08
    _ENERGY_CAPACITY_EXPONENT: float = 0.5
    _AREA_MM2_PER_KB: float = 0.0022

    @property
    def capacity_kb(self) -> float:
        return self.capacity_bytes / 1024.0

    def read_energy_per_byte_pj(self) -> float:
        """Read energy per byte in picojoules."""
        if self.capacity_bytes <= 0:
            return 0.0
        scale = self.technology_nm / 28.0
        return (
            self._ENERGY_AT_1KB_PJ_PER_BYTE
            * self.capacity_kb**self._ENERGY_CAPACITY_EXPONENT
            * scale
        )

    def write_energy_per_byte_pj(self) -> float:
        """Write energy per byte (slightly above read energy, as in CACTI)."""
        return 1.1 * self.read_energy_per_byte_pj()

    def access_energy_pj(self, bytes_read: float, bytes_written: float = 0.0) -> float:
        """Total energy in pJ for a given read/write byte volume."""
        if bytes_read < 0 or bytes_written < 0:
            raise ValueError("byte counts must be non-negative")
        return (
            bytes_read * self.read_energy_per_byte_pj()
            + bytes_written * self.write_energy_per_byte_pj()
        )

    def area_mm2(self) -> float:
        """Macro area in mm^2 (linear in capacity with a small fixed overhead)."""
        return 0.002 + self._AREA_MM2_PER_KB * self.capacity_kb

    def bandwidth_bytes_per_cycle(self) -> float:
        """Bytes deliverable per cycle through the access port."""
        return self.port_bits / 8.0

    def scaled(self, capacity_bytes: int) -> "SramBuffer":
        """A copy of this buffer with a different capacity."""
        return SramBuffer(
            name=self.name,
            capacity_bytes=capacity_bytes,
            port_bits=self.port_bits,
            technology_nm=self.technology_nm,
        )


#: The paper equips ANT and all bit-serial accelerators with 256 KB activation
#: and 256 KB weight buffers (Section V-A).
DEFAULT_ACTIVATION_BUFFER = SramBuffer("activation_buffer", 256 * 1024, port_bits=256)
DEFAULT_WEIGHT_BUFFER = SramBuffer("weight_buffer", 256 * 1024, port_bits=256)


def buffer_fit_fraction(buffer: SramBuffer, working_set_bytes: float) -> float:
    """Fraction of a working set that fits in the buffer (1.0 means it all fits)."""
    if working_set_bytes <= 0:
        return 1.0
    return float(np.clip(buffer.capacity_bytes / working_set_bytes, 0.0, 1.0))


__all__ += ["buffer_fit_fraction"]
