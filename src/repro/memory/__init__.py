"""Memory-system substrate: SRAM buffers, DRAM model, tiling/traffic analysis."""

from .dram import DEFAULT_DRAM, DramModel
from .hierarchy import MemorySystem, MemoryTraffic
from .sram import (
    DEFAULT_ACTIVATION_BUFFER,
    DEFAULT_WEIGHT_BUFFER,
    SramBuffer,
    buffer_fit_fraction,
)

__all__ = [
    "DEFAULT_DRAM",
    "DramModel",
    "MemorySystem",
    "MemoryTraffic",
    "DEFAULT_ACTIVATION_BUFFER",
    "DEFAULT_WEIGHT_BUFFER",
    "SramBuffer",
    "buffer_fit_fraction",
]
