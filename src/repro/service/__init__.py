"""Compression-as-a-service layer over the experiment harness.

Turns the batch CLI into a servable system (``python -m repro.cli serve``):

* :mod:`repro.service.cache` — content-hash result cache (LRU + optional
  disk persistence) keyed by stable digests of job inputs.
* :mod:`repro.service.jobs` — job records, lifecycle states, and the store.
* :mod:`repro.service.journal` — append-only JSONL job journal replayed on
  restart, making the service durable.
* :mod:`repro.service.registry` — named, parameterized job types: every
  paper experiment plus ad-hoc compression/simulation jobs.
* :mod:`repro.service.workers` — thread pool executing jobs with caching,
  in-flight deduplication, cancellation, per-job deadlines, and queue
  backpressure.
* :mod:`repro.service.server` — pure-stdlib HTTP/JSON API.
* :mod:`repro.service.client` — stdlib HTTP client with retries/backoff,
  per-node circuit breaking, and typed errors (the substrate of federated
  campaign dispatch).
"""

from .cache import MISSING, CacheStats, ResultCache
from .client import (
    CircuitBreaker,
    CircuitBreakerOpen,
    JobFailedError,
    ServiceClient,
    ServiceError,
    ServiceRequestError,
    ServiceUnavailable,
)
from .jobs import Job, JobState, JobStore
from .journal import JobJournal
from .registry import JobType, ScenarioRegistry, build_default_registry
from .server import API_VERSION, V1_ROUTES, ReproServer, create_server
from .workers import QueueFullError, WorkerPool, job_cancelled, job_digest

__all__ = [
    "API_VERSION",
    "MISSING",
    "CacheStats",
    "CircuitBreaker",
    "CircuitBreakerOpen",
    "Job",
    "JobFailedError",
    "JobJournal",
    "JobState",
    "JobStore",
    "JobType",
    "QueueFullError",
    "ReproServer",
    "ResultCache",
    "ScenarioRegistry",
    "ServiceClient",
    "ServiceError",
    "ServiceRequestError",
    "ServiceUnavailable",
    "V1_ROUTES",
    "WorkerPool",
    "build_default_registry",
    "create_server",
    "job_cancelled",
    "job_digest",
]
