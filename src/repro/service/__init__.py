"""Compression-as-a-service layer over the experiment harness.

Turns the batch CLI into a servable system (``python -m repro.cli serve``):

* :mod:`repro.service.cache` — content-hash result cache (LRU + optional
  disk persistence) keyed by stable digests of job inputs.
* :mod:`repro.service.jobs` — job records, lifecycle states, and the store.
* :mod:`repro.service.registry` — named, parameterized job types: every
  paper experiment plus ad-hoc compression/simulation jobs.
* :mod:`repro.service.workers` — thread pool executing jobs with caching
  and in-flight deduplication.
* :mod:`repro.service.server` — pure-stdlib HTTP/JSON API.
"""

from .cache import CacheStats, ResultCache
from .jobs import Job, JobState, JobStore
from .registry import JobType, ScenarioRegistry, build_default_registry
from .server import ReproServer, create_server
from .workers import WorkerPool, job_digest

__all__ = [
    "CacheStats",
    "Job",
    "JobState",
    "JobStore",
    "JobType",
    "ReproServer",
    "ResultCache",
    "ScenarioRegistry",
    "WorkerPool",
    "build_default_registry",
    "create_server",
    "job_digest",
]
