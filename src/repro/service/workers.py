"""Worker pool: executes registry jobs on threads or processes, with caching
and dedup.

Submission path (all under one lock, so concurrent clients agree):

1. compute the job's content digest from ``(job type, params)``;
2. cache hit -> a job that is born ``done`` with ``cache_hit=True``;
3. an identical job already queued/running -> return *that* job (in-flight
   deduplication: concurrent clients share one computation);
4. the pool is saturated (``max_queued`` unfinished jobs) ->
   :class:`QueueFullError` (the HTTP layer maps it to 429, with a
   ``Retry-After`` hint derived from observed job durations);
5. otherwise enqueue a fresh job on the executor.

Results are cached only on success; failures capture the traceback on the job
and are re-runnable.  A queued job can be cancelled (:meth:`WorkerPool.cancel`)
until a worker picks it up.  With a :class:`~repro.service.journal.JobJournal`
attached, every accepted job and every terminal transition is journaled, and
:meth:`WorkerPool.restore_job` rebuilds pre-restart jobs during replay.

Failure semantics hardened here:

* **Deadlines** — ``submit(..., deadline_s=...)`` arms a ``threading.Timer``
  per job; on expiry the job becomes ``FAILED: deadline`` (never a zombie),
  its queued future is cancelled, and its ``cancel_event`` is set so a
  cooperative body (:func:`job_cancelled`) can stop early.  Terminal
  transitions are first-wins (see :class:`~repro.service.jobs.Job`), so a
  timer racing a completing worker never double-books metrics or journal
  lines.  The deadline is **not** part of the content digest — the same work
  under a different budget is still the same work.
* **Crashed workers** — in process mode a dead worker process raises
  ``BrokenProcessPool`` on every pending future; each affected job fails
  with a diagnostic instead of hanging forever, and the executor is rebuilt
  so the pool stays usable.

Threads are the default: numpy releases the GIL for its heavy kernels.  But
the compression workloads also spend real time in Python glue (grouping,
scheduling, reporting), so ``use_processes=True`` swaps in a
``ProcessPoolExecutor``.  Worker processes rebuild the *default* registry on
first use and benefit from their own artifact memo (:mod:`repro.core.memo`);
a registry with job types outside the default set is rejected at
construction because the processes could not run them.  A process-mode job
reads as QUEUED until it completes (the parent cannot observe the remote
start), but its ``queue_seconds``/``run_seconds`` are accurate: the worker
measures its own run time and the completion callback backfills it.
"""

from __future__ import annotations

import contextvars
import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..chaos.plan import maybe_fail
from ..core.cache import MISSING, ResultCache
from ..core.hashing import stable_digest
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics
from .jobs import Job, JobState, JobStore
from .journal import JobJournal
from .registry import ScenarioRegistry

__all__ = ["QueueFullError", "WorkerPool", "job_cancelled", "job_digest"]

# Pool-level metric families, shared across every pool in the process (the
# service pool and any campaign pools aggregate into one scrape).
_OBS = get_metrics()
_JOBS_TOTAL = _OBS.counter(
    "repro_jobs_total",
    "Job lifecycle events per scenario: submitted, cache_hit, dedup_hit, "
    "rejected, restored, done, failed, cancelled, deadline.",
    ("scenario", "event"),
)
_QUEUE_DEPTH = _OBS.gauge(
    "repro_job_queue_depth",
    "Unfinished (queued or running) jobs currently held by the worker pool.",
)
_QUEUE_WAIT = _OBS.histogram(
    "repro_job_queue_wait_seconds",
    "Time jobs spent queued before a worker picked them up.",
)
_RUN_SECONDS = _OBS.histogram(
    "repro_job_run_seconds",
    "Job execution wall-clock time per scenario.",
    ("scenario",),
)


def job_digest(job_type: str, params: dict) -> str:
    """Stable content digest identifying one job's full input."""
    return stable_digest("repro-job", job_type, params)


#: The job a worker thread is currently executing (threads only; a process
#: body cannot see the parent's Job object).
_CURRENT_JOB: contextvars.ContextVar[Job | None] = contextvars.ContextVar(
    "repro_current_job", default=None
)


def job_cancelled() -> bool:
    """True when the currently-executing job was cancelled or hit its deadline.

    Long-running cooperative job bodies call this between work units and bail
    out early instead of computing a result nobody will read.  Outside a
    worker thread it is always ``False``.
    """
    job = _CURRENT_JOB.get()
    return job is not None and job.cancel_event.is_set()


class QueueFullError(RuntimeError):
    """The pool already holds ``max_queued`` unfinished jobs (backpressure).

    Carries the pool's ``retry_after`` hint — an estimate of when capacity
    frees up, derived from observed job durations — which the HTTP layer
    forwards as a ``Retry-After`` header on the 429.
    """

    def __init__(self, limit: int, retry_after: float = 0.5):
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"job queue is full ({limit} unfinished job(s)); retry later"
        )


#: Lazily-built default registry of a worker process (one per process).
_process_registry: ScenarioRegistry | None = None


def _process_run(job_type: str, params: dict):
    """Process-pool worker: run one job against the default registry.

    Returns ``(run_seconds, result)`` — the worker's own wall-clock
    measurement travels back so the parent can backfill accurate timing.
    """
    global _process_registry
    if _process_registry is None:
        from .registry import build_default_registry

        _process_registry = build_default_registry()
    start = time.perf_counter()
    result = _process_registry.run(job_type, params)
    return time.perf_counter() - start, result


class WorkerPool:
    """Thread/process pool executing registry jobs with caching and dedup."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        cache: ResultCache | None = None,
        max_workers: int = 2,
        store: JobStore | None = None,
        use_processes: bool = False,
        max_queued: int | None = None,
        journal: JobJournal | None = None,
    ):
        if max_queued is not None and max_queued < 1:
            raise ValueError("max_queued must be >= 1 (or None for unbounded)")
        self.registry = registry
        self.cache = cache if cache is not None else ResultCache()
        self.store = store if store is not None else JobStore()
        self.use_processes = use_processes
        self.max_queued = max_queued
        self._journal = journal
        if use_processes:
            from .registry import build_default_registry

            unknown = set(registry.names()) - set(build_default_registry().names())
            if unknown:
                raise ValueError(
                    "use_processes=True supports only default-registry job "
                    f"types; unknown in worker processes: {sorted(unknown)}"
                )
            self._executor: ProcessPoolExecutor | ThreadPoolExecutor = (
                ProcessPoolExecutor(max_workers=max_workers)
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-worker"
            )
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._inflight: dict[str, str] = {}  # digest -> job_id
        self._futures: dict[str, Future] = {}  # job_id -> executor future
        self._deadline_timers: dict[str, threading.Timer] = {}  # job_id -> timer
        self._submitted = 0
        self._cache_hits = 0
        self._dedup_hits = 0
        self._cancelled = 0
        self._rejected = 0
        self._expired = 0
        self._broken_rebuilds = 0
        #: EWMA of observed job run durations, feeding the Retry-After hint.
        self._run_ewma: float | None = None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        job_type: str,
        params: dict | None = None,
        deadline_s: float | None = None,
    ) -> Job:
        """Submit a job; may return an already-finished or shared job.

        ``deadline_s`` is a wall-clock budget from now: a job that has not
        finished when it expires becomes ``FAILED: deadline``.  It does not
        participate in the content digest, so a deduplicated submit shares
        the in-flight job *and its original deadline*.
        """
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool):
                raise ValueError("deadline_s must be a positive number")
            if not deadline_s > 0:
                raise ValueError("deadline_s must be a positive number")
        declared = self.registry.get(job_type)  # fail fast on unknown job types
        # Canonicalize against the declared defaults before hashing, so
        # {"seed": 0} and {} dedup/cache to the same digest (unknown keys are
        # kept and rejected at run time, failing the job with a clear error).
        params = {**declared.defaults, **dict(params or {})}
        digest = job_digest(job_type, params)
        # Capture the submitter's trace context now (the caller's thread owns
        # the contextvar); worker threads re-activate it when they execute.
        ctx = obs_trace.current_context()
        with self._lock:
            # A sentinel default tells a miss apart from a cached ``None``
            # result (a legitimate value that must still hit).
            cached = self.cache.get(digest, MISSING)
            if cached is not MISSING:
                job = self.store.create(job_type, params, digest)
                self._attach_trace(job, ctx)
                job.mark_done(cached, cache_hit=True)
                self._cache_hits += 1
                _JOBS_TOTAL.inc(scenario=job_type, event="submitted")
                _JOBS_TOTAL.inc(scenario=job_type, event="cache_hit")
                # Even a born-done job leaves a span, so its trace shows the
                # cache hit instead of a hole.
                self._start_job_span(job).finish()
                self._record_submit(job)
                self._record_finish(job)
                return job
            existing_id = self._inflight.get(digest)
            if existing_id is not None:
                existing = self.store.get(existing_id)
                if existing is not None and not existing.state.finished:
                    existing.dedup_count += 1
                    self._dedup_hits += 1
                    _JOBS_TOTAL.inc(scenario=job_type, event="dedup_hit")
                    return existing
            if self.max_queued is not None and len(self._inflight) >= self.max_queued:
                self._rejected += 1
                _JOBS_TOTAL.inc(scenario=job_type, event="rejected")
                raise QueueFullError(
                    self.max_queued, retry_after=self._retry_after_hint_locked()
                )
            job = self.store.create(job_type, params, digest)
            job.deadline_s = deadline_s
            self._attach_trace(job, ctx)
            self._enqueue_inflight(job)
            self._submitted += 1
            _JOBS_TOTAL.inc(scenario=job_type, event="submitted")
        self._record_submit(job)
        self._dispatch(job)
        self._arm_deadline(job)
        return job

    def _attach_trace(self, job: Job, ctx: obs_trace.TraceContext | None) -> None:
        """Give every job a trace identity: joined or freshly minted."""
        if ctx is not None:
            job.trace_id = ctx.trace_id
            job.parent_span_id = ctx.span_id
        else:
            job.trace_id = obs_trace.new_trace_id()

    def _start_job_span(self, job: Job) -> obs_trace.Span:
        """Open the job's ``job.run`` span inside its own trace."""
        return obs_trace.Span(
            name="job.run",
            trace_id=job.trace_id or obs_trace.new_trace_id(),
            parent_id=job.parent_span_id,
            attrs={
                "job_id": job.job_id,
                "scenario": job.job_type,
                "cache_hit": job.cache_hit,
                "worker_kind": "process" if self.use_processes else "thread",
                "worker": threading.current_thread().name,
            },
        )

    def _enqueue_inflight(self, job: Job) -> None:
        """Track an accepted job; the depth gauge follows ``len(_inflight)``."""
        if job.digest not in self._inflight:
            _QUEUE_DEPTH.inc()
        self._inflight[job.digest] = job.job_id

    def run(
        self,
        job_type: str,
        params: dict | None = None,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> Job:
        """Submit and block until finished (convenience for CLI/tests)."""
        job = self.submit(job_type, params, deadline_s=deadline_s)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job.job_id} ({job_type}) did not finish in {timeout}s")
        return job

    def restore_job(
        self,
        job_id: str,
        job_type: str,
        params: dict,
        digest: str,
        state: JobState | None = None,
        error: str | None = None,
        trace_id: str | None = None,
        deadline_s: float | None = None,
    ) -> tuple[Job, bool]:
        """Re-create a pre-restart job under its historical id (journal replay).

        Returns ``(job, requeued)``: DONE jobs are rebuilt from the result
        cache without recomputing; FAILED/CANCELLED keep their terminal state;
        anything else — including a DONE job whose payload did not survive the
        restart — is re-enqueued for execution.  Backpressure does not apply:
        these jobs were accepted before the restart.  ``trace_id`` (from the
        journal's submit record) keeps the job's trace identity across the
        restart; the parent span is gone with the old process.  A journaled
        ``deadline_s`` re-arms with its *full* budget — the pre-restart wall
        clock is meaningless after a restart.
        """
        with self._lock:
            job = self.store.restore(job_id, job_type, params, digest)
        job.trace_id = trace_id or obs_trace.new_trace_id()
        if deadline_s is not None and deadline_s > 0:
            job.deadline_s = float(deadline_s)
        _JOBS_TOTAL.inc(scenario=job_type, event="restored")
        if state is JobState.FAILED:
            job.mark_failed(error or "failed before service restart")
            return job, False
        if state is JobState.CANCELLED:
            job.mark_cancelled(error or "cancelled before service restart")
            return job, False
        # DONE — or unfinished with a persisted result (the crash landed
        # between the cache store and the journal's finish line): either way
        # the cache payload stands in and nothing recomputes.
        cached = self.cache.get(digest, MISSING)
        if cached is not MISSING:
            job.mark_done(cached, cache_hit=True)
            with self._lock:
                self._cache_hits += 1
            if state is not JobState.DONE:
                self._record_finish(job)  # the journal lacked this line
            return job, False
        # Unfinished (or completed but its payload is gone): run it again.
        with self._lock:
            self._enqueue_inflight(job)
            self._submitted += 1
        self._dispatch(job)
        self._arm_deadline(job)
        return job, True

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a queued job; returns the job (any state) or ``None``.

        Only jobs a worker has not picked up yet can be cancelled — callers
        inspect the returned job's state to see whether the cancel landed
        (CANCELLED) or the job was already running/finished.
        """
        job = self.store.get(job_id)
        if job is None or job.state.finished:
            return job
        # submit() releases the pool lock before _dispatch registers the
        # future, so an immediate cancel can observe a QUEUED job with no
        # future yet; wait out that window briefly instead of refusing.
        future = None
        for _ in range(25):
            with self._lock:
                future = self._futures.get(job_id)
            if future is not None or job.state.finished:
                break
            time.sleep(0.002)
        # future.cancel() fires done-callbacks synchronously, so it must run
        # outside the pool lock; it is atomic against executor pickup.
        if future is None or not future.cancel():
            return job
        if not job.mark_cancelled():
            return job  # a deadline timer got there first
        self._record_finish(job)
        self._cleanup(job)
        with self._lock:
            self._cancelled += 1
        _JOBS_TOTAL.inc(scenario=job.job_type, event="cancelled")
        return job

    # ------------------------------------------------------------------ #
    # Deadlines
    # ------------------------------------------------------------------ #

    def _arm_deadline(self, job: Job) -> None:
        if job.deadline_s is None or job.state.finished:
            return
        timer = threading.Timer(job.deadline_s, self._expire_job, args=(job,))
        timer.daemon = True
        with self._lock:
            self._deadline_timers[job.job_id] = timer
        timer.start()
        if job.state.finished:
            # The job finished between the checks; _cleanup already popped
            # (or will pop) the timer entry — make sure it cannot fire late.
            timer.cancel()

    def _expire_job(self, job: Job) -> None:
        """Deadline timer body: fail the job unless it already finished."""
        # Flag first: a cooperative running body observes the cancellation
        # even while we race it for the terminal transition below.
        job.cancel_event.set()
        with self._lock:
            future = self._futures.get(job.job_id)
        if future is not None:
            # Queued jobs never start; running ones keep the worker until the
            # body returns (its completion loses the first-wins transition).
            future.cancel()
        if not job.mark_failed(
            f"deadline: exceeded {job.deadline_s}s budget "
            f"(state at expiry: {'running' if job.started_at else 'queued'})"
        ):
            return  # the worker finished first; nothing expired
        with self._lock:
            self._expired += 1
        _JOBS_TOTAL.inc(scenario=job.job_type, event="deadline")
        self._observe_finish(job)
        self._record_finish(job)
        self._cleanup(job)

    # ------------------------------------------------------------------ #
    # Execution internals
    # ------------------------------------------------------------------ #

    def _dispatch(self, job: Job) -> None:
        try:
            future = self._submit_to_executor(job)
        except BrokenProcessPool:
            # The executor died before this job could even be enqueued (a
            # worker crashed under an earlier job).  Rebuild once and retry.
            self._rebuild_executor()
            try:
                future = self._submit_to_executor(job)
            except BrokenProcessPool:
                if job.mark_failed(
                    "worker pool broken: a worker process crashed and the "
                    "rebuilt pool is also unusable"
                ):
                    self._observe_finish(job)
                    self._record_finish(job)
                    self._cleanup(job)
                return
        with self._lock:
            # A fast job may already be finished (its cleanup saw no entry);
            # only track futures whose jobs can still be cancelled.
            if not job.state.finished:
                self._futures[job.job_id] = future

    def _submit_to_executor(self, job: Job) -> Future:
        with self._lock:
            executor = self._executor
        if self.use_processes:
            # The job body runs in another process; bookkeeping happens here
            # via the future's completion callback (an executor thread).
            future = executor.submit(_process_run, job.job_type, job.params)
            future.add_done_callback(
                lambda fut, job=job: self._finish_process_job(job, fut)
            )
        else:
            future = executor.submit(self._execute, job)
        return future

    def _rebuild_executor(self) -> None:
        """Replace a broken process executor so the pool stays usable."""
        if not self.use_processes:
            return
        with self._lock:
            # Several pending futures crash together and every callback calls
            # in; only the first rebuild of a still-broken executor proceeds.
            if not getattr(self._executor, "_broken", True):
                return
            old = self._executor
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            self._broken_rebuilds += 1
        old.shutdown(wait=False)

    def _record_submit(self, job: Job) -> None:
        if self._journal is not None:
            self._journal.record_submit(job)

    def _record_finish(self, job: Job) -> None:
        if self._journal is not None:
            self._journal.record_finish(job)

    def _cleanup(self, job: Job) -> None:
        with self._lock:
            if self._inflight.get(job.digest) == job.job_id:
                del self._inflight[job.digest]
                _QUEUE_DEPTH.dec()
            self._futures.pop(job.job_id, None)
            timer = self._deadline_timers.pop(job.job_id, None)
        if timer is not None:
            timer.cancel()

    def _observe_finish(self, job: Job) -> None:
        if job.run_seconds is not None:
            _RUN_SECONDS.observe(job.run_seconds, scenario=job.job_type)
            with self._lock:
                self._run_ewma = (
                    job.run_seconds
                    if self._run_ewma is None
                    else 0.8 * self._run_ewma + 0.2 * job.run_seconds
                )
        event = "done" if job.state is JobState.DONE else "failed"
        _JOBS_TOTAL.inc(scenario=job.job_type, event=event)

    def _execute(self, job: Job) -> None:
        if job.state.finished or job.cancel_event.is_set():
            # The deadline expired (or a cancel landed) while this sat in the
            # executor queue faster than future.cancel() could stop it; the
            # expirer owns the bookkeeping.
            return
        job.mark_running()
        job.worker = threading.current_thread().name
        if job.queue_seconds is not None:
            _QUEUE_WAIT.observe(job.queue_seconds)
        # The job's span is activated around the body, so codec/pipeline
        # spans started inside nest under it and share the job's trace.
        job_span = self._start_job_span(job)
        token = _CURRENT_JOB.set(job)
        finished_here = False
        try:
            with obs_trace.activate(job_span):
                maybe_fail("worker.run")
                result = self.registry.run(job.job_type, job.params)
            # Store before marking done: once a client sees DONE, the cache
            # must already serve the digest.
            self.cache.put(job.digest, result)
            finished_here = job.mark_done(result)
            job_span.finish()
        except Exception:
            finished_here = job.mark_failed(traceback.format_exc())
            job_span.finish(error=job.error.strip().splitlines()[-1] if job.error else "failed")
        finally:
            _CURRENT_JOB.reset(token)
            # First-wins: when a deadline timer landed the terminal state,
            # it also did the metrics/journal/cleanup — doing it again here
            # would double-count.
            if finished_here:
                self._observe_finish(job)
                self._record_finish(job)
                self._cleanup(job)

    def _finish_process_job(self, job: Job, future: Future) -> None:
        """Completion callback for process-mode jobs (runs on an executor thread)."""
        if future.cancelled():
            # WorkerPool.cancel() / the deadline expirer own the bookkeeping
            # for this path (the callback fires synchronously inside
            # future.cancel()).
            return
        job_span = self._start_job_span(job)
        job.worker = "process-pool"
        finished_here = False
        try:
            run_seconds, result = future.result()
            job.backfill_running(run_seconds)
            if job.queue_seconds is not None:
                _QUEUE_WAIT.observe(job.queue_seconds)
            self.cache.put(job.digest, result)
            finished_here = job.mark_done(result)
            # The body ran in another process where this recorder does not
            # exist; backfill the worker's own measurement.  Inner codec
            # spans are a documented gap in process mode.
            job_span.finish(duration=run_seconds)
        except BrokenProcessPool:
            # The worker process died mid-job (OOM kill, segfault, kill -9).
            # Fail the job with a diagnostic instead of hanging the pool, and
            # rebuild the executor so later submissions still run.
            finished_here = job.mark_failed(
                "worker process crashed while running this job "
                "(BrokenProcessPool); the process pool has been rebuilt"
            )
            job_span.finish(error="worker process crashed")
            self._rebuild_executor()
        except Exception:
            finished_here = job.mark_failed(traceback.format_exc())
            job_span.finish(error=job.error.strip().splitlines()[-1] if job.error else "failed")
        finally:
            if finished_here:
                self._observe_finish(job)
                self._record_finish(job)
                self._cleanup(job)

    # ------------------------------------------------------------------ #
    # Introspection / shutdown
    # ------------------------------------------------------------------ #

    def retry_after_hint(self) -> float:
        """Seconds a rejected client should wait before retrying.

        Scales the EWMA of observed run durations by how many jobs are ahead
        per worker, clamped to [0.1, 30].  Before any job has finished the
        hint is a flat 0.5s.
        """
        with self._lock:
            return self._retry_after_hint_locked()

    def _retry_after_hint_locked(self) -> float:
        if self._run_ewma is None:
            return 0.5
        backlog = max(len(self._inflight), 1) / max(self.max_workers, 1)
        return min(max(self._run_ewma * backlog, 0.1), 30.0)

    def stats(self) -> dict:
        with self._lock:
            submitted, cache_hits, dedup_hits = (
                self._submitted,
                self._cache_hits,
                self._dedup_hits,
            )
            cancelled, rejected = self._cancelled, self._rejected
            expired, broken_rebuilds = self._expired, self._broken_rebuilds
            inflight = len(self._inflight)
            retry_after = self._retry_after_hint_locked()
        return {
            "workers": self.max_workers,
            "worker_kind": "process" if self.use_processes else "thread",
            "executed": submitted,
            "cache_hits": cache_hits,
            "dedup_hits": dedup_hits,
            "cancelled": cancelled,
            "rejected": rejected,
            "expired": expired,
            "broken_rebuilds": broken_rebuilds,
            "max_queued": self.max_queued,
            "inflight": inflight,
            "retry_after_hint": retry_after,
            "states": self.store.counts(),
        }

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the executor.

        ``cancel_pending=True`` is the graceful-drain mode: queued futures
        are cancelled (those jobs stay QUEUED — with a journal attached their
        submit lines have no finish line, so a restart re-enqueues them)
        while already-running jobs finish under ``wait=True``.
        """
        with self._lock:
            timers = list(self._deadline_timers.values())
            self._deadline_timers.clear()
        for timer in timers:
            timer.cancel()
        if cancel_pending:
            self._executor.shutdown(wait=wait, cancel_futures=True)
        else:
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
