"""Worker pool: executes registry jobs on threads or processes, with caching
and dedup.

Submission path (all under one lock, so concurrent clients agree):

1. compute the job's content digest from ``(job type, params)``;
2. cache hit -> a job that is born ``done`` with ``cache_hit=True``;
3. an identical job already queued/running -> return *that* job (in-flight
   deduplication: concurrent clients share one computation);
4. otherwise enqueue a fresh job on the executor.

Results are cached only on success; failures capture the traceback on the job
and are re-runnable.  Threads are the default: numpy releases the GIL for its
heavy kernels.  But the compression workloads also spend real time in Python
glue (grouping, scheduling, reporting), so ``use_processes=True`` swaps in a
``ProcessPoolExecutor``.  Worker processes rebuild the *default* registry on
first use and benefit from their own artifact memo (:mod:`repro.core.memo`);
a registry with job types outside the default set is rejected at
construction because the processes could not run them.  A process-mode job
reads as QUEUED until it completes (the parent cannot observe the remote
start), but its ``queue_seconds``/``run_seconds`` are accurate: the worker
measures its own run time and the completion callback backfills it.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from ..core.hashing import stable_digest
from .cache import ResultCache
from .jobs import Job, JobStore
from .registry import ScenarioRegistry

__all__ = ["WorkerPool", "job_digest"]


def job_digest(job_type: str, params: dict) -> str:
    """Stable content digest identifying one job's full input."""
    return stable_digest("repro-job", job_type, params)


#: Lazily-built default registry of a worker process (one per process).
_process_registry: ScenarioRegistry | None = None


def _process_run(job_type: str, params: dict):
    """Process-pool worker: run one job against the default registry.

    Returns ``(run_seconds, result)`` — the worker's own wall-clock
    measurement travels back so the parent can backfill accurate timing.
    """
    global _process_registry
    if _process_registry is None:
        from .registry import build_default_registry

        _process_registry = build_default_registry()
    start = time.perf_counter()
    result = _process_registry.run(job_type, params)
    return time.perf_counter() - start, result


class WorkerPool:
    """Thread/process pool executing registry jobs with caching and dedup."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        cache: ResultCache | None = None,
        max_workers: int = 2,
        store: JobStore | None = None,
        use_processes: bool = False,
    ):
        self.registry = registry
        self.cache = cache if cache is not None else ResultCache()
        self.store = store if store is not None else JobStore()
        self.use_processes = use_processes
        if use_processes:
            from .registry import build_default_registry

            unknown = set(registry.names()) - set(build_default_registry().names())
            if unknown:
                raise ValueError(
                    "use_processes=True supports only default-registry job "
                    f"types; unknown in worker processes: {sorted(unknown)}"
                )
            self._executor: ProcessPoolExecutor | ThreadPoolExecutor = (
                ProcessPoolExecutor(max_workers=max_workers)
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-worker"
            )
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._inflight: dict[str, str] = {}  # digest -> job_id
        self._submitted = 0
        self._cache_hits = 0
        self._dedup_hits = 0

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(self, job_type: str, params: dict | None = None) -> Job:
        """Submit a job; may return an already-finished or shared job."""
        declared = self.registry.get(job_type)  # fail fast on unknown job types
        # Canonicalize against the declared defaults before hashing, so
        # {"seed": 0} and {} dedup/cache to the same digest (unknown keys are
        # kept and rejected at run time, failing the job with a clear error).
        params = {**declared.defaults, **dict(params or {})}
        digest = job_digest(job_type, params)
        with self._lock:
            cached = self.cache.get(digest)
            if cached is not None:
                job = self.store.create(job_type, params, digest)
                job.mark_done(cached, cache_hit=True)
                self._cache_hits += 1
                return job
            existing_id = self._inflight.get(digest)
            if existing_id is not None:
                existing = self.store.get(existing_id)
                if existing is not None and not existing.state.finished:
                    existing.dedup_count += 1
                    self._dedup_hits += 1
                    return existing
            job = self.store.create(job_type, params, digest)
            self._inflight[digest] = job.job_id
            self._submitted += 1
        if self.use_processes:
            # The job body runs in another process; bookkeeping happens here
            # via the future's completion callback (an executor thread).
            future = self._executor.submit(_process_run, job.job_type, job.params)
            future.add_done_callback(
                lambda fut, job=job: self._finish_process_job(job, fut)
            )
        else:
            self._executor.submit(self._execute, job)
        return job

    def run(self, job_type: str, params: dict | None = None, timeout: float | None = None) -> Job:
        """Submit and block until finished (convenience for CLI/tests)."""
        job = self.submit(job_type, params)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job.job_id} ({job_type}) did not finish in {timeout}s")
        return job

    def _execute(self, job: Job) -> None:
        job.mark_running()
        try:
            result = self.registry.run(job.job_type, job.params)
            # Store before marking done: once a client sees DONE, the cache
            # must already serve the digest.
            self.cache.put(job.digest, result)
            job.mark_done(result)
        except Exception:
            job.mark_failed(traceback.format_exc())
        finally:
            with self._lock:
                self._inflight.pop(job.digest, None)

    def _finish_process_job(self, job: Job, future: Future) -> None:
        """Completion callback for process-mode jobs (runs on an executor thread)."""
        try:
            run_seconds, result = future.result()
            job.backfill_running(run_seconds)
            self.cache.put(job.digest, result)
            job.mark_done(result)
        except Exception:
            job.mark_failed(traceback.format_exc())
        finally:
            with self._lock:
                self._inflight.pop(job.digest, None)

    # ------------------------------------------------------------------ #
    # Introspection / shutdown
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            submitted, cache_hits, dedup_hits = (
                self._submitted,
                self._cache_hits,
                self._dedup_hits,
            )
            inflight = len(self._inflight)
        return {
            "workers": self.max_workers,
            "worker_kind": "process" if self.use_processes else "thread",
            "executed": submitted,
            "cache_hits": cache_hits,
            "dedup_hits": dedup_hits,
            "inflight": inflight,
            "states": self.store.counts(),
        }

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
