"""Append-only JSONL job journal: the service's durable memory.

Every job the worker pool accepts is journaled as a ``submit`` line and later
as a ``done``/``failed``/``cancelled`` line, one strict-JSON object per line,
flushed on write.  Each line carries a ``crc32`` checksum over its canonical
payload, so replay can tell a record that was *written wrong* (bit rot, a
partially overwritten block, manual editing) from one that was merely torn
by a crash.

Corruption never aborts a replay.  Bad lines — mid-file garbage, a truncated
final record, a checksum mismatch, a non-object — are **quarantined**:
appended verbatim to ``journal.quarantine.jsonl`` beside the journal with the
reason and offset, counted in ``repro_journal_quarantined_total{reason}``,
and skipped.  Everything parseable replays:

* ``done`` jobs reappear as DONE under their historical ids, their results
  served from the (persistent) result cache — nothing is recomputed;
* ``failed``/``cancelled`` jobs reappear in their terminal states with the
  recorded error;
* unfinished jobs (a ``submit`` line without a finish line — the queue the
  crash destroyed) are re-enqueued under their historical ids and simply run
  again, where the content-hash cache still deduplicates any part of the
  work that was persisted before the crash.  A journaled ``deadline_s``
  re-arms with its full budget (the old wall clock is meaningless after a
  restart).

Journals grow forever without help; :meth:`JobJournal.compact` snapshots the
merged state (one ``submit`` + at most one finish line per job, oldest
fully-finished jobs beyond a retention bound dropped entirely) and atomically
replaces the file.  ``repro journal compact DIR`` exposes it on the CLI.

``repro serve --journal DIR`` wires this up end to end (and defaults the
result cache's persistence into ``DIR/cache`` so replayed DONE jobs keep
their payloads).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from ..chaos.plan import maybe_fail
from ..obs.metrics import get_metrics
from .jobs import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .workers import WorkerPool

__all__ = ["JobJournal", "checksummed_line", "verify_checksum"]

_OBS_APPENDS = get_metrics().counter(
    "repro_journal_appends_total", "Job-journal lines appended, by event.", ("event",)
)
_OBS_WRITE_ERRORS = get_metrics().counter(
    "repro_journal_write_errors_total",
    "Journal lines lost to write errors (full disk, unserializable params).",
)
_OBS_QUARANTINED = get_metrics().counter(
    "repro_journal_quarantined_total",
    "Corrupt journal lines moved to journal.quarantine.jsonl, by reason.",
    ("reason",),
)
_OBS_SINK_ERRORS = get_metrics().counter(
    "repro_journal_sink_errors_total",
    "Journal fan-out sink invocations that raised (line kept locally).",
)


#: Journal event name per terminal job state.
_FINISH_EVENTS = {
    JobState.DONE: "done",
    JobState.FAILED: "failed",
    JobState.CANCELLED: "cancelled",
}

#: How many finished jobs a compaction keeps by default — matches the job
#: store's finished-history bound, so a compacted journal replays the same
#: window a live process would still be holding.
DEFAULT_KEEP_FINISHED = 1024


def checksummed_line(record: dict) -> str:
    """Serialize ``record`` with a ``crc32`` field over its canonical JSON.

    Public: the gateway's replication store writes replica journal lines in
    exactly this format so one verifier covers both.
    """
    payload = json.dumps(record, sort_keys=True, allow_nan=False)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps({**record, "crc32": crc}, sort_keys=True, allow_nan=False)


def verify_checksum(record: dict) -> bool:
    """True when the record has no checksum (legacy line) or it matches.

    Mutates ``record`` (the ``crc32`` field is popped); pass a copy to keep
    the original.  Public for the same reason as :func:`checksummed_line`:
    replicated journal lines are verified with the identical rule.
    """
    if "crc32" not in record:
        return True
    claimed = record.pop("crc32")
    payload = json.dumps(record, sort_keys=True, allow_nan=False)
    return claimed == (zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF)


# Internal aliases kept so call sites read as before the rename.
_checksummed_line = checksummed_line
_verify_checksum = verify_checksum


class JobJournal:
    """Append-only ``journal.jsonl`` under one directory, with replay."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "journal.jsonl"
        self.quarantine_path = self.directory / "journal.quarantine.jsonl"
        self._lock = threading.Lock()
        self._handle = self.path.open("a", encoding="utf-8")
        self.write_errors = 0
        self.quarantined = 0
        self.sink_errors = 0
        #: Fan-out hooks called with each raw line after a successful local
        #: append — the gateway agent's replication stream attaches here.
        self._sinks: list = []

    # ------------------------------------------------------------------ #
    # Fan-out sinks (replication)
    # ------------------------------------------------------------------ #

    def add_sink(self, sink) -> None:
        """Register ``sink(raw_line)`` to observe every appended line.

        Sinks run *outside* the journal lock (a slow or blocked sink must not
        stall job submission) and are best-effort: a raising sink is counted
        (``sink_errors`` / ``repro_journal_sink_errors_total``) and skipped —
        the local append already succeeded, so durability never regresses.
        """
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def _fan_out(self, line: str) -> None:
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(line)
            except Exception:  # noqa: BLE001 - sink faults must stay local
                self.sink_errors += 1
                _OBS_SINK_ERRORS.inc()

    # ------------------------------------------------------------------ #
    # Recording (called by the worker pool, best-effort)
    # ------------------------------------------------------------------ #

    def record(self, event: str, **fields: Any) -> None:
        """Append one checksummed event line.  Best-effort: a journal that
        cannot be written (full disk, non-JSON params) must not fail the job
        itself."""
        with self._lock:
            try:
                maybe_fail("journal.append")
                line = _checksummed_line({"event": event, **fields})
                self._handle.write(line + "\n")
                self._handle.flush()
            except (TypeError, ValueError, OSError):
                self.write_errors += 1
                _OBS_WRITE_ERRORS.inc()
                return
        _OBS_APPENDS.inc(event=event)
        self._fan_out(line)

    def record_submit(self, job: Job) -> None:
        self.record(
            "submit",
            job_id=job.job_id,
            type=job.job_type,
            params=job.params,
            digest=job.digest,
            submitted_at=job.submitted_at,
            trace_id=job.trace_id,
            deadline_s=job.deadline_s,
        )

    def record_finish(self, job: Job) -> None:
        event = _FINISH_EVENTS.get(job.state)
        if event is None:  # pragma: no cover - finish called on live job
            return
        fields: dict[str, Any] = {"job_id": job.job_id, "digest": job.digest}
        if job.state is JobState.DONE:
            fields["cache_hit"] = job.cache_hit
        else:
            fields["error"] = job.error
        self.record(event, **fields)

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    # ------------------------------------------------------------------ #
    # Reading / quarantine
    # ------------------------------------------------------------------ #

    def _quarantine(self, line: str, offset: int, reason: str) -> None:
        """Move one bad line aside (verbatim) instead of aborting replay."""
        self.quarantined += 1
        _OBS_QUARANTINED.inc(reason=reason)
        try:
            with self.quarantine_path.open("a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {"reason": reason, "offset": offset, "line": line},
                        sort_keys=True,
                    )
                    + "\n"
                )
        # Quarantine is itself best-effort; ``self.quarantined`` and the
        # quarantine counter were already incremented above, so the failure
        # stays visible even when this write is swallowed.
        except (OSError, ValueError, TypeError):  # repro: ignore[silent-except]
            pass

    def records(self) -> Iterator[dict]:
        """Yield every intact event line, oldest first, quarantining the rest.

        Three corruption classes are told apart for the quarantine record:
        a truncated final line (the only corruption a crash can cause),
        mid-file garbage (unparseable or a non-object), and a parseable
        record whose ``crc32`` does not match its payload.
        """
        if not self.path.exists():
            return
        with self.path.open(encoding="utf-8") as handle:
            lines = handle.readlines()
        last_index = len(lines) - 1
        for index, raw in enumerate(lines):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                truncated = index == last_index and not raw.endswith("\n")
                self._quarantine(
                    line, index, "truncated" if truncated else "unparseable"
                )
                continue
            if not isinstance(record, dict):
                self._quarantine(line, index, "not_object")
                continue
            if not _verify_checksum(record):  # pops the crc32 field
                self._quarantine(line, index, "checksum_mismatch")
                continue
            yield record

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def _merged_jobs(self) -> tuple[list[str], dict[str, dict]]:
        """Fold the journal into per-job state, in first-submission order."""
        merged: dict[str, dict] = {}
        order: list[str] = []
        for record in self.records():
            job_id = record.get("job_id")
            event = record.get("event")
            if not isinstance(job_id, str):
                continue
            if event == "submit":
                if job_id not in merged:
                    order.append(job_id)
                merged[job_id] = {"submit": record, "finish": None}
            elif event in ("done", "failed", "cancelled") and job_id in merged:
                merged[job_id]["finish"] = record
        return order, merged

    def replay(self, pool: "WorkerPool") -> dict:
        """Rebuild the journaled jobs inside ``pool``; return replay stats."""
        order, merged = self._merged_jobs()
        stats = {"replayed": 0, "completed": 0, "failed": 0,
                 "cancelled": 0, "requeued": 0, "skipped": 0,
                 "quarantined": self.quarantined}
        for job_id in order:
            submit = merged[job_id]["submit"]
            finish = merged[job_id]["finish"] or {}
            if (
                not isinstance(submit.get("type"), str)
                or not isinstance(submit.get("params"), dict)
                or not isinstance(submit.get("digest"), str)
            ):
                stats["skipped"] += 1
                continue
            state = None
            if finish.get("event") in ("done", "failed", "cancelled"):
                state = JobState(finish["event"])
            trace_id = submit.get("trace_id")
            deadline = submit.get("deadline_s")
            job, requeued = pool.restore_job(
                job_id,
                submit["type"],
                submit["params"],
                submit["digest"],
                state=state,
                error=finish.get("error"),
                trace_id=trace_id if isinstance(trace_id, str) else None,
                deadline_s=deadline if isinstance(deadline, (int, float)) else None,
            )
            stats["replayed"] += 1
            if requeued:
                stats["requeued"] += 1
            elif job.state is JobState.DONE:
                stats["completed"] += 1
            elif job.state is JobState.CANCELLED:
                stats["cancelled"] += 1
            else:
                stats["failed"] += 1
        stats["quarantined"] = self.quarantined
        return stats

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #

    def compact(self, keep_finished: int = DEFAULT_KEEP_FINISHED) -> dict:
        """Snapshot + truncate: rewrite the journal as its merged state.

        Each job collapses to its ``submit`` line plus at most one finish
        line; fully-finished jobs older than the newest ``keep_finished``
        are dropped entirely (their result payloads, if any, live on in the
        content-hash cache — only the job *record* is forgotten).  The new
        journal is written to a temp file, fsynced, and atomically swapped
        in, so a crash mid-compaction leaves the original intact.  Safe on a
        live journal: the write lock blocks appends for the duration.
        """
        if keep_finished < 0:
            raise ValueError("keep_finished must be >= 0")
        with self._lock:
            before_bytes = self.path.stat().st_size if self.path.exists() else 0
            order, merged = self._merged_jobs()
            finished_ids = [jid for jid in order if merged[jid]["finish"] is not None]
            dropped = set(finished_ids[: max(len(finished_ids) - keep_finished, 0)])
            kept_jobs = 0
            tmp_path = self.path.with_suffix(".jsonl.tmp")
            with tmp_path.open("w", encoding="utf-8") as handle:
                for job_id in order:
                    if job_id in dropped:
                        continue
                    kept_jobs += 1
                    submit = dict(merged[job_id]["submit"])
                    submit.pop("crc32", None)
                    handle.write(_checksummed_line(submit) + "\n")
                    finish = merged[job_id]["finish"]
                    if finish is not None:
                        finish = dict(finish)
                        finish.pop("crc32", None)
                        handle.write(_checksummed_line(finish) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp_path, self.path)
            self._handle = self.path.open("a", encoding="utf-8")
            after_bytes = self.path.stat().st_size
        return {
            "jobs": len(order),
            "kept_jobs": kept_jobs,
            "dropped_finished": len(dropped),
            "quarantined": self.quarantined,
            "bytes_before": before_bytes,
            "bytes_after": after_bytes,
        }
