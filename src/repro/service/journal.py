"""Append-only JSONL job journal: the service's durable memory.

Every job the worker pool accepts is journaled as a ``submit`` line and later
as a ``done``/``failed``/``cancelled`` line, one strict-JSON object per line,
flushed on write — so the journal survives a killed process and a truncated
final line (the only corruption a crash can cause) is simply skipped on
replay.

Replay rebuilds the pre-restart job store inside a fresh
:class:`~repro.service.workers.WorkerPool`:

* ``done`` jobs reappear as DONE under their historical ids, their results
  served from the (persistent) result cache — nothing is recomputed;
* ``failed``/``cancelled`` jobs reappear in their terminal states with the
  recorded error;
* unfinished jobs (a ``submit`` line without a finish line — the queue the
  crash destroyed) are re-enqueued under their historical ids and simply run
  again, where the content-hash cache still deduplicates any part of the
  work that was persisted before the crash.

``repro serve --journal DIR`` wires this up end to end (and defaults the
result cache's persistence into ``DIR/cache`` so replayed DONE jobs keep
their payloads).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from ..obs.metrics import get_metrics
from .jobs import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .workers import WorkerPool

__all__ = ["JobJournal"]

_OBS_APPENDS = get_metrics().counter(
    "repro_journal_appends_total", "Job-journal lines appended, by event.", ("event",)
)
_OBS_WRITE_ERRORS = get_metrics().counter(
    "repro_journal_write_errors_total",
    "Journal lines lost to write errors (full disk, unserializable params).",
)


#: Journal event name per terminal job state.
_FINISH_EVENTS = {
    JobState.DONE: "done",
    JobState.FAILED: "failed",
    JobState.CANCELLED: "cancelled",
}


class JobJournal:
    """Append-only ``journal.jsonl`` under one directory, with replay."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "journal.jsonl"
        self._lock = threading.Lock()
        self._handle = self.path.open("a", encoding="utf-8")
        self.write_errors = 0

    # ------------------------------------------------------------------ #
    # Recording (called by the worker pool, best-effort)
    # ------------------------------------------------------------------ #

    def record(self, event: str, **fields: Any) -> None:
        """Append one event line.  Best-effort: a journal that cannot be
        written (full disk, non-JSON params) must not fail the job itself."""
        with self._lock:
            try:
                line = json.dumps({"event": event, **fields}, sort_keys=True, allow_nan=False)
                self._handle.write(line + "\n")
                self._handle.flush()
            except (TypeError, ValueError, OSError):
                self.write_errors += 1
                _OBS_WRITE_ERRORS.inc()
                return
        _OBS_APPENDS.inc(event=event)

    def record_submit(self, job: Job) -> None:
        self.record(
            "submit",
            job_id=job.job_id,
            type=job.job_type,
            params=job.params,
            digest=job.digest,
            submitted_at=job.submitted_at,
            trace_id=job.trace_id,
        )

    def record_finish(self, job: Job) -> None:
        event = _FINISH_EVENTS.get(job.state)
        if event is None:  # pragma: no cover - finish called on live job
            return
        fields: dict[str, Any] = {"job_id": job.job_id, "digest": job.digest}
        if job.state is JobState.DONE:
            fields["cache_hit"] = job.cache_hit
        else:
            fields["error"] = job.error
        self.record(event, **fields)

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def records(self) -> Iterator[dict]:
        """Yield every parseable event line, oldest first.

        Unparseable lines (in practice: only a final line truncated by a
        kill) are silently skipped — the journal is an at-least-once record,
        and a job whose finish line was lost merely re-runs on replay.
        """
        if not self.path.exists():
            return
        with self.path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    def replay(self, pool: "WorkerPool") -> dict:
        """Rebuild the journaled jobs inside ``pool``; return replay stats."""
        merged: dict[str, dict] = {}
        order: list[str] = []
        for record in self.records():
            job_id = record.get("job_id")
            event = record.get("event")
            if not isinstance(job_id, str):
                continue
            if event == "submit":
                if job_id not in merged:
                    order.append(job_id)
                merged[job_id] = {
                    "type": record.get("type"),
                    "params": record.get("params"),
                    "digest": record.get("digest"),
                    "trace_id": record.get("trace_id"),
                    "state": None,
                    "error": None,
                }
            elif event in ("done", "failed", "cancelled") and job_id in merged:
                merged[job_id]["state"] = JobState(event)
                merged[job_id]["error"] = record.get("error")

        stats = {"replayed": 0, "completed": 0, "failed": 0,
                 "cancelled": 0, "requeued": 0, "skipped": 0}
        for job_id in order:
            entry = merged[job_id]
            if (
                not isinstance(entry["type"], str)
                or not isinstance(entry["params"], dict)
                or not isinstance(entry["digest"], str)
            ):
                stats["skipped"] += 1
                continue
            job, requeued = pool.restore_job(
                job_id,
                entry["type"],
                entry["params"],
                entry["digest"],
                state=entry["state"],
                error=entry["error"],
                trace_id=entry["trace_id"] if isinstance(entry["trace_id"], str) else None,
            )
            stats["replayed"] += 1
            if requeued:
                stats["requeued"] += 1
            elif job.state is JobState.DONE:
                stats["completed"] += 1
            elif job.state is JobState.CANCELLED:
                stats["cancelled"] += 1
            else:
                stats["failed"] += 1
        return stats
