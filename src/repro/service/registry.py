"""Scenario registry: every runnable job type of the service, by name.

A :class:`JobType` pairs a name with a runner and its parameter defaults;
parameters outside the declared set are rejected so that typos fail loudly
instead of silently hashing to a fresh cache entry.  Runners return
strictly-JSON data (see :func:`repro.eval.reporting.to_jsonable`), which is
what the cache persists and the HTTP API ships.

:func:`build_default_registry` exposes:

* every table/figure of the paper (the CLI's ``EXPERIMENT_COMMANDS``),
* ``ablations`` and the full ``suite`` reproduction,
* ad-hoc jobs: ``prune_tensor`` (compress one synthetic matrix),
  ``codec_compress`` (any codec or pipeline of the :mod:`repro.codecs`
  registry on one synthetic matrix), ``quantize_tensor`` (its
  backward-compatible precursor, a thin dispatch over the same codecs)
  and ``simulate`` (one model on one accelerator of the line-up),
* ``campaign`` (run a whole declarative campaign spec and return its
  aggregate report; see :mod:`repro.campaign`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

__all__ = ["JobType", "ScenarioRegistry", "build_default_registry"]


@dataclass(frozen=True)
class JobType:
    """One named, parameterized computation the service can run."""

    name: str
    description: str
    runner: Callable[..., Any] = field(repr=False)
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def run(self, params: Mapping[str, Any] | None = None) -> Any:
        params = dict(params or {})
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for job type {self.name!r}; "
                f"accepted: {sorted(self.defaults)}"
            )
        merged = {**self.defaults, **params}
        return self.runner(**merged)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "params": {key: value for key, value in self.defaults.items()},
        }


class ScenarioRegistry:
    """Name -> :class:`JobType` mapping with validation."""

    def __init__(self) -> None:
        self._types: dict[str, JobType] = {}

    def register(self, job_type: JobType) -> JobType:
        if job_type.name in self._types:
            raise ValueError(f"job type {job_type.name!r} already registered")
        self._types[job_type.name] = job_type
        return job_type

    def add(
        self,
        name: str,
        description: str,
        runner: Callable[..., Any],
        defaults: Mapping[str, Any] | None = None,
    ) -> JobType:
        return self.register(JobType(name, description, runner, dict(defaults or {})))

    def get(self, name: str) -> JobType:
        try:
            return self._types[name]
        except KeyError:
            raise ValueError(
                f"unknown job type {name!r}; available: {self.names()}"
            ) from None

    def run(self, name: str, params: Mapping[str, Any] | None = None) -> Any:
        return self.get(name).run(params)

    def names(self) -> list[str]:
        return sorted(self._types)

    def describe(self) -> list[dict]:
        return [self._types[name].describe() for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)


# --------------------------------------------------------------------------- #
# Ad-hoc job runners
# --------------------------------------------------------------------------- #


def _synthetic_int_matrix(
    rows: int, cols: int, seed: int, scale: float, bits: int = 8
) -> np.ndarray:
    """One synthetic Gaussian integer matrix, clipped to the signed range."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    limit = 1 << (bits - 1)
    generator = np.random.default_rng(seed)
    return np.clip(
        np.round(generator.normal(0.0, scale, size=(rows, cols))), -limit, limit - 1
    ).astype(np.int64)


def _run_prune_tensor(
    rows: int,
    cols: int,
    seed: int,
    num_columns: int,
    strategy: str,
    group_size: int,
    bits: int,
    beta: float,
    scale: float,
) -> dict:
    """Compress one synthetic Gaussian integer matrix and report the outcome."""
    from ..core import PruningStrategy, prune_tensor

    weights = _synthetic_int_matrix(rows, cols, seed, scale, bits)

    sensitive = np.zeros(rows, dtype=bool)
    count = int(np.ceil(beta * rows))
    if count:
        order = np.argsort(-np.abs(weights).max(axis=1), kind="stable")
        sensitive[order[:count]] = True

    pruned = prune_tensor(
        weights,
        num_columns,
        PruningStrategy(strategy),
        group_size=group_size,
        bits=bits,
        sensitive_channels=sensitive,
    )
    return {
        "shape": [rows, cols],
        "strategy": PruningStrategy(strategy).value,
        "num_columns": num_columns,
        "group_size": group_size,
        "bits": bits,
        "beta": beta,
        "content_digest": pruned.content_digest(),
        "storage_bits": int(pruned.storage_bits()),
        "effective_bits": float(pruned.effective_bits()),
        "compression_ratio": float(pruned.compression_ratio()),
        "mse": float(pruned.mse()),
        "kl_divergence": float(pruned.kl_divergence()),
    }


def _run_simulate(
    model: str,
    accelerator: str,
    seed: int,
    max_channels: int,
    max_reduction: int,
) -> dict:
    """Run one benchmark model on one accelerator of the standard line-up."""
    from ..eval.benchmarks import BenchmarkSuite, performance_summary

    suite = BenchmarkSuite(seed=seed, max_channels=max_channels, max_reduction=max_reduction)
    instances = suite.accelerators()
    if accelerator not in instances:
        raise ValueError(
            f"unknown accelerator {accelerator!r}; available: {sorted(instances)}"
        )
    performance = instances[accelerator].run_model(suite.model(model), suite.weights(model))
    return {
        "suite": suite.config(),
        "suite_digest": suite.config_digest(),
        **performance_summary(performance),
    }


#: ``quantize_tensor`` backends -> the ``repro.codecs`` codec each maps to.
QUANT_BACKENDS = ("ant", "bitflip", "microscaling", "noisyquant", "olive", "ptq")

#: Scenario parameter names forwarded to each backend codec (the scenario's
#: uniform parameter surface is wider than any single codec's schema).
_BACKEND_CODEC_PARAMS: Mapping[str, tuple[str, ...]] = {
    "ant": ("bits",),
    "bitflip": ("bits", "num_columns", "group_size"),
    "microscaling": ("bits", "group_size"),
    "noisyquant": ("bits", "seed"),
    "olive": ("bits",),
    "ptq": ("bits",),
}


def _synthetic_float_matrix(rows: int, cols: int, seed: int, scale: float) -> np.ndarray:
    """The shared Gaussian tensor source of the codec-driven scenarios."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    generator = np.random.default_rng(seed)
    return generator.normal(0.0, scale, size=(rows, cols))


def _run_quantize_tensor(
    backend: str,
    rows: int,
    cols: int,
    seed: int,
    scale: float,
    bits: int,
    group_size: int,
    num_columns: int,
) -> dict:
    """Run one quantization backend over one synthetic Gaussian matrix.

    A thin dispatch over the :mod:`repro.codecs` registry, kept for
    backward compatibility with existing campaign specs: every backend name
    is also a codec name, and the new ``codec_compress`` scenario is the
    generic (and pipeline-capable) superset of this one.  ``group_size``
    doubles as the microscaling block size and the bit-flip dot-product
    group; ``num_columns`` only matters for ``bitflip``.
    """
    from .. import codecs

    if backend not in QUANT_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {sorted(QUANT_BACKENDS)}"
        )
    weights = _synthetic_float_matrix(rows, cols, seed, scale)
    candidates = {
        "bits": bits,
        "group_size": group_size,
        "num_columns": num_columns,
        "seed": seed,
    }
    params = {key: candidates[key] for key in _BACKEND_CODEC_PARAMS[backend]}
    result = codecs.run_codec(backend, weights, params)

    extras: dict[str, Any] = {}
    if backend == "ant":
        counts: dict[str, int] = {}
        for name in result.payload.chosen_datatypes:
            counts[name] = counts.get(name, 0) + 1
        extras["datatype_counts"] = dict(sorted(counts.items()))
    elif backend == "bitflip":
        extras["inherent_zero_columns"] = int(result.extras["inherent_zero_columns"])
        extras["forced_zero_columns"] = int(result.extras["forced_zero_columns"])
    elif backend == "noisyquant":
        extras["noise_amplitude"] = float(result.extras["noise_amplitude"])
    elif backend == "olive":
        extras["outlier_fraction"] = float(result.extras["outlier_fraction"])

    mse = result.mse()
    return {
        "backend": backend,
        "shape": [rows, cols],
        "bits": bits,
        "group_size": group_size,
        "seed": seed,
        "mse": float(mse),
        "normalized_mse": float(mse) / float(scale) ** 2,
        "effective_bits": float(result.effective_bits()),
        "content_digest": result.digest(),
        **extras,
    }


def _run_codec_compress(
    codec: Any,
    rows: int,
    cols: int,
    seed: int,
    scale: float,
    params: Any,
    stages: Any,
) -> dict:
    """Compress one synthetic Gaussian matrix with any registered codec.

    ``stages`` (a pipeline stage list) implies the ``pipeline`` codec;
    otherwise ``codec`` names any codec of the :mod:`repro.codecs` registry
    and ``params`` holds its parameters.  The result record carries the
    codec identity, canonical parameters, uniform scalar metrics, per-stage
    metrics for pipelines, and the artifact's provenance digest.
    """
    from .. import codecs
    from ..eval.reporting import to_jsonable

    if stages is not None:
        if codec not in (None, "pipeline"):
            raise ValueError(
                f'"stages" implies the pipeline codec; drop codec={codec!r} '
                "or fold it into the stage list"
            )
        if params:
            raise ValueError(
                '"stages" implies the pipeline codec; move "params" into '
                "the stage objects"
            )
        codec, codec_params = "pipeline", {"stages": stages}
    else:
        if not isinstance(codec, str) or not codec:
            raise ValueError('"codec" must name a registered codec (see /v1/codecs)')
        codec_params = params or {}
    if not isinstance(codec_params, Mapping):
        raise ValueError('"params" must be a JSON object')

    weights = _synthetic_float_matrix(rows, cols, seed, scale)
    result = codecs.run_codec(codec, weights, codec_params)
    record = result.to_jsonable()
    record["seed"] = seed
    record["scale"] = float(scale)
    record["normalized_mse"] = float(result.mse()) / float(scale) ** 2
    return to_jsonable(record)


def _run_campaign(spec: Any, jobs: int) -> dict:
    """Run a whole declarative campaign and return its aggregate report."""
    from ..campaign import parse_spec, run_campaign

    if not isinstance(spec, dict):
        raise ValueError('campaign needs a "spec" parameter holding the spec object')
    return run_campaign(parse_spec(spec), jobs=int(jobs))


def _experiment_runner(name: str) -> Callable[..., dict]:
    def runner(**params: Any) -> dict:
        from ..cli import run_experiment
        from ..eval.experiments import json_payload

        return json_payload(run_experiment(name, **params))

    runner.__name__ = f"run_{name}"
    return runner


def _run_ablations(seed: int) -> dict:
    from ..eval.ablations import run_all_ablations
    from ..eval.experiments import json_payload

    return {name: json_payload(result) for name, result in run_all_ablations(seed=seed).items()}


def _run_suite(fast: bool, seed: int) -> dict:
    from ..eval import experiments
    from ..eval.experiments import json_payload

    return {
        name: json_payload(result)
        for name, result in experiments.run_all(fast=fast, seed=seed).items()
    }


def build_default_registry() -> ScenarioRegistry:
    """The standard service registry: experiments + ablations + ad-hoc jobs."""
    from ..cli import EXPERIMENT_COMMANDS

    registry = ScenarioRegistry()
    for name, (function, takes_models) in EXPERIMENT_COMMANDS.items():
        defaults: dict[str, Any] = {}
        if takes_models:
            defaults["models"] = None
        parameters = inspect.signature(function).parameters
        # A "suite" parameter also consumes the seed (run_experiment builds
        # the BenchmarkSuite from it), so those experiments are seedable too.
        if "seed" in parameters or "suite" in parameters:
            defaults["seed"] = 0
        summary = (function.__doc__ or name).strip().splitlines()[0]
        registry.add(name, summary, _experiment_runner(name), defaults)

    registry.add(
        "ablations",
        "Run every design-choice ablation study.",
        _run_ablations,
        {"seed": 0},
    )
    registry.add(
        "suite",
        "Run the full paper reproduction (every table and figure).",
        _run_suite,
        {"fast": True, "seed": 0},
    )
    registry.add(
        "prune_tensor",
        "Binary-prune one synthetic Gaussian INT8 matrix and report "
        "compression quality and footprint.",
        _run_prune_tensor,
        {
            "rows": 128,
            "cols": 1024,
            "seed": 0,
            "num_columns": 4,
            "strategy": "zero_point_shift",
            "group_size": 32,
            "bits": 8,
            "beta": 0.0,
            "scale": 24.0,
        },
    )
    registry.add(
        "quantize_tensor",
        "Quantize one synthetic Gaussian matrix with a repro.quant backend "
        "(ant, bitflip, microscaling, noisyquant, olive, ptq) and report "
        "reconstruction MSE and effective bits.",
        _run_quantize_tensor,
        {
            "backend": "microscaling",
            "rows": 128,
            "cols": 1024,
            "seed": 0,
            "scale": 1.0,
            "bits": 6,
            "group_size": 32,
            "num_columns": 4,
        },
    )
    registry.add(
        "codec_compress",
        "Compress one synthetic Gaussian matrix with any codec of the "
        "repro.codecs registry (GET /v1/codecs lists names and parameter "
        "schemas); a 'stages' list runs a chained pipeline codec.",
        _run_codec_compress,
        {
            "codec": None,
            "rows": 128,
            "cols": 1024,
            "seed": 0,
            "scale": 1.0,
            "params": {},
            "stages": None,
        },
    )
    registry.add(
        "campaign",
        "Expand a declarative campaign spec into its job grid, run every "
        "cell, and return the aggregate report (see repro.campaign).",
        _run_campaign,
        {"spec": None, "jobs": 1},
    )
    registry.add(
        "simulate",
        "Run one benchmark model on one accelerator and report cycles/energy.",
        _run_simulate,
        {
            "model": "ResNet-50",
            "accelerator": "BitVert (moderate)",
            "seed": 0,
            "max_channels": 96,
            "max_reduction": 768,
        },
    )
    return registry
