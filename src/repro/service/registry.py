"""Scenario registry: every runnable job type of the service, by name.

A :class:`JobType` pairs a name with a runner and its parameter defaults;
parameters outside the declared set are rejected so that typos fail loudly
instead of silently hashing to a fresh cache entry.  Runners return
strictly-JSON data (see :func:`repro.eval.reporting.to_jsonable`), which is
what the cache persists and the HTTP API ships.

:func:`build_default_registry` exposes:

* every table/figure of the paper (the CLI's ``EXPERIMENT_COMMANDS``),
* ``ablations`` and the full ``suite`` reproduction,
* ad-hoc jobs: ``prune_tensor`` (compress one synthetic matrix),
  ``quantize_tensor`` (one ``repro.quant`` backend on one synthetic matrix)
  and ``simulate`` (one model on one accelerator of the line-up),
* ``campaign`` (run a whole declarative campaign spec and return its
  aggregate report; see :mod:`repro.campaign`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

__all__ = ["JobType", "ScenarioRegistry", "build_default_registry"]


@dataclass(frozen=True)
class JobType:
    """One named, parameterized computation the service can run."""

    name: str
    description: str
    runner: Callable[..., Any] = field(repr=False)
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def run(self, params: Mapping[str, Any] | None = None) -> Any:
        params = dict(params or {})
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for job type {self.name!r}; "
                f"accepted: {sorted(self.defaults)}"
            )
        merged = {**self.defaults, **params}
        return self.runner(**merged)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "params": {key: value for key, value in self.defaults.items()},
        }


class ScenarioRegistry:
    """Name -> :class:`JobType` mapping with validation."""

    def __init__(self) -> None:
        self._types: dict[str, JobType] = {}

    def register(self, job_type: JobType) -> JobType:
        if job_type.name in self._types:
            raise ValueError(f"job type {job_type.name!r} already registered")
        self._types[job_type.name] = job_type
        return job_type

    def add(
        self,
        name: str,
        description: str,
        runner: Callable[..., Any],
        defaults: Mapping[str, Any] | None = None,
    ) -> JobType:
        return self.register(JobType(name, description, runner, dict(defaults or {})))

    def get(self, name: str) -> JobType:
        try:
            return self._types[name]
        except KeyError:
            raise ValueError(
                f"unknown job type {name!r}; available: {self.names()}"
            ) from None

    def run(self, name: str, params: Mapping[str, Any] | None = None) -> Any:
        return self.get(name).run(params)

    def names(self) -> list[str]:
        return sorted(self._types)

    def describe(self) -> list[dict]:
        return [self._types[name].describe() for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)


# --------------------------------------------------------------------------- #
# Ad-hoc job runners
# --------------------------------------------------------------------------- #


def _synthetic_int_matrix(
    rows: int, cols: int, seed: int, scale: float, bits: int = 8
) -> np.ndarray:
    """One synthetic Gaussian integer matrix, clipped to the signed range."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    limit = 1 << (bits - 1)
    generator = np.random.default_rng(seed)
    return np.clip(
        np.round(generator.normal(0.0, scale, size=(rows, cols))), -limit, limit - 1
    ).astype(np.int64)


def _run_prune_tensor(
    rows: int,
    cols: int,
    seed: int,
    num_columns: int,
    strategy: str,
    group_size: int,
    bits: int,
    beta: float,
    scale: float,
) -> dict:
    """Compress one synthetic Gaussian integer matrix and report the outcome."""
    from ..core import PruningStrategy, prune_tensor

    weights = _synthetic_int_matrix(rows, cols, seed, scale, bits)

    sensitive = np.zeros(rows, dtype=bool)
    count = int(np.ceil(beta * rows))
    if count:
        order = np.argsort(-np.abs(weights).max(axis=1), kind="stable")
        sensitive[order[:count]] = True

    pruned = prune_tensor(
        weights,
        num_columns,
        PruningStrategy(strategy),
        group_size=group_size,
        bits=bits,
        sensitive_channels=sensitive,
    )
    return {
        "shape": [rows, cols],
        "strategy": PruningStrategy(strategy).value,
        "num_columns": num_columns,
        "group_size": group_size,
        "bits": bits,
        "beta": beta,
        "content_digest": pruned.content_digest(),
        "storage_bits": int(pruned.storage_bits()),
        "effective_bits": float(pruned.effective_bits()),
        "compression_ratio": float(pruned.compression_ratio()),
        "mse": float(pruned.mse()),
        "kl_divergence": float(pruned.kl_divergence()),
    }


def _run_simulate(
    model: str,
    accelerator: str,
    seed: int,
    max_channels: int,
    max_reduction: int,
) -> dict:
    """Run one benchmark model on one accelerator of the standard line-up."""
    from ..eval.benchmarks import BenchmarkSuite, performance_summary

    suite = BenchmarkSuite(seed=seed, max_channels=max_channels, max_reduction=max_reduction)
    instances = suite.accelerators()
    if accelerator not in instances:
        raise ValueError(
            f"unknown accelerator {accelerator!r}; available: {sorted(instances)}"
        )
    performance = instances[accelerator].run_model(suite.model(model), suite.weights(model))
    return {
        "suite": suite.config(),
        "suite_digest": suite.config_digest(),
        **performance_summary(performance),
    }


#: ``quantize_tensor`` backends -> the ``repro.quant`` entry point each maps to.
QUANT_BACKENDS = ("ant", "bitflip", "microscaling", "noisyquant", "olive", "ptq")


def _run_quantize_tensor(
    backend: str,
    rows: int,
    cols: int,
    seed: int,
    scale: float,
    bits: int,
    group_size: int,
    num_columns: int,
) -> dict:
    """Run one ``repro.quant`` backend over one synthetic Gaussian matrix.

    The campaign engine sweeps ``backend`` (and word width/grouping) through
    this single scenario, so every backend reports the same core metrics:
    reconstruction MSE against the float reference and effective stored bits
    per weight.  ``group_size`` doubles as the microscaling block size and the
    bit-flip dot-product group; ``num_columns`` only matters for ``bitflip``.
    """
    from .. import quant

    if backend not in QUANT_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {sorted(QUANT_BACKENDS)}"
        )
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    generator = np.random.default_rng(seed)
    weights = generator.normal(0.0, scale, size=(rows, cols))

    extras: dict[str, Any] = {}
    if backend == "ant":
        result = quant.ant_quantize(weights, bits=bits)
        mse, effective_bits = result.mse(), result.effective_bits()
        counts: dict[str, int] = {}
        for name in result.chosen_datatypes:
            counts[name] = counts.get(name, 0) + 1
        extras["datatype_counts"] = dict(sorted(counts.items()))
    elif backend == "bitflip":
        codes = quant.quantize_per_channel(weights, bits=bits)
        result = quant.bitflip_tensor(
            codes.values, num_columns, group_size=group_size, bits=bits
        )
        # Report MSE in the float domain like every other backend: dequantize
        # the pruned codes so the metric includes the PTQ error, not just the
        # column-pruning error measured between integer codes.
        reconstructed = result.values * codes.scales[:, None]
        mse = float(np.mean((weights - reconstructed) ** 2))
        effective_bits = result.effective_bits()
        extras["inherent_zero_columns"] = int(result.inherent_zero_columns.sum())
        extras["forced_zero_columns"] = int(result.forced_zero_columns.sum())
    elif backend == "microscaling":
        result = quant.microscaling_quantize(
            weights, element_bits=bits, block_size=group_size
        )
        mse, effective_bits = result.mse(), result.effective_bits()
    elif backend == "noisyquant":
        result = quant.noisyquant_quantize(weights, bits=bits, seed=seed)
        mse, effective_bits = result.mse(), result.effective_bits()
        extras["noise_amplitude"] = float(result.noise_amplitude)
    elif backend == "olive":
        result = quant.olive_quantize(weights, bits=bits)
        mse, effective_bits = result.mse(), result.effective_bits()
        extras["outlier_fraction"] = float(result.outlier_fraction)
    else:  # ptq
        quantized = quant.quantize_per_channel(weights, bits=bits, calibrate=bits < 6)
        reconstructed = quant.dequantize(quantized)
        mse = float(np.mean((weights - reconstructed) ** 2))
        effective_bits = float(bits)

    return {
        "backend": backend,
        "shape": [rows, cols],
        "bits": bits,
        "group_size": group_size,
        "seed": seed,
        "mse": float(mse),
        "normalized_mse": float(mse) / float(scale) ** 2,
        "effective_bits": float(effective_bits),
        **extras,
    }


def _run_campaign(spec: Any, jobs: int) -> dict:
    """Run a whole declarative campaign and return its aggregate report."""
    from ..campaign import parse_spec, run_campaign

    if not isinstance(spec, dict):
        raise ValueError('campaign needs a "spec" parameter holding the spec object')
    return run_campaign(parse_spec(spec), jobs=int(jobs))


def _experiment_runner(name: str) -> Callable[..., dict]:
    def runner(**params: Any) -> dict:
        from ..cli import run_experiment
        from ..eval.experiments import json_payload

        return json_payload(run_experiment(name, **params))

    runner.__name__ = f"run_{name}"
    return runner


def _run_ablations(seed: int) -> dict:
    from ..eval.ablations import run_all_ablations
    from ..eval.experiments import json_payload

    return {name: json_payload(result) for name, result in run_all_ablations(seed=seed).items()}


def _run_suite(fast: bool, seed: int) -> dict:
    from ..eval import experiments
    from ..eval.experiments import json_payload

    return {
        name: json_payload(result)
        for name, result in experiments.run_all(fast=fast, seed=seed).items()
    }


def build_default_registry() -> ScenarioRegistry:
    """The standard service registry: experiments + ablations + ad-hoc jobs."""
    from ..cli import EXPERIMENT_COMMANDS

    registry = ScenarioRegistry()
    for name, (function, takes_models) in EXPERIMENT_COMMANDS.items():
        defaults: dict[str, Any] = {}
        if takes_models:
            defaults["models"] = None
        parameters = inspect.signature(function).parameters
        # A "suite" parameter also consumes the seed (run_experiment builds
        # the BenchmarkSuite from it), so those experiments are seedable too.
        if "seed" in parameters or "suite" in parameters:
            defaults["seed"] = 0
        summary = (function.__doc__ or name).strip().splitlines()[0]
        registry.add(name, summary, _experiment_runner(name), defaults)

    registry.add(
        "ablations",
        "Run every design-choice ablation study.",
        _run_ablations,
        {"seed": 0},
    )
    registry.add(
        "suite",
        "Run the full paper reproduction (every table and figure).",
        _run_suite,
        {"fast": True, "seed": 0},
    )
    registry.add(
        "prune_tensor",
        "Binary-prune one synthetic Gaussian INT8 matrix and report "
        "compression quality and footprint.",
        _run_prune_tensor,
        {
            "rows": 128,
            "cols": 1024,
            "seed": 0,
            "num_columns": 4,
            "strategy": "zero_point_shift",
            "group_size": 32,
            "bits": 8,
            "beta": 0.0,
            "scale": 24.0,
        },
    )
    registry.add(
        "quantize_tensor",
        "Quantize one synthetic Gaussian matrix with a repro.quant backend "
        "(ant, bitflip, microscaling, noisyquant, olive, ptq) and report "
        "reconstruction MSE and effective bits.",
        _run_quantize_tensor,
        {
            "backend": "microscaling",
            "rows": 128,
            "cols": 1024,
            "seed": 0,
            "scale": 1.0,
            "bits": 6,
            "group_size": 32,
            "num_columns": 4,
        },
    )
    registry.add(
        "campaign",
        "Expand a declarative campaign spec into its job grid, run every "
        "cell, and return the aggregate report (see repro.campaign).",
        _run_campaign,
        {"spec": None, "jobs": 1},
    )
    registry.add(
        "simulate",
        "Run one benchmark model on one accelerator and report cycles/energy.",
        _run_simulate,
        {
            "model": "ResNet-50",
            "accelerator": "BitVert (moderate)",
            "seed": 0,
            "max_channels": 96,
            "max_reduction": 768,
        },
    )
    return registry
