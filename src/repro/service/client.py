"""Stdlib HTTP client for the repro service, with retries and typed errors.

A thin, dependency-free wrapper over :mod:`urllib` that turns the service's
JSON API into Python calls and its failure modes into a small exception
taxonomy:

* :class:`ServiceRequestError` — the service answered with a non-retryable
  4xx (bad submission, unknown job, cancel conflict); carries the status and
  the decoded JSON error payload.
* :class:`ServiceUnavailable` — the node could not be reached (connection
  refused/reset, timeout), kept answering 5xx, or stayed saturated (429)
  through every retry.  Transient failures are retried with exponential
  backoff before this is raised, so one dropped packet does not kill a
  campaign dispatch.  A 429/503 carrying a ``Retry-After`` hint (header or
  ``retry_after`` body field) overrides the backoff for the next attempt —
  the server knows its own queue better than a blind exponential does.
* :class:`CircuitBreakerOpen` — a :class:`ServiceUnavailable` raised without
  touching the network: this client's circuit breaker is open after too many
  consecutive failures, and calls fail fast until the reset timeout lets a
  half-open probe through.
* :class:`JobFailedError` — raised only by the synchronous conveniences
  (:meth:`ServiceClient.run_job`) when the remote job itself failed; carries
  the job record with the remote traceback.

The campaign dispatcher (:mod:`repro.campaign.dispatch`) is built entirely on
this client; ``examples/service_client.py`` shows interactive use.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Callable

from ..chaos.plan import maybe_fail
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics

__all__ = [
    "CircuitBreaker",
    "CircuitBreakerOpen",
    "JobFailedError",
    "ServiceClient",
    "ServiceError",
    "ServiceRequestError",
    "ServiceUnavailable",
]


class ServiceError(RuntimeError):
    """Base class for everything this client raises."""


class ServiceRequestError(ServiceError):
    """The service rejected the request (non-retryable 4xx)."""

    def __init__(self, status: int, payload: dict | None, url: str):
        self.status = status
        self.payload = payload or {}
        self.url = url
        message = self.payload.get("error", f"HTTP {status}")
        super().__init__(f"{url}: {message} (HTTP {status})")


class ServiceUnavailable(ServiceError):
    """The node stayed unreachable/saturated through every retry.

    ``saturated`` distinguishes a full queue (every attempt answered 429 —
    the node is alive, just busy) from a node that cannot be reached at all;
    callers like the campaign dispatcher back off instead of failing over.
    """

    def __init__(self, url: str, attempts: int, cause: str, saturated: bool = False):
        self.url = url
        self.attempts = attempts
        self.saturated = saturated
        super().__init__(f"{url}: unreachable after {attempts} attempt(s): {cause}")


class CircuitBreakerOpen(ServiceUnavailable):
    """Fail-fast: the breaker is open, no request was attempted.

    Subclasses :class:`ServiceUnavailable` so existing callers (the campaign
    dispatcher's node-loss handling above all) treat a breaker-protected node
    exactly like an unreachable one — without paying connection timeouts to
    find out again.
    """

    def __init__(self, url: str, retry_in: float):
        self.retry_in = retry_in
        super().__init__(
            url, 0, f"circuit breaker open (half-open probe in {retry_in:.1f}s)"
        )


class JobFailedError(ServiceError):
    """A synchronously awaited remote job finished FAILED."""

    def __init__(self, job: dict):
        self.job = job
        error = (job.get("error") or "unknown error").strip().splitlines()[-1]
        super().__init__(f"job {job.get('job_id')!r} failed: {error}")


#: HTTP statuses worth retrying: saturation and transient upstream errors.
_RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})

_RETRIES_TOTAL = get_metrics().counter(
    "repro_client_retries_total",
    "ServiceClient retry attempts, by cause.",
    ("reason",),
)
_BREAKER_TRANSITIONS = get_metrics().counter(
    "repro_breaker_transitions_total",
    "ServiceClient circuit-breaker state transitions, by new state.",
    ("state",),
)
_RECONCILES_TOTAL = get_metrics().counter(
    "repro_client_reconciliations_total",
    "Retried submits resolved by digest lookup instead of re-posting "
    "(double-submit prevention).",
)


def _retry_reason(cause: str) -> str:
    """Collapse a retry cause onto a small, fixed label set."""
    if cause == "HTTP 429":
        return "http_429"
    if cause.startswith("HTTP 5"):
        return "http_5xx"
    if cause.startswith("non-JSON response"):
        return "bad_json"
    return "network"


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    Closed is the happy path.  ``failure_threshold`` consecutive recorded
    failures open the breaker: :meth:`allow` answers ``False`` (callers fail
    fast) until ``reset_timeout`` seconds pass, after which exactly one probe
    request is let through half-open.  A successful probe closes the breaker;
    a failed one re-opens it for another full timeout.

    What counts: network-level faults and HTTP 5xx are failures; *any* HTTP
    response below 500 — including 429 saturation and 4xx rejections — is a
    success, because the node answered.  A breaker guards against dead or
    broken nodes, not busy ones (saturation already has its own channel:
    ``ServiceUnavailable(saturated=True)`` and ``Retry-After``).

    Thread-safe; ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.transitions: dict[str, int] = {}
        self._opened_at: float | None = None
        self._probe_inflight = False

    def allow(self) -> bool:
        """May a request go out right now?  (May move open → half-open.)"""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if self._clock() - (self._opened_at or 0.0) >= self.reset_timeout:
                    self._transition("half-open")
                    self._probe_inflight = True
                    return True
                return False
            # half-open: one probe owns the slot until it reports back.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self._probe_inflight = False
            if self.state != "closed":
                self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            self._probe_inflight = False
            if self.state == "half-open":
                self._open()
                return
            self.consecutive_failures += 1
            if self.state == "closed" and self.consecutive_failures >= self.failure_threshold:
                self._open()

    def retry_in(self) -> float:
        """Seconds until an open breaker lets the next probe through."""
        with self._lock:
            if self.state != "open" or self._opened_at is None:
                return 0.0
            return max(self.reset_timeout - (self._clock() - self._opened_at), 0.0)

    def _open(self) -> None:
        self._opened_at = self._clock()
        self.consecutive_failures = 0
        self._transition("open")

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions[state] = self.transitions.get(state, 0) + 1
        _BREAKER_TRANSITIONS.inc(state=state)

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "transitions": dict(self.transitions),
            }


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8000")``.

    ``retries`` counts *additional* attempts after the first; the delay
    before retry ``n`` is ``backoff * 2**n`` seconds, unless the previous
    answer carried a ``Retry-After`` hint, which wins.  ``sleep`` is
    injectable so tests (and pollers with their own pacing) stay fast.

    Every client owns a :class:`CircuitBreaker` (pass ``breaker=`` to share
    or tune one); when it is open, :meth:`request` raises
    :class:`CircuitBreakerOpen` without touching the network.

    The convenience methods talk to the versioned ``/v1`` API;
    ``api_prefix=""`` pins a client to the deprecated legacy paths (for
    talking to a pre-``/v1`` server).  ``request`` takes raw paths either
    way.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
        api_prefix: str = "/v1",
        breaker: CircuitBreaker | None = None,
        api_key: str | None = None,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.api_key = api_key
        self.api_prefix = api_prefix.rstrip("/")
        self._sleep = sleep
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._scenario_defaults: dict[str, dict] | None = None
        #: Per-instance retry tally (reason -> count), mirrored into the
        #: process-wide ``repro_client_retries_total`` family; the campaign
        #: dispatcher aggregates these into its end-of-run summary.
        self.retries_by_reason: dict[str, int] = {}
        #: Retried submits resolved by digest lookup instead of a re-POST.
        self.reconciliations = 0

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r})"

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        on_retry: Callable[[], dict | None] | None = None,
    ) -> dict:
        """One JSON round trip with retry/backoff; returns the decoded body.

        When a trace context is active (the request happens inside a span —
        e.g. a campaign cell), it is propagated in the ``X-Repro-Trace``
        header so the server's ``http.request`` span joins the caller's
        trace.  Transient failures that will be retried are counted, per
        cause, on this instance and in the metrics registry.

        ``on_retry`` runs before each re-attempt (after the backoff sleep);
        when it returns a dict, that becomes the call's result and the
        request is *not* re-sent — the reconcile hook non-idempotent calls
        like :meth:`submit` use to avoid acting twice.
        """
        url = self.base_url + path
        if not self.breaker.allow():
            raise CircuitBreakerOpen(url, self.breaker.retry_in())
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload, allow_nan=False).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.api_key:
            # Gateway tenant authentication (see repro.gateway.quotas);
            # plain nodes ignore the header.
            headers["Authorization"] = "Bearer " + self.api_key
        ctx = obs_trace.current_context()
        if ctx is not None:
            headers[obs_trace.TRACE_HEADER] = obs_trace.format_traceparent(ctx)
        last_cause = "no attempt made"
        retry_hint: float | None = None
        attempts = self.retries + 1
        for attempt in range(attempts):
            if attempt:
                if retry_hint is not None:
                    self._sleep(retry_hint)
                    retry_hint = None
                else:
                    self._sleep(self.backoff * (2 ** (attempt - 1)))
                if on_retry is not None:
                    resolved = on_retry()
                    if resolved is not None:
                        return resolved
            try:
                maybe_fail("client.request")
                request = urllib.request.Request(url, data=data, headers=headers, method=method)
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    body = json.loads(response.read())
                self.breaker.record_success()
                return body
            except urllib.error.HTTPError as error:
                status = error.code
                try:
                    body = json.loads(error.read())
                except (json.JSONDecodeError, OSError):
                    body = None
                if status >= 500:
                    self.breaker.record_failure()
                else:
                    # The node answered — alive, even if busy or refusing.
                    self.breaker.record_success()
                if status in _RETRYABLE_STATUSES:
                    last_cause = f"HTTP {status}"
                    retry_hint = _retry_after_hint(error, body)
                    self._count_retry(last_cause, attempt, attempts)
                    continue
                raise ServiceRequestError(status, body, url) from None
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                ConnectionError,
                TimeoutError,
                OSError,
            ) as error:
                # http.client.HTTPException covers mid-response faults the
                # URLError wrapper misses — above all IncompleteRead, what a
                # truncated (chaos-proxied or crashed) peer produces.
                self.breaker.record_failure()
                last_cause = str(getattr(error, "reason", None) or error)
                self._count_retry(last_cause, attempt, attempts)
                continue
            except json.JSONDecodeError as error:
                self.breaker.record_failure()
                last_cause = f"non-JSON response: {error}"
                self._count_retry(last_cause, attempt, attempts)
                continue
        raise ServiceUnavailable(
            url, attempts, last_cause, saturated=last_cause == "HTTP 429"
        )

    def _count_retry(self, cause: str, attempt: int, attempts: int) -> None:
        """Count a transient failure that another attempt will follow."""
        if attempt >= attempts - 1:
            return  # last attempt: the failure raises, no retry happens
        reason = _retry_reason(cause)
        self.retries_by_reason[reason] = self.retries_by_reason.get(reason, 0) + 1
        _RETRIES_TOTAL.inc(reason=reason)

    def retry_stats(self) -> dict:
        """Retry/reconcile tallies of this client instance."""
        return {
            "total": sum(self.retries_by_reason.values()),
            "by_reason": dict(sorted(self.retries_by_reason.items())),
            "reconciliations": self.reconciliations,
        }

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def _path(self, path: str) -> str:
        return f"{self.api_prefix}{path}"

    def health(self) -> dict:
        return self.request("GET", self._path("/health"))

    def scenarios(self) -> list[dict]:
        return self.request("GET", self._path("/scenarios"))["scenarios"]

    def codecs(self) -> list[dict]:
        """Codec discovery: names, versions, and parameter schemas."""
        return self.request("GET", self._path("/codecs"))["codecs"]

    def cache_stats(self) -> dict:
        return self.request("GET", self._path("/cache/stats"))

    def metrics(self, format: str | None = None) -> dict | str:
        """``GET /v1/metrics``: Prometheus text, or a dict with ``format="json"``.

        The text scrape is a single attempt (no retry loop): a scraper's next
        cycle is the retry, and partial metric text is worse than none.
        """
        if format == "json":
            return self.request("GET", self._path("/metrics?format=json"))
        url = self.base_url + self._path("/metrics")
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceRequestError(error.code, None, url) from None
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            OSError,
        ) as error:
            cause = str(getattr(error, "reason", None) or error)
            raise ServiceUnavailable(url, 1, cause) from None

    def job_trace(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>/trace`` — the job's span tree (see repro.obs)."""
        return self.request("GET", self._path(f"/jobs/{job_id}/trace"))

    def submit(self, job_type: str, params: dict | None = None,
               wait: float | None = None, deadline_s: float | None = None) -> dict:
        """Submit a job; returns its record (with result if done and waited).

        ``deadline_s`` is the job's wall-clock budget on the server: a job
        that has not finished when it expires becomes ``FAILED: deadline``.

        Submits are **reconciled on retry**: a submit can time out *after*
        the server accepted it, so blindly re-POSTing may double-submit.
        Before each re-attempt the client computes the job's content digest
        (the same canonicalization the server applies) and asks ``GET
        /v1/jobs?digest=`` whether the first POST landed; if it did, that
        record is adopted instead of posting again.  Reconciled submits are
        counted in :attr:`reconciliations` / :meth:`retry_stats`.  (A record
        adopted this way is returned as-is — a ``wait=`` bound applies only
        to a fresh POST.)
        """
        path = self._path("/jobs" if wait is None else f"/jobs?wait={wait}")
        body: dict = {"type": job_type, "params": params or {}}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self.request(
            "POST", path, body,
            on_retry=lambda: self._reconcile_submit(job_type, params),
        )

    def _reconcile_submit(self, job_type: str, params: dict | None) -> dict | None:
        """Find a possibly-already-accepted submit by content digest.

        Computes the digest exactly as the server would — canonical defaults
        from ``GET /v1/scenarios`` merged under the explicit params — and
        queries the job listing for it.  Returns the found record (any live
        or done state; a cancelled one does not count as "landed"), or
        ``None`` to let the normal retry re-POST.  Every failure mode
        (unknown scenario, unreachable server, breaker open) falls back to
        ``None``: reconciliation is an optimization for correctness, never a
        new failure path.
        """
        from .workers import job_digest  # deferred: keeps client import light

        try:
            defaults = self.scenario_defaults().get(job_type)
            if defaults is None:
                return None
            digest = job_digest(job_type, {**defaults, **dict(params or {})})
            listing = self.jobs(digest=digest)
        except (ServiceError, ValueError, TypeError, KeyError):
            return None
        for record in listing.get("jobs") or []:
            if record.get("state") != "cancelled":
                self.reconciliations += 1
                _RECONCILES_TOTAL.inc()
                return record
        return None

    def submit_campaign(self, spec: dict, jobs: int = 1, wait: float | None = None) -> dict:
        path = self._path("/campaign" if wait is None else f"/campaign?wait={wait}")
        return self.request("POST", path, {"spec": spec, "jobs": jobs})

    def compress(
        self,
        codec: str | None = None,
        params: dict | None = None,
        stages: list | None = None,
        wait: float | None = None,
        **source: Any,
    ) -> dict:
        """``POST /v1/compress``: codec-validated submission of one tensor job.

        ``source`` takes the tensor-source knobs (``rows``/``cols``/``seed``/
        ``scale``); pass ``stages`` for a pipeline instead of ``codec``.
        """
        body: dict = dict(source)
        if codec is not None:
            body["codec"] = codec
        if params is not None:
            body["params"] = params
        if stages is not None:
            body["stages"] = stages
        path = self._path("/compress" if wait is None else f"/compress?wait={wait}")
        return self.request("POST", path, body)

    def job(self, job_id: str) -> dict:
        return self.request("GET", self._path(f"/jobs/{job_id}"))

    def result(self, job_id: str) -> dict:
        """Full record of a finished job, including its result payload."""
        return self.request("GET", self._path(f"/jobs/{job_id}/result"))

    def cancel(self, job_id: str) -> dict:
        return self.request("POST", self._path(f"/jobs/{job_id}/cancel"))

    def jobs(self, state: str | None = None, offset: int | None = None,
             limit: int | None = None, digest: str | None = None) -> dict:
        query = "&".join(
            f"{key}={value}"
            for key, value in (
                ("state", state),
                ("digest", digest),
                ("offset", offset),
                ("limit", limit),
            )
            if value is not None
        )
        return self.request("GET", self._path("/jobs" + (f"?{query}" if query else "")))

    def results(
        self,
        where: list[str] | None = None,
        sort: str | None = None,
        descending: bool = False,
        offset: int | None = None,
        limit: int | None = None,
        columns: list[str] | None = None,
    ) -> dict:
        """``GET /v1/results``: query the node's results warehouse.

        ``where`` takes ``"NAME OP VALUE"`` filter strings (the same syntax
        as ``repro warehouse query --where``); returns the pagination
        envelope ``{"results": [...], "total": N, "offset": o, "limit": l}``.
        A node started without a warehouse answers 503.
        """
        params: list[tuple[str, str]] = [("where", w) for w in (where or [])]
        if sort is not None:
            params.append(("sort", sort))
        if descending:
            params.append(("order", "desc"))
        if offset is not None:
            params.append(("offset", str(offset)))
        if limit is not None:
            params.append(("limit", str(limit)))
        if columns is not None:
            params.append(("columns", ",".join(columns)))
        query = urllib.parse.urlencode(params)
        return self.request(
            "GET", self._path("/results" + (f"?{query}" if query else ""))
        )

    def result_detail(self, digest: str) -> dict:
        """``GET /v1/results/<digest>``: one cell's full warehouse record."""
        return self.request(
            "GET", self._path(f"/results/{urllib.parse.quote(digest, safe='')}")
        )

    # ------------------------------------------------------------------ #
    # Pre-submit validation
    # ------------------------------------------------------------------ #

    def scenario_defaults(self, refresh: bool = False) -> dict[str, dict]:
        """``{scenario: canonical default params}`` from ``GET /v1/scenarios``.

        Cached per client (one fetch validates a whole campaign's cells);
        ``refresh=True`` re-fetches.
        """
        if self._scenario_defaults is None or refresh:
            self._scenario_defaults = {
                entry["name"]: dict(entry.get("params", {}))
                for entry in self.scenarios()
            }
        return self._scenario_defaults

    def validate_job(self, job_type: str, params: dict | None = None) -> None:
        """Check a submission against the node's registry without running it.

        Raises ``ValueError`` if the node does not know ``job_type`` or the
        parameter names — the same rejections the server would answer with a
        400/failed job, caught before anything is enqueued.
        """
        defaults = self.scenario_defaults()
        if job_type not in defaults:
            raise ValueError(
                f"{self.base_url}: unknown scenario {job_type!r}; "
                f"available: {sorted(defaults)}"
            )
        unknown = sorted(set(params or {}) - set(defaults[job_type]))
        if unknown:
            raise ValueError(
                f"{self.base_url}: unknown parameter(s) {unknown} for scenario "
                f"{job_type!r}; accepted: {sorted(defaults[job_type])}"
            )

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #

    def run_job(
        self,
        job_type: str,
        params: dict | None = None,
        poll_interval: float = 0.05,
        timeout: float | None = None,
        deadline_s: float | None = None,
        poll_cap: float = 2.0,
    ) -> Any:
        """Submit, wait for completion, and return the result payload.

        Polling backs off exponentially with jitter — starting at
        ``poll_interval``, growing 1.7x per poll, capped at ``poll_cap``
        seconds, each sleep jittered by a uniform 0.5–1.5x factor — so a
        thousand concurrent pollers neither hammer the node at a fixed
        cadence nor synchronize into thundering herds.

        Raises :class:`JobFailedError` if the remote job fails and
        ``TimeoutError`` if it does not finish in ``timeout`` seconds.
        """
        record = self.submit(job_type, params, wait=0, deadline_s=deadline_s)
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_interval
        while not _finished(record["state"]):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {record['job_id']} did not finish in {timeout}s"
                )
            self._sleep(delay * random.uniform(0.5, 1.5))
            delay = min(delay * 1.7, poll_cap)
            record = self.job(record["job_id"])
        if record["state"] != "done":
            raise JobFailedError(record)
        return self.result(record["job_id"])["result"]


def _retry_after_hint(error: urllib.error.HTTPError, body: dict | None) -> float | None:
    """Extract the server's retry hint from a 429/503 answer, if any.

    The JSON body's ``retry_after`` (float seconds) is preferred over the
    coarser integer ``Retry-After`` header.  Hints are clamped to [0, 30] —
    a misbehaving (or chaos-injected) server must not park a client for an
    hour.
    """
    hint: float | None = None
    if isinstance(body, dict):
        value = body.get("retry_after")
        if isinstance(value, (int, float)) and not isinstance(value, bool) and value >= 0:
            hint = float(value)
    if hint is None:
        header = error.headers.get("Retry-After") if error.headers else None
        if header is not None:
            try:
                hint = float(header)
            except ValueError:
                hint = None
    if hint is None or hint < 0:
        return None
    return min(hint, 30.0)


def _finished(state: str) -> bool:
    return state in ("done", "failed", "cancelled")
