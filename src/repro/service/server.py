"""Pure-stdlib HTTP/JSON API over the worker pool.

Built on ``http.server.ThreadingHTTPServer`` so the service needs nothing the
repository does not already depend on.  The API is versioned: every endpoint
lives under the ``/v1/`` prefix, and the historical unprefixed paths are kept
as deprecated aliases that serve identical payloads plus a ``Deprecation:
true`` header and a ``Link: </v1/...>; rel="successor-version"`` pointer.
Endpoints introduced with the versioned API (``/v1/codecs``,
``/v1/compress``) exist only under ``/v1``; the unversioned surface is
frozen at the pre-``/v1`` route set.

========  =========================  ==============================================
Method    Path (under ``/v1``)       Meaning
========  =========================  ==============================================
GET       /v1/health                 liveness + uptime + pool stats
GET       /v1/healthz                bare liveness probe (always 200)
GET       /v1/readyz                 readiness: 503 until journal replay is
                                     done and 503 again while draining
GET       /v1/scenarios              the registry's job types and their canonical
                                     default parameters (pre-submit validation)
GET       /v1/codecs                 codec discovery: names, versions, and
                                     parameter schemas (see :mod:`repro.codecs`)
GET       /v1/cache/stats            cache hit/miss/eviction counters
GET       /v1/jobs                   job summaries (``?state=``, ``?offset=``,
                                     ``?limit=`` filter and paginate)
GET       /v1/jobs/<id>              one job's status (no result)
GET       /v1/jobs/<id>/result       finished job's full record incl. result
GET       /v1/jobs/<id>/trace        the job's span tree (see :mod:`repro.obs`)
GET       /v1/metrics                Prometheus text exposition of the process
                                     metrics registry (``?format=json`` for JSON)
POST      /v1/jobs                   submit ``{"type": ..., "params": {...}}``
POST      /v1/jobs/<id>/cancel       cancel a still-queued job
POST      /v1/compress               compress with a registered codec/pipeline
                                     (validated, then a ``codec_compress`` job)
POST      /v1/campaign               submit a declarative campaign spec
========  =========================  ==============================================

``POST /v1/compress`` accepts ``{"codec": ..., "params": {...}}`` or
``{"stages": [...]}`` plus optional tensor-source fields
(``rows``/``cols``/``seed``/``scale``); the codec name and parameters are
validated against the codec registry before submission, so typos are a 400,
not a failed job.

``POST /campaign`` accepts either a campaign spec object directly or
``{"spec": {...}, "jobs": N}``; the spec is validated before submission (bad
specs are a 400, not a failed job) and the job's result is the campaign's
aggregate report.

``POST /jobs?wait=<seconds>`` blocks (bounded) until the job finishes and then
includes the result — handy for synchronous clients; everyone else polls
``/jobs/<id>``.  Responses are strict JSON (no NaN), UTF-8 encoded.

Every failure mode answers with a JSON error envelope: malformed bodies,
headers, and query parameters are 4xx, a saturated queue is 429, and any
unexpected handler exception is a 500 — never an HTML traceback, and never a
silently dropped keep-alive connection.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..chaos.plan import maybe_fail
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics
from ..obs.trace import TraceLog
from .cache import ResultCache
from .jobs import JobState
from .journal import JobJournal
from .registry import ScenarioRegistry, build_default_registry
from .workers import QueueFullError, WorkerPool

__all__ = [
    "API_VERSION",
    "ReproServer",
    "V1_ROUTES",
    "canonicalize_campaign",
    "canonicalize_compress",
    "create_server",
]

#: Current (only) version of the HTTP API; the path prefix is ``/v1``.
API_VERSION = "v1"

#: The versioned route table — the public API surface contract.  The
#: ``scripts/check_api_surface.py`` CI guard snapshots this list, so adding,
#: removing, or renaming a route is an explicit, reviewed change.
V1_ROUTES = (
    "GET /v1/cache/stats",
    "GET /v1/codecs",
    "GET /v1/health",
    "GET /v1/healthz",
    "GET /v1/jobs",
    "GET /v1/jobs/<id>",
    "GET /v1/jobs/<id>/result",
    "GET /v1/jobs/<id>/trace",
    "GET /v1/metrics",
    "GET /v1/readyz",
    "GET /v1/results",
    "GET /v1/results/<digest>",
    "GET /v1/scenarios",
    "POST /v1/campaign",
    "POST /v1/compress",
    "POST /v1/jobs",
    "POST /v1/jobs/<id>/cancel",
)

#: Root path segments of the pre-``/v1`` API.  Only these are served as
#: deprecated unprefixed aliases; endpoints introduced with the versioned API
#: (``/v1/codecs``, ``/v1/compress``) exist exclusively under ``/v1`` so the
#: unversioned surface can never grow.
LEGACY_ALIAS_ROOTS = frozenset({"cache", "campaign", "health", "jobs", "scenarios"})

#: Upper bound on ``?wait=`` so a client cannot pin a handler thread forever.
MAX_WAIT_SECONDS = 300.0

#: Upper bound on request bodies (a campaign spec is a few KiB; anything in
#: the tens of MiB is a mistake or abuse and must not balloon the heap).
MAX_BODY_BYTES = 16 * 1024 * 1024

_OBS = get_metrics()
_HTTP_REQUESTS = _OBS.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, route pattern, and status code.",
    ("method", "route", "status"),
)
_HTTP_SECONDS = _OBS.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency per route pattern.",
    ("route",),
)

_V1_ROUTE_SET = frozenset(V1_ROUTES)


def _route_label(method: str, parts: list[str]) -> str:
    """Map a request to its route *pattern* so metric labels stay bounded.

    Job ids collapse to ``<id>``; anything that matches no declared route
    (bad paths, probes, scanners) collapses to one ``unrouted`` label instead
    of minting a series per attacker-chosen path.
    """
    normalized = list(parts)
    if len(normalized) >= 2 and normalized[0] == "jobs":
        normalized[1] = "<id>"
    if len(normalized) == 2 and normalized[0] == "results":
        normalized[1] = "<digest>"
    candidate = "/v1/" + "/".join(normalized)
    if f"{method} {candidate}" in _V1_ROUTE_SET:
        return candidate
    return "unrouted"


def _parse_deadline(body: dict) -> float | None:
    """Validate an optional ``deadline_s`` submission field (seconds > 0)."""
    value = body.get("deadline_s")
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or not value > 0:
        raise ValueError('"deadline_s" must be a positive number of seconds')
    return float(value)


def canonicalize_compress(body: dict) -> tuple[dict, float | None]:
    """Validate one ``POST /v1/compress`` body -> ``(submission, deadline_s)``.

    The codec name, its parameters, and any pipeline stage list are validated
    against the codec registry, and the *canonicalized* forms (defaults
    merged in) are returned, so a sparse body, a spelled-out one, and a
    campaign ``codec:`` cell of the same work all land on one content digest.
    Shared by the service's compress route and the gateway front door (which
    must compute the digest *before* choosing a node).  Raises ``ValueError``
    on anything malformed.
    """
    from .. import codecs

    allowed = {"codec", "params", "stages", "deadline_s", *codecs.TENSOR_SOURCE_PARAMS}
    deadline_s = _parse_deadline(body)
    body = {key: value for key, value in body.items() if key != "deadline_s"}
    unknown = set(body) - allowed
    if unknown:
        raise ValueError(f"unknown compress field(s) {sorted(unknown)}")
    stages = body.get("stages")
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise ValueError('"params" must be a JSON object')
    codec = body.get("codec")
    if stages is not None:
        if params:
            raise ValueError(
                '"stages" implies the pipeline codec; move "params" into '
                "the stage objects"
            )
        if codec not in (None, "pipeline"):
            raise ValueError(
                '"stages" implies the pipeline codec; drop the "codec" field'
            )
        codec, stages = "pipeline", codecs.validate_stages(stages)
    else:
        if not isinstance(codec, str) or not codec:
            raise ValueError(
                'missing or non-string "codec" field (GET /v1/codecs lists them)'
            )
        declared = codecs.get_codec(codec)
        # A tensor-source key that is also a codec parameter (e.g.
        # noisyquant's "seed") feeds both, matching campaign codec: grids —
        # one value drives the synthetic tensor and the codec alike.  An
        # explicit entry in "params" still wins.
        shared = {
            key: body[key]
            for key in codecs.TENSOR_SOURCE_PARAMS
            if key in body and key in declared.defaults and key not in params
        }
        params = declared.validate_params({**shared, **params})

    submission: dict = {"codec": codec, "params": params, "stages": stages}
    for key in codecs.TENSOR_SOURCE_PARAMS:
        if key in body:
            submission[key] = body[key]
    return submission, deadline_s


def canonicalize_campaign(body: dict, registry: ScenarioRegistry) -> tuple[dict, float | None]:
    """Validate one ``POST /v1/campaign`` body -> ``(params, deadline_s)``.

    The body is either the spec itself or ``{"spec": ..., "jobs": N}``;
    validation (including expansion against ``registry``, which catches
    unknown scenarios and parameter typos) runs here so malformed specs fail
    the request, not the job.  Shared by the service's campaign route and the
    gateway front door.  Raises ``ValueError`` on anything malformed.
    """
    from ..campaign import CampaignSpecError, expand_spec, parse_spec

    deadline_s = None
    if "spec" in body:
        spec, jobs = body.get("spec"), body.get("jobs", 1)
        unknown = set(body) - {"spec", "jobs", "deadline_s"}
        if unknown:
            raise ValueError(f"unknown campaign field(s) {sorted(unknown)}")
        deadline_s = _parse_deadline(body)
    else:
        spec, jobs = body, 1
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError('"jobs" must be a positive integer')
    try:
        expand_spec(parse_spec(spec), registry=registry)
    except CampaignSpecError as error:
        raise ValueError(f"invalid campaign spec: {error}") from None
    return {"spec": spec, "jobs": jobs}, deadline_s


class _HTTPError(Exception):
    """A client error the handler turns into a JSON error response.

    ``close`` forces ``Connection: close``: raised when the request body
    could not be (fully) drained, so the keep-alive byte stream is no longer
    trustworthy for a next request.
    """

    def __init__(self, status: int, message: str, close: bool = False):
        super().__init__(message)
        self.status = status
        self.message = message
        self.close = close


class _RequestHandler(BaseHTTPRequestHandler):
    server: "ReproServer"
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, extra_headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self._send_body(
            status, body, "application/json; charset=utf-8", extra_headers
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._observed_status = status  # feeds the request metrics/span
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        successor = getattr(self, "_successor_path", None)
        if successor is not None:
            # Served from a legacy unprefixed path: identical payload, but
            # clients are told where the supported route lives.
            self.send_header("Deprecation", "true")
            self.send_header("Link", f'<{successor}>; rel="successor-version"')
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _split_path(self, url) -> list[str]:
        """Path segments with the ``/v1`` prefix stripped.

        Requests on unprefixed *legacy* paths (:data:`LEGACY_ALIAS_ROOTS`)
        are flagged so every response (whatever its status) carries the
        deprecation headers; any other unprefixed path routes nowhere (404),
        so new ``/v1``-only endpoints never leak onto the unversioned
        surface.
        """
        parts = [part for part in url.path.split("/") if part]
        self._successor_path = None
        if parts and parts[0] == API_VERSION:
            return parts[1:]
        if parts and parts[0] in LEGACY_ALIAS_ROOTS:
            self._successor_path = f"/{API_VERSION}{url.path}"
            return parts
        return ["", *parts]  # unrouted namespace -> no handler matches -> 404

    def _drain_body(self) -> bytes:
        """Always consume the request body: on a keep-alive connection,
        unread bytes would be parsed as the next request line."""
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            # The body length is unknowable, so the body cannot be drained;
            # answer 400 and drop the (now unparseable) connection.
            raise _HTTPError(
                400, f"invalid Content-Length header {raw_length!r}", close=True
            ) from None
        if length < 0:
            raise _HTTPError(
                400, f"invalid Content-Length header {raw_length!r}", close=True
            )
        if length > MAX_BODY_BYTES:
            raise _HTTPError(
                413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}",
                close=True,
            )
        return self.rfile.read(length) if length else b""

    def _parse_json_body(self, raw: bytes) -> dict:
        if not raw:
            raise ValueError("empty request body; expected a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _handle(self, route) -> None:
        """Run one route with the error envelope every response path shares.

        Guarantees a JSON response (or a deliberately closed connection) for
        every outcome: expected client errors (:class:`_HTTPError`), a full
        queue (429), handler bugs and unserializable results (500), and a
        client that disconnected mid-response (swallowed — there is nobody
        left to answer).

        It is also the observability choke point: every request is timed
        into the HTTP metric families under its route *pattern*, and runs
        inside an ``http.request`` span — joined to the caller's trace when
        the request carried an ``X-Repro-Trace`` header, freshly minted
        otherwise — so jobs submitted by the route become its children.
        """
        url = urlsplit(self.path)
        route_label = _route_label(self.command, self._split_path(url))
        self._observed_status = 0  # 0 = connection died before a response
        request_span = obs_trace.start_span(
            "http.request",
            attrs={"method": self.command, "route": route_label, "path": url.path},
            parent=obs_trace.parse_traceparent(
                self.headers.get(obs_trace.TRACE_HEADER)
            ),
        )
        started = time.perf_counter()
        try:
            with obs_trace.activate(request_span):
                self._dispatch_route(route)
        finally:
            status = self._observed_status
            request_span.set_attr("status", status)
            request_span.finish(status="error" if status >= 500 or status == 0 else "ok")
            _HTTP_SECONDS.observe(time.perf_counter() - started, route=route_label)
            _HTTP_REQUESTS.inc(
                method=self.command, route=route_label, status=str(status)
            )

    def _dispatch_route(self, route) -> None:
        try:
            maybe_fail("server.request")
            route()
        except _HTTPError as error:
            if error.close:
                self.close_connection = True
            self._send_json(error.status, {"error": error.message})
        except QueueFullError as error:
            # The Retry-After header is the integer-ceiled form of the pool's
            # hint (the header grammar wants whole seconds); the JSON body
            # carries the precise float for clients that parse it.
            self._send_json(
                429,
                {
                    "error": str(error),
                    "max_queued": error.limit,
                    "retry_after": error.retry_after,
                },
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
            )
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away; nothing to send
        except Exception as error:  # noqa: BLE001 - last-resort envelope
            # The response may be half-written and the request half-read;
            # answer on a best-effort basis and retire the connection.
            self.close_connection = True
            try:
                self._send_json(
                    500,
                    {"error": f"internal server error: {type(error).__name__}: {error}"},
                )
            except (BrokenPipeError, ConnectionResetError, OSError, ValueError, TypeError):
                pass

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._successor_path = None  # reset per request (keep-alive reuse)
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._successor_path = None
        self._handle(self._route_post)

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        parts = self._split_path(url)
        pool = self.server.pool

        if parts == ["health"]:
            self._send_json(
                200,
                {
                    "status": "ok",
                    "api_version": API_VERSION,
                    "uptime_seconds": time.time() - self.server.started_at,
                    "scenarios": len(self.server.registry),
                    "journal": self.server.journal is not None,
                    "pool": pool.stats(),
                },
            )
        elif parts == ["healthz"]:
            # Liveness: answers 200 for as long as the process can serve at
            # all — registries and orchestrators use it to tell "slow" from
            # "gone".  (/v1-only: "healthz" is not a legacy alias root.)
            self._send_json(200, {"status": "alive"})
        elif parts == ["readyz"]:
            self._send_readyz()
        elif parts == ["scenarios"]:
            self._send_json(200, {"scenarios": self.server.registry.describe()})
        elif parts == ["codecs"]:
            from .. import codecs

            self._send_json(
                200,
                {
                    "api_version": API_VERSION,
                    "codecs": codecs.describe_codecs(),
                },
            )
        elif parts == ["cache", "stats"]:
            self._send_json(200, pool.cache.stats())
        elif parts == ["metrics"]:
            self._send_metrics(url.query)
        elif parts == ["jobs"]:
            self._send_json(200, self._list_jobs(url.query))
        elif parts == ["results"]:
            self._send_json(200, self._list_results(url.query))
        elif len(parts) == 2 and parts[0] == "results":
            self._send_result_detail(parts[1])
        elif len(parts) in (2, 3) and parts[0] == "jobs":
            job = pool.store.get(parts[1])
            if job is None:
                self._send_json(404, {"error": f"no such job {parts[1]!r}"})
            elif len(parts) == 2:
                self._send_json(200, job.to_dict())
            elif parts[2] == "result":
                if not job.state.finished:
                    # The envelope's "error" must win over the job record's
                    # (None) error field, so it is merged last.
                    self._send_json(409, {**job.to_dict(), "error": "job not finished"})
                else:
                    self._send_json(200, job.to_dict(include_result=True))
            elif parts[2] == "trace" and self._successor_path is None:
                # /v1-only (like /v1/codecs): the unversioned surface is
                # frozen, so the trace endpoint has no legacy alias.
                self._send_job_trace(job)
            else:
                self._send_json(404, {"error": f"no such endpoint {url.path!r}"})
        else:
            self._send_json(404, {"error": f"no such endpoint {url.path!r}"})

    def _send_readyz(self) -> None:
        """``GET /v1/readyz``: readiness, distinct from liveness.

        503 while the node is still replaying its journal (jobs submitted
        before the restart are not yet visible) and once a graceful drain has
        begun (the node answers, but new work should go elsewhere) — the
        externally visible "draining" signal SIGTERM previously lacked.
        """
        if self.server.draining:
            self._send_json(503, {"ready": False, "reason": "draining"})
        elif not self.server.ready:
            self._send_json(503, {"ready": False, "reason": "replaying journal"})
        else:
            self._send_json(200, {"ready": True})

    def _send_metrics(self, query_string: str) -> None:
        """``GET /v1/metrics``: Prometheus text by default, ``?format=json``."""
        query = parse_qs(query_string)
        fmt = query.get("format", ["prometheus"])[0]
        registry = get_metrics()
        if fmt == "json":
            self._send_json(200, registry.to_jsonable())
        elif fmt in ("prometheus", "text"):
            self._send_text(
                200,
                registry.render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            raise _HTTPError(
                400, f'invalid "format" {fmt!r}; one of ["json", "prometheus"]'
            )

    def _send_job_trace(self, job) -> None:
        """``GET /v1/jobs/<id>/trace``: the job's span tree, best-effort.

        Spans come from the in-memory ring buffer, so a very old job may
        answer with an empty tree — the trace id is still returned so the
        caller can grep the JSONL trace log.
        """
        spans = (
            self.server.recorder.buffer.spans_for_trace(job.trace_id)
            if job.trace_id
            else []
        )
        self._send_json(
            200,
            {
                "job_id": job.job_id,
                "trace_id": job.trace_id,
                "state": job.state.value,
                "span_count": len(spans),
                "trace": obs_trace.build_span_tree(spans),
            },
        )

    def _route_post(self) -> None:
        url = urlsplit(self.path)
        raw = self._drain_body()
        parts = self._split_path(url)
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            self._cancel_job(parts[1])
            return
        if parts not in (["jobs"], ["campaign"], ["compress"]):
            self._send_json(404, {"error": f"no such endpoint {url.path!r}"})
            return
        try:
            wait_seconds = self._parse_wait(url.query)
            body = self._parse_json_body(raw)
            if parts == ["campaign"]:
                job = self._submit_campaign(body)
            elif parts == ["compress"]:
                job = self._submit_compress(body)
            else:
                job_type = body.get("type")
                if not isinstance(job_type, str):
                    raise ValueError('missing or non-string "type" field')
                params = body.get("params")
                if params is None:
                    params = {}
                if not isinstance(params, dict):
                    raise ValueError('"params" must be a JSON object')
                unknown = set(body) - {"type", "params", "deadline_s"}
                if unknown:
                    raise ValueError(f"unknown field(s) {sorted(unknown)}")
                job = self.server.pool.submit(
                    job_type, params, deadline_s=_parse_deadline(body)
                )
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return

        if wait_seconds is not None:
            job.wait(wait_seconds)
        finished = job.state.finished
        status = 200 if finished else 202
        self._send_json(status, job.to_dict(include_result=job.state is JobState.DONE))

    def _cancel_job(self, job_id: str) -> None:
        job = self.server.pool.cancel(job_id)
        if job is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
        elif job.state is JobState.CANCELLED:
            self._send_json(200, job.to_dict())
        else:
            self._send_json(
                409,
                {
                    **job.to_dict(),
                    "error": f"job {job_id!r} could not be cancelled "
                    f"(state: {job.state.value}; a job is cancellable only "
                    "until a worker picks it up)",
                },
            )

    def _list_jobs(self, query_string: str) -> dict:
        """``GET /jobs`` with optional ``state``/``digest``/``offset``/``limit``.

        ``digest=`` filters to the jobs with that exact content digest — the
        reconcile hook for a client whose submit timed out after the server
        accepted it (and the gateway's cross-node job lookup).
        """
        query = parse_qs(query_string)
        state: JobState | None = None
        if "state" in query:
            try:
                state = JobState(query["state"][0])
            except ValueError:
                choices = sorted(s.value for s in JobState)
                raise _HTTPError(
                    400, f'invalid "state" {query["state"][0]!r}; one of {choices}'
                ) from None
        offset = self._parse_non_negative_int(query, "offset", 0)
        limit = self._parse_non_negative_int(query, "limit", None)
        jobs = self.server.pool.store.jobs(state=state)
        if "digest" in query:
            digest = query["digest"][0]
            jobs = [job for job in jobs if job.digest == digest]
        window = jobs[offset:] if limit is None else jobs[offset:offset + limit]
        return {
            "jobs": [job.to_dict() for job in window],
            "total": len(jobs),
            "offset": offset,
            "limit": limit,
        }

    @staticmethod
    def _parse_non_negative_int(query: dict, key: str, default):
        if key not in query:
            return default
        try:
            value = int(query[key][0])
        except ValueError:
            raise _HTTPError(400, f'invalid "{key}" value {query[key][0]!r}') from None
        if value < 0:
            raise _HTTPError(400, f'"{key}" must be >= 0, got {value}')
        return value

    def _warehouse_connection(self):
        """Open the configured warehouse read-only, or fail with an envelope.

        A fresh connection per request: :mod:`sqlite3` connections are not
        shareable across handler threads, and read-only open is cheap.  No
        warehouse configured (or none ingested yet) answers 503 — the server
        is fine, the analytics backend just is not there.
        """
        from .. import warehouse

        path = self.server.warehouse_path
        if path is None:
            raise _HTTPError(
                503, "no warehouse configured; start the server with --warehouse PATH"
            )
        try:
            return warehouse.connect_readonly(path)
        except FileNotFoundError:
            raise _HTTPError(
                503,
                f"warehouse database {path} does not exist yet; "
                "run `repro warehouse ingest` first",
            ) from None
        except warehouse.SchemaError as error:
            raise _HTTPError(500, str(error)) from None

    def _list_results(self, query_string: str) -> dict:
        """``GET /v1/results``: filtered warehouse rows, paginated like /v1/jobs.

        Query parameters: repeatable ``where=NAME OP VALUE`` filters,
        ``sort``/``order`` (``asc``/``desc``), ``offset``/``limit``, and an
        optional comma-separated ``columns`` restriction.  Bad parameters
        answer 400 with the standard error envelope.
        """
        from .. import warehouse

        query = parse_qs(query_string)
        unknown = set(query) - {"where", "sort", "order", "offset", "limit", "columns"}
        if unknown:
            raise _HTTPError(400, f"unknown query parameter(s) {sorted(unknown)}")
        order = query.get("order", ["asc"])[0]
        if order not in ("asc", "desc"):
            raise _HTTPError(400, f'invalid "order" {order!r}; one of ["asc", "desc"]')
        offset = self._parse_non_negative_int(query, "offset", 0)
        limit = self._parse_non_negative_int(query, "limit", None)
        columns = None
        if "columns" in query:
            columns = [c.strip() for c in query["columns"][0].split(",") if c.strip()]
            if not columns:
                raise _HTTPError(400, '"columns" must name at least one column')
        try:
            filters = warehouse.parse_filters(query.get("where", []))
        except warehouse.QueryError as error:
            raise _HTTPError(400, str(error)) from None
        conn = self._warehouse_connection()
        try:
            rows, total = warehouse.query_cells(
                conn,
                filters,
                sort=query.get("sort", [None])[0],
                descending=order == "desc",
                offset=offset,
                limit=limit,
                columns=columns,
            )
        except warehouse.QueryError as error:
            raise _HTTPError(400, str(error)) from None
        finally:
            conn.close()
        return {"results": rows, "total": total, "offset": offset, "limit": limit}

    def _send_result_detail(self, digest: str) -> None:
        """``GET /v1/results/<digest>``: one cell's full warehouse record."""
        from .. import warehouse

        conn = self._warehouse_connection()
        try:
            record = warehouse.cell_detail(conn, digest)
        finally:
            conn.close()
        if record is None:
            self._send_json(404, {"error": f"no such result {digest!r}"})
        else:
            self._send_json(200, record)

    def _submit_campaign(self, body: dict):
        """Validate and enqueue one ``POST /campaign`` request."""
        params, deadline_s = canonicalize_campaign(body, self.server.pool.registry)
        return self.server.pool.submit("campaign", params, deadline_s=deadline_s)

    def _submit_compress(self, body: dict):
        """Validate and enqueue one ``POST /v1/compress`` request.

        Validation happens in :func:`canonicalize_compress`, so an unknown
        codec or a parameter typo is a 400 on the request instead of a FAILED
        job.
        """
        submission, deadline_s = canonicalize_compress(body)
        return self.server.pool.submit(
            "codec_compress", submission, deadline_s=deadline_s
        )

    @staticmethod
    def _parse_wait(query_string: str) -> float | None:
        """Parse ``?wait=<seconds>``; invalid values are a client error."""
        query = parse_qs(query_string)
        if "wait" not in query:
            return None
        try:
            wait_seconds = float(query["wait"][0])
        except (TypeError, ValueError):
            raise ValueError(f'invalid "wait" value {query["wait"][0]!r}') from None
        if math.isnan(wait_seconds):
            raise ValueError('"wait" must not be NaN')
        return min(max(wait_seconds, 0.0), MAX_WAIT_SECONDS)


class ReproServer(ThreadingHTTPServer):
    """HTTP server owning the registry, cache, worker pool, and journal."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: ScenarioRegistry,
        cache: ResultCache,
        max_workers: int = 2,
        use_processes: bool = False,
        verbose: bool = False,
        max_queued: int | None = None,
        journal: JobJournal | None = None,
        trace_log: TraceLog | None = None,
        warehouse_path: str | None = None,
    ):
        super().__init__(address, _RequestHandler)
        self.registry = registry
        self.journal = journal
        #: Readiness state surfaced by ``GET /v1/readyz``: not ready until
        #: journal replay finished, and never again once a drain began.
        self.ready = False
        self.draining = False
        #: Where ``GET /v1/results`` reads from (read-only); ``None`` -> 503.
        self.warehouse_path = warehouse_path
        # Spans already flow to the process-wide in-memory ring; a trace log
        # additionally persists them as JSONL next to the journal.
        self.recorder = obs_trace.get_recorder()
        self.trace_log = trace_log
        if trace_log is not None:
            self.recorder.add_sink(trace_log)
        self.pool = WorkerPool(
            registry,
            cache=cache,
            max_workers=max_workers,
            use_processes=use_processes,
            max_queued=max_queued,
            journal=journal,
        )
        self.replay_stats: dict | None = None
        if journal is not None:
            self.replay_stats = journal.replay(self.pool)
        self.ready = True
        self.started_at = time.time()
        self.verbose = verbose
        self._serving = False

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def _stop_listening(self) -> None:
        # BaseServer.shutdown() waits on an event that only serve_forever()
        # sets on exit; calling it on a server that never served (e.g. the
        # CLI's failed-registration path) would block forever.
        if self._serving:
            self.shutdown()
        self.server_close()

    def begin_drain(self) -> None:
        """Flip ``GET /v1/readyz`` to 503 ahead of a graceful shutdown.

        Called by the CLI's signal handler *before* the listener stops, so a
        registry or load balancer polling readyz sees "draining" while the
        node still answers, instead of a hard connection refusal.
        """
        self.draining = True

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        ``wait=False`` abandons in-flight jobs instead of draining them
        (the CLI uses this so Ctrl-C exits promptly).
        """
        self._stop_listening()
        self.pool.shutdown(wait=wait)
        if self.journal is not None:
            self.journal.close()
        if self.trace_log is not None:
            self.recorder.remove_sink(self.trace_log)

    def graceful_close(self) -> dict:
        """SIGTERM path: drain what is running, requeue-by-journal the rest.

        Stops accepting new connections, lets already-running jobs finish,
        cancels still-queued futures (those jobs stay QUEUED — with a journal
        attached their submit lines carry no finish line, so the next start
        re-enqueues them), then flushes and closes the journal and trace log.
        Returns ``{"inflight": ..., "drained": ..., "requeued": ...}`` so the
        CLI can report what happened to in-flight work.
        """
        self.draining = True
        with self.pool._lock:
            inflight = len(self.pool._inflight)
        self._stop_listening()
        self.pool.shutdown(wait=True, cancel_pending=True)
        counts = self.pool.store.counts()
        requeued = counts.get("queued", 0) + counts.get("running", 0)
        if self.journal is not None:
            self.journal.close()
        if self.trace_log is not None:
            self.recorder.remove_sink(self.trace_log)
        return {
            "inflight": inflight,
            "drained": max(inflight - requeued, 0),
            "requeued": requeued,
            "journaled": self.journal is not None,
        }


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    registry: ScenarioRegistry | None = None,
    cache: ResultCache | None = None,
    max_workers: int = 2,
    cache_size: int = 256,
    cache_dir: str | None = None,
    use_processes: bool = False,
    verbose: bool = False,
    max_queued: int | None = None,
    journal_dir: str | None = None,
    warehouse_path: str | None = None,
) -> ReproServer:
    """Build a ready-to-serve :class:`ReproServer` (``port=0`` -> ephemeral).

    ``use_processes=True`` runs jobs on worker processes (the compression
    workloads are partly GIL-bound); process workers rebuild the *default*
    registry, so combine it with a custom ``registry`` only if that registry
    is the default one.

    ``journal_dir`` makes the service durable: jobs are journaled to
    ``<journal_dir>/journal.jsonl`` and replayed on startup, and — unless an
    explicit ``cache``/``cache_dir`` says otherwise — cached results persist
    under ``<journal_dir>/cache`` so replayed jobs keep their payloads.
    Finished trace spans are appended to ``<journal_dir>/trace.jsonl``
    alongside it.

    ``warehouse_path`` points ``GET /v1/results`` at a results warehouse
    (read-only); with a journal but no explicit path it defaults to
    ``<journal_dir>/warehouse.sqlite``, so ``repro warehouse ingest`` into a
    node's journal directory is immediately queryable from that node.
    """
    if registry is None:
        registry = build_default_registry()
    journal = JobJournal(journal_dir) if journal_dir is not None else None
    trace_log = (
        TraceLog(journal.directory / "trace.jsonl") if journal is not None else None
    )
    if cache is None:
        if cache_dir is None and journal is not None:
            cache_dir = str(journal.directory / "cache")
        cache = ResultCache(max_entries=cache_size, directory=cache_dir)
    if warehouse_path is None and journal is not None:
        warehouse_path = str(journal.directory / "warehouse.sqlite")
    return ReproServer(
        (host, port),
        registry,
        cache,
        max_workers=max_workers,
        use_processes=use_processes,
        verbose=verbose,
        max_queued=max_queued,
        journal=journal,
        trace_log=trace_log,
        warehouse_path=warehouse_path,
    )
