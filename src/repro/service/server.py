"""Pure-stdlib HTTP/JSON API over the worker pool.

Built on ``http.server.ThreadingHTTPServer`` so the service needs nothing the
repository does not already depend on.  Endpoints:

========  =========================  ==============================================
Method    Path                       Meaning
========  =========================  ==============================================
GET       /health                    liveness + uptime + pool stats
GET       /scenarios                 the registry's job types and their parameters
GET       /cache/stats               cache hit/miss/eviction counters
GET       /jobs                      every job (summaries, no results)
GET       /jobs/<id>                 one job's status (no result)
GET       /jobs/<id>/result          finished job's full record incl. result
POST      /jobs                      submit ``{"type": ..., "params": {...}}``
POST      /campaign                  submit a declarative campaign spec
========  =========================  ==============================================

``POST /campaign`` accepts either a campaign spec object directly or
``{"spec": {...}, "jobs": N}``; the spec is validated before submission (bad
specs are a 400, not a failed job) and the job's result is the campaign's
aggregate report.

``POST /jobs?wait=<seconds>`` blocks (bounded) until the job finishes and then
includes the result — handy for synchronous clients; everyone else polls
``/jobs/<id>``.  Responses are strict JSON (no NaN), UTF-8 encoded.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .cache import ResultCache
from .jobs import JobState
from .registry import ScenarioRegistry, build_default_registry
from .workers import WorkerPool

__all__ = ["ReproServer", "create_server"]

#: Upper bound on ``?wait=`` so a client cannot pin a handler thread forever.
MAX_WAIT_SECONDS = 300.0


class _RequestHandler(BaseHTTPRequestHandler):
    server: "ReproServer"
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> bytes:
        """Always consume the request body: on a keep-alive connection,
        unread bytes would be parsed as the next request line."""
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _parse_json_body(self, raw: bytes) -> dict:
        if not raw:
            raise ValueError("empty request body; expected a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        pool = self.server.pool

        if parts == ["health"]:
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_seconds": time.time() - self.server.started_at,
                    "scenarios": len(self.server.registry),
                    "pool": pool.stats(),
                },
            )
        elif parts == ["scenarios"]:
            self._send_json(200, {"scenarios": self.server.registry.describe()})
        elif parts == ["cache", "stats"]:
            self._send_json(200, pool.cache.stats())
        elif parts == ["jobs"]:
            self._send_json(200, {"jobs": [job.to_dict() for job in pool.store.jobs()]})
        elif len(parts) in (2, 3) and parts[0] == "jobs":
            job = pool.store.get(parts[1])
            if job is None:
                self._send_json(404, {"error": f"no such job {parts[1]!r}"})
            elif len(parts) == 2:
                self._send_json(200, job.to_dict())
            elif parts[2] == "result":
                if not job.state.finished:
                    self._send_json(409, {"error": "job not finished", **job.to_dict()})
                else:
                    self._send_json(200, job.to_dict(include_result=True))
            else:
                self._send_json(404, {"error": f"no such endpoint {url.path!r}"})
        else:
            self._send_json(404, {"error": f"no such endpoint {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        raw = self._drain_body()
        parts = [part for part in url.path.split("/") if part]
        if parts not in (["jobs"], ["campaign"]):
            self._send_json(404, {"error": f"no such endpoint {url.path!r}"})
            return
        try:
            wait_seconds = self._parse_wait(url.query)
            body = self._parse_json_body(raw)
            if parts == ["campaign"]:
                job = self._submit_campaign(body)
            else:
                job_type = body.get("type")
                if not isinstance(job_type, str):
                    raise ValueError('missing or non-string "type" field')
                params = body.get("params")
                if params is None:
                    params = {}
                if not isinstance(params, dict):
                    raise ValueError('"params" must be a JSON object')
                job = self.server.pool.submit(job_type, params)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return

        if wait_seconds is not None:
            job.wait(wait_seconds)
        finished = job.state.finished
        status = 200 if finished else 202
        self._send_json(status, job.to_dict(include_result=job.state is JobState.DONE))

    def _submit_campaign(self, body: dict):
        """Validate and enqueue one ``POST /campaign`` request.

        The body is either the spec itself or ``{"spec": ..., "jobs": N}``;
        validation (including expansion against this pool's registry, which
        catches unknown scenarios and parameter typos) runs here so malformed
        specs fail the request, not the job.
        """
        from ..campaign import CampaignSpecError, expand_spec, parse_spec

        if "spec" in body:
            spec, jobs = body.get("spec"), body.get("jobs", 1)
            unknown = set(body) - {"spec", "jobs"}
            if unknown:
                raise ValueError(f"unknown campaign field(s) {sorted(unknown)}")
        else:
            spec, jobs = body, 1
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError('"jobs" must be a positive integer')
        try:
            expand_spec(parse_spec(spec), registry=self.server.pool.registry)
        except CampaignSpecError as error:
            raise ValueError(f"invalid campaign spec: {error}") from None
        return self.server.pool.submit("campaign", {"spec": spec, "jobs": jobs})

    @staticmethod
    def _parse_wait(query_string: str) -> float | None:
        """Parse ``?wait=<seconds>``; invalid values are a client error."""
        query = parse_qs(query_string)
        if "wait" not in query:
            return None
        try:
            wait_seconds = float(query["wait"][0])
        except (TypeError, ValueError):
            raise ValueError(f'invalid "wait" value {query["wait"][0]!r}') from None
        if math.isnan(wait_seconds):
            raise ValueError('"wait" must not be NaN')
        return min(max(wait_seconds, 0.0), MAX_WAIT_SECONDS)


class ReproServer(ThreadingHTTPServer):
    """HTTP server owning the registry, cache, and worker pool."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: ScenarioRegistry,
        cache: ResultCache,
        max_workers: int = 2,
        use_processes: bool = False,
        verbose: bool = False,
    ):
        super().__init__(address, _RequestHandler)
        self.registry = registry
        self.pool = WorkerPool(
            registry, cache=cache, max_workers=max_workers, use_processes=use_processes
        )
        self.started_at = time.time()
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        ``wait=False`` abandons in-flight jobs instead of draining them
        (the CLI uses this so Ctrl-C exits promptly).
        """
        self.shutdown()
        self.server_close()
        self.pool.shutdown(wait=wait)


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    registry: ScenarioRegistry | None = None,
    cache: ResultCache | None = None,
    max_workers: int = 2,
    cache_size: int = 256,
    cache_dir: str | None = None,
    use_processes: bool = False,
    verbose: bool = False,
) -> ReproServer:
    """Build a ready-to-serve :class:`ReproServer` (``port=0`` -> ephemeral).

    ``use_processes=True`` runs jobs on worker processes (the compression
    workloads are partly GIL-bound); process workers rebuild the *default*
    registry, so combine it with a custom ``registry`` only if that registry
    is the default one.
    """
    if registry is None:
        registry = build_default_registry()
    if cache is None:
        cache = ResultCache(max_entries=cache_size, directory=cache_dir)
    return ReproServer(
        (host, port),
        registry,
        cache,
        max_workers=max_workers,
        use_processes=use_processes,
        verbose=verbose,
    )
