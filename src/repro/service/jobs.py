"""Job records and the thread-safe job store.

A :class:`Job` tracks one submitted request through its lifecycle
(``queued -> running -> done | failed``) with wall-clock timestamps for the
API and monotonic (``time.perf_counter``) durations for the timing stats.
Completion is signalled through a ``threading.Event`` so HTTP handlers and
tests can block on a job without polling.
"""

from __future__ import annotations

import enum
import itertools
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Job", "JobState", "JobStore"]


class JobState(str, enum.Enum):
    """Lifecycle states of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted request and everything observed about it."""

    job_id: str
    job_type: str
    params: dict
    digest: str
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    queue_seconds: float | None = None
    run_seconds: float | None = None
    result: Any = field(default=None, repr=False)
    error: str | None = None
    cache_hit: bool = False
    dedup_count: int = 0
    #: Trace this job belongs to (minted at submit if no context was active)
    #: and the submitter's span it hangs under — the link that joins a
    #: ``job.run`` span to the HTTP request (or campaign cell) that caused it.
    trace_id: str | None = None
    parent_span_id: str | None = None
    #: Which worker executed the job (thread name, or "process-pool").
    worker: str | None = None
    #: Wall-clock budget from submission; expired jobs become
    #: ``FAILED: deadline`` (enforced by the worker pool's deadline timers).
    deadline_s: float | None = None
    #: Set when the job is cancelled or its deadline expires; long-running
    #: cooperative job bodies poll it (``repro.service.workers.job_cancelled``)
    #: to stop early instead of computing a result nobody will read.
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    _submitted_pc: float = field(default_factory=time.perf_counter, repr=False, compare=False)
    _started_pc: float | None = field(default=None, repr=False, compare=False)
    _done_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    _transition_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Lifecycle transitions (called by the worker pool)
    # ------------------------------------------------------------------ #

    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_at = time.time()
        self._started_pc = time.perf_counter()
        self.queue_seconds = self._started_pc - self._submitted_pc

    def backfill_running(self, run_seconds: float) -> None:
        """Retroactively record a remote execution window.

        Process-pool workers run the job body in another process, where this
        object does not exist; the worker measures its own run duration and
        the completion callback replays it here just before ``mark_done`` /
        ``mark_failed``, so ``queue_seconds``/``run_seconds`` stay accurate
        (the job reads as QUEUED while remotely executing).
        """
        now_pc = time.perf_counter()
        self.state = JobState.RUNNING
        self._started_pc = now_pc - run_seconds
        self.started_at = time.time() - run_seconds
        self.queue_seconds = max(self._started_pc - self._submitted_pc, 0.0)

    def mark_done(self, result: Any, cache_hit: bool = False) -> bool:
        with self._transition_lock:
            if self.state.finished:
                return False
            self.result = result
            self.cache_hit = cache_hit
            self._finish(JobState.DONE)
        return True

    def mark_failed(self, error: str) -> bool:
        with self._transition_lock:
            if self.state.finished:
                return False
            self.error = error
            self._finish(JobState.FAILED)
        return True

    def mark_cancelled(self, reason: str = "cancelled by client") -> bool:
        with self._transition_lock:
            if self.state.finished:
                return False
            self.error = reason
            self._finish(JobState.CANCELLED)
        self.cancel_event.set()
        return True

    def _finish(self, state: JobState) -> None:
        """Terminal transition; callers hold ``_transition_lock``.

        Transitions are first-wins: a deadline timer and a worker completing
        the same job race, and exactly one of them may land the terminal
        state (the ``mark_*`` methods return whether *this* call did).
        """
        now_pc = time.perf_counter()
        self.state = state
        self.finished_at = time.time()
        if self._started_pc is not None:
            self.run_seconds = now_pc - self._started_pc
        elif self.cache_hit:
            # Cache hits never enter RUNNING: they finish at submit time.
            self.queue_seconds = 0.0
            self.run_seconds = now_pc - self._submitted_pc
        self._done_event.set()

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        return self._done_event.wait(timeout)

    def to_dict(self, include_result: bool = False) -> dict:
        """JSON-serializable view; the (possibly large) result is opt-in."""
        payload = {
            "job_id": self.job_id,
            "type": self.job_type,
            "params": self.params,
            "digest": self.digest,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "cache_hit": self.cache_hit,
            "dedup_count": self.dedup_count,
            "trace_id": self.trace_id,
            "worker": self.worker,
            "deadline_s": self.deadline_s,
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobStore:
    """Thread-safe registry of the jobs the service has seen.

    Finished jobs (and their result payloads) are kept as history up to
    ``max_finished`` entries, oldest evicted first, so a long-running service
    does not accumulate every result ever computed; queued/running jobs are
    never evicted.  Results stay reachable through the cache after eviction.
    """

    def __init__(self, max_finished: int = 1024) -> None:
        if max_finished <= 0:
            raise ValueError("max_finished must be positive")
        self.max_finished = max_finished
        self._jobs: dict[str, Job] = {}
        self._lock = threading.RLock()
        self._counter = itertools.count(1)

    def create(self, job_type: str, params: dict, digest: str) -> Job:
        with self._lock:
            self._evict_finished()
            job = Job(
                job_id=f"job-{next(self._counter):06d}",
                job_type=job_type,
                params=params,
                digest=digest,
            )
            self._jobs[job.job_id] = job
            return job

    def restore(self, job_id: str, job_type: str, params: dict, digest: str) -> Job:
        """Re-create a job under its historical id (journal replay).

        The id counter is advanced past the restored id so jobs created after
        a replay never collide with pre-restart ones.
        """
        with self._lock:
            if job_id in self._jobs:
                raise ValueError(f"job id {job_id!r} already present")
            self._evict_finished()
            job = Job(job_id=job_id, job_type=job_type, params=params, digest=digest)
            self._jobs[job_id] = job
            match = re.fullmatch(r"job-(\d+)", job_id)
            if match:
                floor = int(match.group(1))
                self._counter = itertools.count(max(next(self._counter), floor + 1))
            return job

    def _evict_finished(self) -> None:
        overflow = len(self._jobs) + 1 - self.max_finished
        if overflow <= 0:
            return
        for job_id in [
            job.job_id for job in self._jobs.values() if job.state.finished
        ][:overflow]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, state: JobState | None = None) -> list[Job]:
        """All jobs in submission order, optionally filtered by state."""
        with self._lock:
            jobs = list(self._jobs.values())
        if state is not None:
            jobs = [job for job in jobs if job.state is state]
        return jobs

    def counts(self) -> dict[str, int]:
        """Number of jobs per state (always reporting every state)."""
        counts = {state.value: 0 for state in JobState}
        for job in self.jobs():
            counts[job.state.value] += 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
