"""Service-layer re-export of the content-hash result cache.

The implementation moved to :mod:`repro.core.cache` so the in-process
artifact memo (:mod:`repro.core.memo`) can reuse it without the core layer
depending on the service layer; this module keeps the historical import path
working for service code and its tests.
"""

from __future__ import annotations

from ..core.cache import MISSING, CacheStats, ResultCache

__all__ = ["MISSING", "CacheStats", "ResultCache"]
