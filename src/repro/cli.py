"""Command-line interface: ``python -m repro.cli <command>``.

Lets a user regenerate any paper table/figure, run the ablations, or print the
benchmark-suite summary without writing Python.  Every command prints the same
text tables the experiment functions return.

Examples::

    python -m repro.cli list
    python -m repro.cli figure3
    python -m repro.cli figure12 --models ResNet-50 ViT-Small
    python -m repro.cli ablations
    python -m repro.cli all --fast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .eval import experiments
from .eval.ablations import run_all_ablations
from .eval.benchmarks import BENCHMARK_MODEL_NAMES, BenchmarkSuite

__all__ = ["main", "EXPERIMENT_COMMANDS"]


#: Experiment name -> (callable accepting optional models/suite kwargs, takes_models)
EXPERIMENT_COMMANDS: dict[str, tuple[Callable[..., dict], bool]] = {
    "figure1": (experiments.figure1_motivation, False),
    "figure3": (experiments.figure3_sparsity_comparison, True),
    "figure6": (experiments.figure6_kl_divergence, False),
    "table1": (experiments.table1_models, False),
    "figure11": (experiments.figure11_accuracy, True),
    "table2": (experiments.table2_ant_comparison, False),
    "table3": (experiments.table3_ptq_comparison, False),
    "figure12": (experiments.figure12_speedup, True),
    "figure13": (experiments.figure13_energy, True),
    "figure14": (experiments.figure14_load_balance, True),
    "figure15": (experiments.figure15_stall_breakdown, True),
    "table4": (experiments.table4_pe_design_space, False),
    "table5": (experiments.table5_pe_comparison, False),
    "table6": (experiments.table6_olive_pe, False),
    "figure16": (experiments.figure16_pareto, False),
    "figure17": (experiments.figure17_llm, False),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures of the BBS (MICRO 2024) paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name in EXPERIMENT_COMMANDS:
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument("--models", nargs="+", choices=BENCHMARK_MODEL_NAMES, default=None)
        sub.add_argument("--seed", type=int, default=0)

    ablation_parser = subparsers.add_parser("ablations", help="run the design-choice ablations")
    ablation_parser.add_argument("--seed", type=int, default=0)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--fast", action="store_true", help="use reduced model subsets")
    all_parser.add_argument("--seed", type=int, default=0)
    return parser


def _run_single(name: str, args: argparse.Namespace) -> int:
    function, takes_models = EXPERIMENT_COMMANDS[name]
    kwargs: dict = {}
    if takes_models and getattr(args, "models", None):
        kwargs["models"] = args.models
    if "seed" in function.__code__.co_varnames:
        kwargs["seed"] = args.seed
    if "suite" in function.__code__.co_varnames:
        kwargs["suite"] = BenchmarkSuite(seed=args.seed)
    start = time.time()
    result = function(**kwargs)
    print(result["table"])
    print(f"[{name} regenerated in {time.time() - start:.1f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("available experiments:")
        for name in EXPERIMENT_COMMANDS:
            print(f"  {name}")
        print("  ablations")
        print("  all")
        return 0

    if args.command == "ablations":
        for name, result in run_all_ablations(seed=args.seed).items():
            print(result["table"])
        return 0

    if args.command == "all":
        results = experiments.run_all(fast=args.fast, seed=args.seed)
        for name, result in results.items():
            print(result["table"])
        return 0

    return _run_single(args.command, args)


if __name__ == "__main__":
    sys.exit(main())
