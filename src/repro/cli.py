"""Command-line interface: ``python -m repro.cli <command>``.

Lets a user regenerate any paper table/figure, run the ablations, print the
benchmark-suite summary, or serve the whole harness over HTTP without writing
Python.  Every experiment command prints the same text tables the experiment
functions return, or — with ``--json`` — a machine-readable payload (the same
one the service layer caches and ships).

Examples::

    python -m repro.cli list
    python -m repro.cli figure3
    python -m repro.cli figure12 --models ResNet-50 ViT-Small --jobs 4
    python -m repro.cli table5 --json
    python -m repro.cli ablations
    python -m repro.cli all --fast --jobs 4
    python -m repro.cli serve --port 8000 --workers 4 --processes
    python -m repro.cli campaign run examples/campaign_pruning_grid.json --jobs 2
    python -m repro.cli campaign resume runs/pruning-grid-0123456789ab
    python -m repro.cli campaign report runs/pruning-grid-0123456789ab
    python -m repro.cli warehouse ingest runs/pruning-grid-0123456789ab --db wh.sqlite
    python -m repro.cli warehouse query --db wh.sqlite --where "effective_bits<4" --sort mse
    python -m repro.cli warehouse pareto --db wh.sqlite -x effective_bits -y mse
    python -m repro.cli codec list
    python -m repro.cli codec run microscaling --param bits=4 --rows 64
    python -m repro.cli codec run pipeline --stages \
        '[{"codec": "prune"}, {"codec": "ptq", "params": {"bits": 6}}]'
    python -m repro.cli obs metrics --url http://localhost:8000
    python -m repro.cli obs trace job-000001 --url http://localhost:8000
    python -m repro.cli obs summary runs/pruning-grid-0123456789ab
    python -m repro.cli chaos points
    python -m repro.cli chaos plan '{"rules": [{"point": "journal.append", "probability": 0.2}]}'
    python -m repro.cli chaos proxy --upstream-port 8000 --port 8001 --reset-p 0.05
    python -m repro.cli journal compact runs/journal-dir

``repro serve`` shuts down gracefully on SIGTERM/SIGINT: it stops accepting
requests, drains running jobs, leaves queued jobs journaled for the next
start, and exits 0.  A second signal aborts immediately.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from .eval import experiments
from .eval.ablations import run_all_ablations
from .eval.benchmarks import BENCHMARK_MODEL_NAMES, BenchmarkSuite
from .eval.experiments import json_payload
from .obs import timed

__all__ = ["main", "run_experiment", "EXPERIMENT_COMMANDS"]


#: Experiment name -> (callable accepting optional models/suite kwargs, takes_models)
EXPERIMENT_COMMANDS: dict[str, tuple[Callable[..., dict], bool]] = {
    "figure1": (experiments.figure1_motivation, False),
    "figure3": (experiments.figure3_sparsity_comparison, True),
    "figure6": (experiments.figure6_kl_divergence, False),
    "table1": (experiments.table1_models, False),
    "figure11": (experiments.figure11_accuracy, True),
    "table2": (experiments.table2_ant_comparison, False),
    "table3": (experiments.table3_ptq_comparison, False),
    "figure12": (experiments.figure12_speedup, True),
    "figure13": (experiments.figure13_energy, True),
    "figure14": (experiments.figure14_load_balance, True),
    "figure15": (experiments.figure15_stall_breakdown, True),
    "table4": (experiments.table4_pe_design_space, False),
    "table5": (experiments.table5_pe_comparison, False),
    "table6": (experiments.table6_olive_pe, False),
    "figure16": (experiments.figure16_pareto, False),
    "figure17": (experiments.figure17_llm, False),
}


def run_experiment(
    name: str, models: list[str] | None = None, seed: int = 0, jobs: int = 1
) -> dict:
    """Run one named experiment with only the kwargs its function accepts.

    The single entry point shared by the CLI commands and the service
    registry, so both produce byte-identical results for identical inputs.
    ``jobs`` sets the process-pool width for the suite-driven experiments
    (the accelerator sweeps of Figures 12-15); it never changes results.
    """
    function, takes_models = EXPERIMENT_COMMANDS[name]
    kwargs: dict = {}
    if takes_models and models:
        kwargs["models"] = list(models)
    if "seed" in function.__code__.co_varnames:
        kwargs["seed"] = seed
    if "suite" in function.__code__.co_varnames:
        kwargs["suite"] = BenchmarkSuite(seed=seed, jobs=jobs)
    return function(**kwargs)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures of the BBS (MICRO 2024) paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name in EXPERIMENT_COMMANDS:
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument("--models", nargs="+", choices=BENCHMARK_MODEL_NAMES, default=None)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--json", action="store_true", help="emit JSON instead of tables")
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="process-pool width for accelerator sweeps (results unchanged)",
        )

    ablation_parser = subparsers.add_parser("ablations", help="run the design-choice ablations")
    ablation_parser.add_argument("--seed", type=int, default=0)
    ablation_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--fast", action="store_true", help="use reduced model subsets")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")
    all_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run experiments on a process pool of this width (results unchanged)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="serve the experiment harness over HTTP (JSON API)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8000)
    serve_parser.add_argument("--workers", type=int, default=2, help="worker threads")
    serve_parser.add_argument(
        "--processes",
        action="store_true",
        help="run jobs on worker processes instead of threads "
        "(sidesteps the GIL for compression-heavy jobs)",
    )
    serve_parser.add_argument("--cache-size", type=int, default=256, help="in-memory LRU entries")
    serve_parser.add_argument(
        "--cache-dir", default=None, help="persist cached results to this directory"
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="journal every job to DIR/journal.jsonl and replay it on restart "
        "(also persists the result cache under DIR/cache unless --cache-dir "
        "says otherwise)",
    )
    serve_parser.add_argument(
        "--warehouse",
        default=None,
        metavar="PATH",
        help="serve GET /v1/results from this warehouse database "
        "(default: DIR/warehouse.sqlite when --journal DIR is given)",
    )
    serve_parser.add_argument(
        "--max-queued",
        type=int,
        default=None,
        metavar="N",
        help="reject new jobs with 429 once N are queued/running (backpressure)",
    )
    serve_parser.add_argument("--verbose", action="store_true", help="log every request")
    serve_parser.add_argument(
        "--register",
        default=None,
        metavar="URL",
        help="register with this `repro gateway` and heartbeat; the gateway "
        "then routes work here by content digest and replays this node's "
        "unfinished jobs elsewhere if it dies",
    )
    serve_parser.add_argument(
        "--node-url",
        default=None,
        metavar="URL",
        help="the URL the gateway should reach this node at "
        "(default: http://<host>:<port> as served)",
    )
    serve_parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="gateway heartbeat/journal-flush period (default: %(default)s)",
    )

    gateway_parser = subparsers.add_parser(
        "gateway",
        help="front-door gateway: digest routing, node registry, journal "
        "replication + failover, tenant quotas",
    )
    gateway_parser.add_argument("--host", default="127.0.0.1")
    gateway_parser.add_argument("--port", type=int, default=8100)
    gateway_parser.add_argument(
        "--state",
        default=None,
        metavar="DIR",
        help="replica-journal directory (default: an ephemeral temp dir — "
        "failover state does not survive a gateway restart without this)",
    )
    gateway_parser.add_argument(
        "--keys",
        default=None,
        metavar="FILE",
        help="tenant keys file enabling Bearer auth + per-tenant quotas "
        "(see docs/gateway.md for the format)",
    )
    gateway_parser.add_argument(
        "--suspect-after",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="missed-heartbeat window before a node stops receiving new work",
    )
    gateway_parser.add_argument(
        "--dead-after",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="silence before a node is declared dead and its unfinished "
        "jobs are replayed onto survivors",
    )
    gateway_parser.add_argument(
        "--node-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request timeout when proxying to a node",
    )
    gateway_parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="declarative experiment campaigns (run/resume/report)"
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command", required=True)

    def _add_ingest_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--ingest",
            default=None,
            metavar="DB",
            help="when the report is written, also ingest the run into this "
            "warehouse database (idempotent by digest)",
        )

    def _add_execution_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=int, default=1, help="worker-pool width")
        sub.add_argument(
            "--processes",
            action="store_true",
            help="run cells on worker processes instead of threads",
        )
        sub.add_argument(
            "--shard",
            default=None,
            metavar="I/N",
            help="run only this shard of every grid (e.g. 0/4); all shards "
            "may share one --run-dir",
        )
        sub.add_argument(
            "--max-jobs",
            type=int,
            default=None,
            help="stop after completing this many new cells (resume later)",
        )

    campaign_run = campaign_sub.add_parser("run", help="expand and run a campaign spec")
    campaign_run.add_argument("spec", help="path to a campaign spec (JSON)")
    campaign_run.add_argument(
        "--run-dir",
        default=None,
        help="checkpoint/report directory (default: runs/<name>-<digest12>)",
    )
    _add_execution_flags(campaign_run)
    _add_ingest_flag(campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="resume an interrupted campaign from its run directory"
    )
    campaign_resume.add_argument("run_dir", help="run directory of the interrupted campaign")
    _add_execution_flags(campaign_resume)
    _add_ingest_flag(campaign_resume)

    campaign_report = campaign_sub.add_parser(
        "report", help="(re)build report.json/report.csv from the checkpoints"
    )
    campaign_report.add_argument("run_dir", help="run directory of a completed campaign")
    campaign_report.add_argument(
        "--json", action="store_true", help="print the aggregate report to stdout"
    )
    _add_ingest_flag(campaign_report)

    campaign_dispatch = campaign_sub.add_parser(
        "dispatch",
        help="fan a campaign's cells out across remote `repro serve` nodes "
        "(same checkpoints and byte-identical report as a local run)",
    )
    campaign_dispatch.add_argument("spec", help="path to a campaign spec (JSON)")
    campaign_dispatch.add_argument(
        "--nodes",
        nargs="+",
        default=None,
        metavar="URL",
        help="service endpoints, e.g. http://host-a:8000 http://host-b:8000",
    )
    campaign_dispatch.add_argument(
        "--gateway",
        default=None,
        metavar="URL",
        help="dispatch through a `repro gateway` front door instead of "
        "--nodes: the gateway routes each cell by content digest and "
        "handles node failover transparently",
    )
    campaign_dispatch.add_argument(
        "--api-key",
        default=None,
        metavar="KEY",
        help="tenant API key sent as `Authorization: Bearer` "
        "(gateways with a --keys file require one)",
    )
    campaign_dispatch.add_argument(
        "--run-dir",
        default=None,
        help="checkpoint/report directory (default: runs/<name>-<digest12>); "
        "re-dispatching into the same directory resumes",
    )
    campaign_dispatch.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="cells held on each node at once (backpressure-aware window)",
    )
    campaign_dispatch.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        help="seconds between remote status sweeps",
    )
    _add_ingest_flag(campaign_dispatch)

    warehouse_parser = subparsers.add_parser(
        "warehouse", help="results warehouse: ingest runs, query, Pareto frontiers"
    )
    warehouse_sub = warehouse_parser.add_subparsers(dest="warehouse_command", required=True)

    warehouse_ingest = warehouse_sub.add_parser(
        "ingest",
        help="ingest campaign run dirs / checkpoint files / service node dirs "
        "into a warehouse database (idempotent by digest)",
    )
    warehouse_ingest.add_argument("paths", nargs="+", help="sources to ingest")
    warehouse_ingest.add_argument(
        "--db", default="warehouse.sqlite", metavar="PATH",
        help="warehouse database (created if missing; default: %(default)s)",
    )
    warehouse_ingest.add_argument("--json", action="store_true", help="emit the stats as JSON")

    def _add_query_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db", default="warehouse.sqlite", metavar="PATH",
            help="warehouse database to query (default: %(default)s)",
        )
        sub.add_argument(
            "--where",
            action="append",
            default=[],
            metavar="EXPR",
            help="filter 'NAME OP VALUE' (repeatable, ANDed); NAME is an "
            "identity column or metric leaf, OP one of = != < <= > >=",
        )
        sub.add_argument(
            "--format",
            choices=("table", "csv", "json"),
            default="table",
            help="output format (default: %(default)s)",
        )
        sub.add_argument(
            "--columns",
            default=None,
            metavar="A,B,C",
            help="columns to emit (default: identity + referenced metrics "
            "for tables, every column otherwise)",
        )

    warehouse_query = warehouse_sub.add_parser(
        "query", help="filter/sort warehouse cells and print them"
    )
    _add_query_flags(warehouse_query)
    warehouse_query.add_argument("--sort", default=None, metavar="COL", help="sort column")
    warehouse_query.add_argument("--desc", action="store_true", help="sort descending")
    warehouse_query.add_argument("--limit", type=int, default=None, metavar="N")
    warehouse_query.add_argument("--offset", type=int, default=0, metavar="N")

    warehouse_pareto = warehouse_sub.add_parser(
        "pareto", help="Pareto frontier of the matched cells over two metrics"
    )
    _add_query_flags(warehouse_pareto)
    warehouse_pareto.add_argument("-x", required=True, metavar="COL", help="x-axis metric")
    warehouse_pareto.add_argument("-y", required=True, metavar="COL", help="y-axis metric")
    warehouse_pareto.add_argument(
        "--max-x", action="store_true", help="maximize x instead of minimizing"
    )
    warehouse_pareto.add_argument(
        "--max-y", action="store_true", help="maximize y instead of minimizing"
    )

    codec_parser = subparsers.add_parser(
        "codec", help="run or list the composable compression codecs"
    )
    codec_sub = codec_parser.add_subparsers(dest="codec_command", required=True)

    codec_list = codec_sub.add_parser("list", help="list registered codecs + schemas")
    codec_list.add_argument("--json", action="store_true", help="emit the full schemas")

    codec_run = codec_sub.add_parser(
        "run", help="compress one synthetic Gaussian matrix with a codec"
    )
    codec_run.add_argument("codec", help="codec name (see `repro codec list`)")
    codec_run.add_argument("--rows", type=int, default=128)
    codec_run.add_argument("--cols", type=int, default=1024)
    codec_run.add_argument("--seed", type=int, default=0)
    codec_run.add_argument("--scale", type=float, default=1.0)
    codec_run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="codec parameter (repeatable; VALUE parsed as JSON, else string)",
    )
    codec_run.add_argument(
        "--stages",
        default=None,
        metavar="JSON",
        help="pipeline stage list (JSON text or a path to a JSON file); "
        "implies the pipeline codec",
    )
    codec_run.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    obs_parser = subparsers.add_parser(
        "obs", help="observability: scrape metrics, inspect traces, profile runs"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    obs_metrics = obs_sub.add_parser(
        "metrics", help="print metrics (Prometheus text, or --json)"
    )
    obs_metrics.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="scrape GET /v1/metrics from a `repro serve` node "
        "(default: this process's registry)",
    )
    obs_metrics.add_argument("--json", action="store_true", help="emit JSON instead of text")

    obs_trace = obs_sub.add_parser(
        "trace", help="print the span tree of a service job"
    )
    obs_trace.add_argument("job_id", help="job id, e.g. job-000001")
    obs_trace.add_argument(
        "--url",
        default="http://127.0.0.1:8000",
        metavar="URL",
        help="`repro serve` node holding the job (default: %(default)s)",
    )
    obs_trace.add_argument("--json", action="store_true", help="emit the raw span tree")

    obs_summary = obs_sub.add_parser(
        "summary", help="per-grid latency table for a campaign run directory"
    )
    obs_summary.add_argument("run_dir", help="campaign run directory (with checkpoints)")
    obs_summary.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    chaos_parser = subparsers.add_parser(
        "chaos", help="fault injection: list points, validate plans, run a proxy"
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command", required=True)

    chaos_points = chaos_sub.add_parser(
        "points", help="list the named injection points a plan can target"
    )
    chaos_points.add_argument("--json", action="store_true", help="emit JSON")

    chaos_plan = chaos_sub.add_parser(
        "plan",
        help="validate a chaos plan spec (inline JSON, @file, or a file path) "
        "— the same format the REPRO_CHAOS environment variable takes",
    )
    chaos_plan.add_argument("spec", help="plan spec: inline JSON, @path, or path")
    chaos_plan.add_argument("--json", action="store_true", help="emit the parsed rules as JSON")

    chaos_proxy = chaos_sub.add_parser(
        "proxy",
        help="run a fault-injecting TCP proxy in front of a `repro serve` node",
    )
    chaos_proxy.add_argument("--upstream-port", type=int, required=True)
    chaos_proxy.add_argument("--upstream-host", default="127.0.0.1")
    chaos_proxy.add_argument("--host", default="127.0.0.1", help="listen host")
    chaos_proxy.add_argument("--port", type=int, default=0, help="listen port (0 = ephemeral)")
    chaos_proxy.add_argument("--reset-p", type=float, default=0.0, help="P(connection reset)")
    chaos_proxy.add_argument("--latency-p", type=float, default=0.0, help="P(added latency)")
    chaos_proxy.add_argument("--latency-s", type=float, default=0.05, help="latency to add (s)")
    chaos_proxy.add_argument("--error-p", type=float, default=0.0, help="P(forced error status)")
    chaos_proxy.add_argument(
        "--error-status", type=int, default=503, help="status for forced errors (429/5xx)"
    )
    chaos_proxy.add_argument("--truncate-p", type=float, default=0.0, help="P(truncated response)")
    chaos_proxy.add_argument("--seed", type=int, default=0, help="fault-roll RNG seed")

    journal_parser = subparsers.add_parser(
        "journal", help="job-journal maintenance (compaction)"
    )
    journal_sub = journal_parser.add_subparsers(dest="journal_command", required=True)
    journal_compact = journal_sub.add_parser(
        "compact",
        help="snapshot+truncate DIR/journal.jsonl: one submit (+ finish) line "
        "per job, oldest finished jobs beyond --keep-finished dropped",
    )
    journal_compact.add_argument("dir", help="journal directory (as given to serve --journal)")
    journal_compact.add_argument(
        "--keep-finished",
        type=int,
        default=None,
        metavar="N",
        help="finished jobs to keep (default: the job store's history bound)",
    )
    journal_compact.add_argument("--json", action="store_true", help="emit the stats as JSON")

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="run the static invariant checkers (lock order, digest purity, ...)",
        description="Run the repo's AST-based invariant checkers "
        "(repro.analysis) over source files or directories. Exit codes: "
        "0 = clean, 1 = unsuppressed findings, 2 = usage error "
        "(unknown checker id or missing path).",
    )
    analyze_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: %(default)s)",
    )
    analyze_parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated checker ids to run (default: every registered checker)",
    )
    analyze_parser.add_argument(
        "--ignore", metavar="IDS", help="comma-separated checker ids to skip"
    )
    analyze_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: %(default)s)",
    )
    analyze_parser.add_argument(
        "--list", action="store_true", help="list the registered checkers and exit"
    )
    analyze_parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by `# repro: ignore[...]` comments",
    )
    return parser


def _run_single(name: str, args: argparse.Namespace) -> int:
    # ``name`` ranges over EXPERIMENT_COMMANDS — a closed set, so the
    # operation label stays bounded despite the interpolation.
    with timed(f"experiment.{name}") as timer:  # repro: ignore[metric-labels]
        result = run_experiment(
            name,
            models=getattr(args, "models", None),
            seed=args.seed,
            jobs=getattr(args, "jobs", 1),
        )
    if args.json:
        print(json.dumps(json_payload(result), indent=2))
    else:
        print(result["table"])
        print(f"[{name} regenerated in {timer.seconds:.1f}s]")
    return 0


def _serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .chaos.plan import get_plan
    from .service.server import create_server

    server = create_server(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        cache_size=args.cache_size,
        cache_dir=args.cache_dir,
        use_processes=args.processes,
        verbose=args.verbose,
        max_queued=args.max_queued,
        journal_dir=args.journal,
        warehouse_path=args.warehouse,
    )
    # Graceful shutdown: the first SIGTERM/SIGINT unblocks serve_forever and
    # lets the drain below run; a second signal means "now" and aborts.
    # server.shutdown() must not be called on the thread inside
    # serve_forever() (it joins that loop — deadlock), and a signal handler
    # runs precisely there, so the handler hands it to a helper thread.
    # Installed before the "listening" banner: anything supervising this
    # process treats that line as "ready to signal".
    signals_seen = {"count": 0}

    def _on_signal(signum, frame):  # noqa: ARG001 - signal API
        signals_seen["count"] += 1
        if signals_seen["count"] > 1:
            os._exit(1)
        # Readiness goes false *before* the listener stops: a load balancer
        # (or the gateway) polling GET /v1/readyz sees "draining" while
        # in-flight work finishes.
        server.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    graceful = True
    for signame in ("SIGTERM", "SIGINT"):
        try:
            signal.signal(getattr(signal, signame), _on_signal)
        except (ValueError, OSError, AttributeError):
            graceful = False  # non-main thread or exotic platform

    host, port = server.server_address[0], server.port
    worker_kind = "processes" if args.processes else "threads"
    print(f"repro service listening on http://{host}:{port}")
    print(f"  scenarios: {len(server.registry)}  workers: {args.workers} {worker_kind}")
    if args.journal:
        replay = server.replay_stats or {}
        print(
            f"  journal: {server.journal.path} "
            f"(replayed {replay.get('replayed', 0)} job(s), "
            f"{replay.get('completed', 0)} done, {replay.get('requeued', 0)} requeued, "
            f"{replay.get('quarantined', 0)} corrupt line(s) quarantined)"
        )
    if args.max_queued is not None:
        print(f"  backpressure: 429 beyond {args.max_queued} unfinished job(s)")
    if server.warehouse_path is not None:
        print(f"  warehouse: GET /v1/results reads {server.warehouse_path}")
    chaos_plan = get_plan()
    if chaos_plan is not None:
        print(f"  chaos: REPRO_CHAOS active with {len(chaos_plan.rules)} rule(s)")
    print(
        "  endpoints: /v1/health /v1/scenarios /v1/codecs /v1/compress /v1/jobs "
        "/v1/results /v1/cache/stats /v1/metrics  "
        "(Ctrl-C / SIGTERM for graceful shutdown)"
    )
    agent = None
    if args.register:
        from .gateway import GatewayAgent
        from .service.client import ServiceError

        node_url = args.node_url or f"http://{host}:{port}"
        agent = GatewayAgent(
            args.register,
            node_url,
            server,
            heartbeat_interval=args.heartbeat_interval,
        )
        try:
            agent.start()
        except ServiceError as error:
            # A refused registration (registry skew, gateway down) must be
            # loud: an unregistered node receives no gateway traffic.
            print(f"error: gateway registration failed: {error}", file=sys.stderr)
            server.close(wait=False)
            return 1
        print(
            f"  gateway: registered as {agent.node_id} at {args.register} "
            f"(heartbeat every {args.heartbeat_interval:g}s)"
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        graceful = False
    finally:
        if agent is not None:
            agent.stop()
        if graceful:
            print("shutting down: draining running jobs ...")
            drain = server.graceful_close()
            requeue_note = (
                " (journaled; they re-run on next start)"
                if drain["journaled"] and drain["requeued"]
                else ""
            )
            print(
                f"shutdown complete: {drain['drained']} job(s) drained, "
                f"{drain['requeued']} requeued{requeue_note}"
            )
        else:
            server.close(wait=False)
    return 0


def _gateway(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .gateway import create_gateway

    try:
        server = create_gateway(
            host=args.host,
            port=args.port,
            state_dir=args.state,
            keys_file=args.keys,
            suspect_after=args.suspect_after,
            dead_after=args.dead_after,
            node_timeout=args.node_timeout,
            verbose=args.verbose,
        )
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    # Same two-stage signal contract as `repro serve`: first SIGTERM/SIGINT
    # drains (readyz goes 503, the listener stops), a second one aborts.
    signals_seen = {"count": 0}

    def _on_signal(signum, frame):  # noqa: ARG001 - signal API
        signals_seen["count"] += 1
        if signals_seen["count"] > 1:
            os._exit(1)
        server.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signame in ("SIGTERM", "SIGINT"):
        try:
            signal.signal(getattr(signal, signame), _on_signal)
        except (ValueError, OSError, AttributeError):
            pass  # non-main thread or exotic platform

    host, port = server.server_address[0], server.port
    print(f"repro gateway listening on http://{host}:{port}")
    print(
        f"  registry digest: {server.registry_digest[:12]}  "
        f"suspect/dead after: {args.suspect_after:g}s/{args.dead_after:g}s"
    )
    print(f"  replica state: {server.replicas.directory}")
    if server.quotas is not None:
        names = ", ".join(server.quotas.tenant_names)
        print(f"  tenants: {names} (Bearer auth required)")
    print(
        "  nodes register with: repro serve --register "
        f"http://{host}:{port}  (Ctrl-C / SIGTERM for graceful shutdown)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        counts = server.nodes.counts()
        server.close()
        print(
            f"gateway shut down ({counts.get('healthy', 0)} healthy node(s) "
            "left registered; they keep serving direct traffic)"
        )
    return 0


def _chaos(args: argparse.Namespace) -> int:
    from .chaos import ChaosProxy, ChaosSpecError, FaultPlan, INJECTION_POINTS

    if args.chaos_command == "points":
        if args.json:
            print(json.dumps(INJECTION_POINTS, indent=2, sort_keys=True))
            return 0
        print("chaos injection points (target with REPRO_CHAOS or `repro chaos plan`):")
        width = max(len(name) for name in INJECTION_POINTS)
        for name in sorted(INJECTION_POINTS):
            print(f"  {name:<{width}}  {INJECTION_POINTS[name]}")
        return 0

    if args.chaos_command == "plan":
        try:
            plan = FaultPlan.from_text(args.spec)
        except ChaosSpecError as error:
            print(f"error: invalid chaos plan: {error}", file=sys.stderr)
            return 1
        rules = [rule.to_dict() for rule in plan.rules]
        if args.json:
            print(json.dumps({"seed": plan.seed, "rules": rules}, indent=2, sort_keys=True))
        else:
            print(f"valid chaos plan: {len(rules)} rule(s), seed {plan.seed}")
            for rule in rules:
                print(f"  {json.dumps(rule, sort_keys=True)}")
        return 0

    # proxy
    try:
        proxy = ChaosProxy(
            upstream_port=args.upstream_port,
            upstream_host=args.upstream_host,
            listen_host=args.host,
            listen_port=args.port,
            reset_p=args.reset_p,
            latency_s=args.latency_s,
            latency_p=args.latency_p,
            error_p=args.error_p,
            error_status=args.error_status,
            truncate_p=args.truncate_p,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    proxy.start()
    print(
        f"chaos proxy on {proxy.url} -> "
        f"http://{args.upstream_host}:{args.upstream_port}  (Ctrl-C to stop)"
    )
    print(
        f"  reset_p={args.reset_p} latency={args.latency_p}@{args.latency_s}s "
        f"error_p={args.error_p}(HTTP {args.error_status}) "
        f"truncate_p={args.truncate_p} seed={args.seed}"
    )
    try:
        import time as _time

        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()
        print(f"proxy fault counts: {json.dumps(proxy.stats()['counts'], sort_keys=True)}")
    return 0


def _journal(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .service.journal import DEFAULT_KEEP_FINISHED, JobJournal

    directory = Path(args.dir)
    if not (directory / "journal.jsonl").exists():
        print(f"error: no journal at {directory / 'journal.jsonl'}", file=sys.stderr)
        return 1
    keep = args.keep_finished if args.keep_finished is not None else DEFAULT_KEEP_FINISHED
    journal = JobJournal(directory)
    try:
        stats = journal.compact(keep_finished=keep)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        journal.close()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(
        f"compacted {journal.path}: {stats['bytes_before']} -> "
        f"{stats['bytes_after']} bytes"
    )
    print(
        f"  {stats['kept_jobs']} job(s) kept, {stats['dropped_finished']} old "
        f"finished job(s) dropped, {stats['quarantined']} corrupt line(s) quarantined"
    )
    return 0


def _parse_shard(value: str | None) -> tuple[int, int]:
    if value is None:
        return 0, 1
    try:
        index_text, count_text = value.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(
            f"--shard must look like I/N (e.g. 0/4), got {value!r}"
        ) from None


def _campaign_dispatch(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignDispatcher,
        CampaignRunError,
        DispatchError,
        load_spec,
    )
    from .service.client import ServiceError

    if bool(args.nodes) == bool(args.gateway):
        print(
            "error: pass either --nodes URL... or --gateway URL (not both)",
            file=sys.stderr,
        )
        return 1
    client_options = {"api_key": args.api_key} if args.api_key else None
    try:
        spec = load_spec(args.spec)
        run_dir = args.run_dir or f"runs/{spec.name}-{spec.digest()[:12]}"
        dispatcher = CampaignDispatcher(
            spec,
            endpoints=args.nodes or [],
            run_dir=run_dir,
            max_inflight=args.max_inflight,
            poll_interval=args.poll_interval,
            ingest_db=args.ingest,
            gateway=args.gateway,
            client_options=client_options,
        )
        stats = dispatcher.run()
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except DispatchError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "completed cells are checkpointed; re-dispatch (or run locally) "
            "to finish the remainder",
            file=sys.stderr,
        )
        return 1
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except CampaignRunError as error:
        print(f"error: {error}", file=sys.stderr)
        for job, trace in error.failures[:3]:
            last_line = trace.strip().splitlines()[-1] if trace.strip() else "unknown"
            print(f"  {job.cell}: {last_line}", file=sys.stderr)
        return 1

    fleet = (
        "via gateway"
        if stats.get("mode") == "gateway"
        else f"over {len(stats['nodes'])} node(s)"
    )
    print(
        f"campaign {stats['campaign']!r} dispatched {fleet}: "
        f"{stats['executed']} run, {stats['skipped_checkpointed']} checkpointed, "
        f"{stats['total_cells']} total cells in {stats['elapsed_seconds']:.1f}s"
    )
    for node in stats["nodes"]:
        status = "ok" if node["alive"] else f"LOST ({node['reason']})"
        print(f"  {node['url']}: {node['completed']} cell(s) completed — {status}")
    client_stats = stats.get("client") or {}
    retries = client_stats.get("retries", 0)
    cooldowns = client_stats.get("cooldowns_429", 0)
    if retries or cooldowns:
        by_reason = client_stats.get("retries_by_reason") or {}
        detail = ", ".join(f"{reason}={count}" for reason, count in by_reason.items())
        print(
            f"  client: {retries} retrie(s)"
            + (f" ({detail})" if detail else "")
            + f", {cooldowns} backpressure cooldown(s)"
        )
    if stats.get("trace_id"):
        print(f"  trace: {stats['trace_id']}")
    print(f"run dir: {stats['run_dir']}")
    if stats["report_written"]:
        print(f"report:  {dispatcher.run_dir / 'report.json'} (+ report.csv)")
    else:
        print("incomplete; re-dispatch into the same --run-dir to resume")
    return 0


def _campaign(args: argparse.Namespace) -> int:
    from .campaign import CampaignRunError, CampaignRunner, load_spec

    try:
        if args.campaign_command == "dispatch":
            return _campaign_dispatch(args)
        if args.campaign_command == "report":
            runner = CampaignRunner.resume(args.run_dir, ingest_db=args.ingest)
            try:
                report = runner.write_report()
            except KeyError as error:
                print(f"campaign incomplete: {error}", file=sys.stderr)
                print("run `repro campaign resume` to finish it first", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(report, indent=2, sort_keys=True))
            else:
                print(f"report written: {runner.run_dir / 'report.json'}")
                print(f"csv written:    {runner.run_dir / 'report.csv'}")
                print(f"cells: {report['total_cells']}  spec: {report['spec_digest'][:12]}")
            return 0

        shard_index, shard_count = _parse_shard(args.shard)
        options = dict(
            jobs=args.jobs,
            use_processes=args.processes,
            shard_index=shard_index,
            shard_count=shard_count,
            max_jobs=args.max_jobs,
            ingest_db=args.ingest,
        )
        if args.campaign_command == "run":
            spec = load_spec(args.spec)
            run_dir = args.run_dir or f"runs/{spec.name}-{spec.digest()[:12]}"
            runner = CampaignRunner(spec, run_dir, **options)
        else:  # resume
            runner = CampaignRunner.resume(args.run_dir, **options)
        stats = runner.run()
    except (FileNotFoundError, ValueError) as error:
        # ValueError covers CampaignSpecError (its subclass) and malformed
        # runner options like --jobs 0.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except CampaignRunError as error:
        print(f"error: {error}", file=sys.stderr)
        for job, trace in error.failures[:3]:
            last_line = trace.strip().splitlines()[-1] if trace.strip() else "unknown"
            print(f"  {job.cell}: {last_line}", file=sys.stderr)
        return 1

    shard = stats["shard"]
    scope = f" (shard {shard['index']}/{shard['count']})" if shard["count"] > 1 else ""
    print(
        f"campaign {stats['campaign']!r}{scope}: "
        f"{stats['executed']} run, {stats['skipped_checkpointed']} checkpointed, "
        f"{stats['total_cells']} total cells in {stats['elapsed_seconds']:.1f}s"
    )
    print(f"run dir: {runner.run_dir}")
    if stats["interrupted"]:
        print(f"stopped at --max-jobs; resume with: repro campaign resume {runner.run_dir}")
    elif stats["report_written"]:
        print(f"report:  {runner.run_dir / 'report.json'} (+ report.csv)")
    else:
        print("shard complete; report appears once every shard has run")
    return 0


def _warehouse(args: argparse.Namespace) -> int:
    from . import warehouse
    from .eval.reporting import format_table, rows_to_csv

    if args.warehouse_command == "ingest":
        conn = warehouse.connect(args.db)
        try:
            stats = warehouse.ingest_paths(conn, args.paths)
        except warehouse.IngestError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        finally:
            conn.close()
        if args.json:
            print(json.dumps(stats.to_jsonable(), indent=2, sort_keys=True))
            return 0
        print(
            f"ingested {stats.sources} source(s) into {args.db}: "
            f"{stats.inserted} inserted, {stats.duplicates} duplicate(s), "
            f"{stats.invalid} invalid file(s) skipped"
        )
        for path in stats.invalid_files[:5]:
            print(f"  skipped: {path}")
        return 0

    # query / pareto share database access, filters, and output formatting.
    try:
        conn = warehouse.connect_readonly(args.db)
    except (FileNotFoundError, warehouse.SchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        filters = warehouse.parse_filters(args.where)
        columns = (
            [c.strip() for c in args.columns.split(",") if c.strip()]
            if args.columns is not None
            else None
        )
        if args.warehouse_command == "query":
            rows, total = warehouse.query_cells(
                conn,
                filters,
                sort=args.sort,
                descending=args.desc,
                offset=args.offset,
                limit=args.limit,
                columns=columns,
            )
            display_columns = columns or warehouse.default_columns(filters, args.sort)
        else:  # pareto
            matched, total = warehouse.query_cells(conn, filters)
            rows = warehouse.pareto_front(
                matched, args.x, args.y, maximize_x=args.max_x, maximize_y=args.max_y
            )
            if columns is not None:
                rows = [{c: row.get(c) for c in columns} for row in rows]
            display_columns = columns or warehouse.default_columns(filters, None) + [
                c for c in (args.x, args.y)
                if c not in warehouse.default_columns(filters, None)
            ]
    except warehouse.QueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        conn.close()

    if args.format == "json":
        print(json.dumps({"results": rows, "total": total}, indent=2, sort_keys=True))
    elif args.format == "csv":
        print(rows_to_csv(rows, columns=columns), end="")
    else:
        shown = [{c: row.get(c) for c in display_columns} for row in rows]
        title = f"{len(rows)} of {total} matched cell(s) in {args.db}"
        print(format_table(shown, columns=display_columns, title=title, precision=6))
    return 0


def _parse_cli_params(pairs: list[str]) -> dict:
    """``--param key=value`` pairs -> dict (values JSON-decoded when possible)."""
    params = {}
    for pair in pairs:
        key, separator, text = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"--param must look like KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(text)
        except json.JSONDecodeError:
            params[key] = text
    return params


def _codec(args: argparse.Namespace) -> int:
    from . import codecs
    from .eval.reporting import format_table

    if args.codec_command == "list":
        schemas = codecs.describe_codecs()
        if args.json:
            print(json.dumps(schemas, indent=2, sort_keys=True))
            return 0
        rows = [
            {
                "codec": schema["name"],
                "version": schema["version"],
                "lossless": schema["lossless"],
                "params": " ".join(sorted(schema["params"])) or "-",
                "summary": schema["summary"],
            }
            for schema in schemas
        ]
        print(format_table(rows, title="registered codecs"))
        return 0

    # `codec run`: executed through the service registry's codec_compress
    # scenario so the CLI, the campaign engine, and POST /v1/compress produce
    # byte-identical payloads for identical inputs.
    from .service.registry import build_default_registry

    stages = None
    if args.stages is not None:
        from pathlib import Path

        if args.codec != "pipeline":
            raise SystemExit(
                f"--stages runs the pipeline codec; it cannot be combined with "
                f"codec {args.codec!r} (use `repro codec run pipeline --stages ...` "
                "or fold the codec into the stage list)"
            )
        text = args.stages
        if Path(text).is_file():
            text = Path(text).read_text()
        try:
            stages = json.loads(text)
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"--stages is neither valid JSON nor a JSON file: {error}"
            ) from error

    submission = {
        "codec": None if stages is not None else args.codec,
        "rows": args.rows,
        "cols": args.cols,
        "seed": args.seed,
        "scale": args.scale,
        "params": _parse_cli_params(args.param),
        "stages": stages,
    }
    try:
        record = build_default_registry().run("codec_compress", submission)
    except (ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    metric_rows = [
        {"metric": name, "value": value}
        for name, value in sorted(record["metrics"].items())
    ] + [{"metric": "normalized_mse", "value": record["normalized_mse"]}]
    title = f"{record['codec']} v{record['version']} on {record['shape']} (seed {record['seed']})"
    print(format_table(metric_rows, title=title, precision=6))
    for stage in record.get("stages", []):
        print(
            f"  stage {stage['codec']}: mse={stage['stage_mse']:.3e} "
            f"cumulative={stage['cumulative_mse']:.3e} "
            f"effective_bits={stage['effective_bits']:.3f}"
        )
    print(f"digest: {record['digest']}")
    return 0


def _format_span(node: dict, depth: int = 0) -> list[str]:
    """One line per span, children indented under their parent."""
    duration = node.get("duration")
    timing = f"{duration * 1000:.1f}ms" if isinstance(duration, (int, float)) else "open"
    status = node.get("status") or "open"
    attrs = node.get("attrs") or {}
    detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    line = f"{'  ' * depth}{node.get('name', '?')} [{status} {timing}]"
    if detail:
        line += f"  {detail}"
    lines = [line]
    for child in node.get("children", []):
        lines.extend(_format_span(child, depth + 1))
    return lines


def _obs(args: argparse.Namespace) -> int:
    from .obs import get_metrics, summarize_run_dir
    from .obs.summary import SummaryError, format_summary_table
    from .service.client import ServiceClient, ServiceError

    if args.obs_command == "metrics":
        if args.url is None:
            registry = get_metrics()
            if args.json:
                print(json.dumps(registry.to_jsonable(), indent=2, sort_keys=True))
            else:
                print(registry.render_prometheus(), end="")
            return 0
        try:
            client = ServiceClient(args.url)
            if args.json:
                print(json.dumps(client.metrics(format="json"), indent=2, sort_keys=True))
            else:
                print(client.metrics(), end="")
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0

    if args.obs_command == "trace":
        try:
            payload = ServiceClient(args.url).job_trace(args.job_id)
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(
            f"job {payload['job_id']} ({payload['state']}): "
            f"trace {payload['trace_id']}, {payload['span_count']} span(s)"
        )
        for root in payload["trace"]:
            for line in _format_span(root):
                print(f"  {line}")
        return 0

    # summary
    try:
        summary = summarize_run_dir(args.run_dir)
    except SummaryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary_table(summary))
    return 0


def _analyze(args: argparse.Namespace) -> int:
    """``repro analyze``: run the static invariant checkers."""
    from .analysis import analyze_paths, describe_checkers, format_json, format_table

    if args.list:
        if args.format == "json":
            print(json.dumps(describe_checkers(), indent=2, sort_keys=True))
        else:
            for entry in describe_checkers():
                print(f"{entry['name']:<16} {entry['severity']:<8} {entry['description']}")
        return 0

    def _split(value: str | None) -> list[str] | None:
        if not value:
            return None
        return [part.strip() for part in value.split(",") if part.strip()]

    try:
        report = analyze_paths(
            args.paths, select=_split(args.select), ignore=_split(args.ignore)
        )
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(format_json(report.findings, report.suppressed))
    else:
        if report.findings:
            print(format_table(report.findings))
        if args.show_suppressed and report.suppressed:
            print("suppressed:")
            print(format_table(report.suppressed))
        print(
            f"{len(report.findings)} finding(s), {len(report.suppressed)} "
            f"suppressed, {report.files} file(s) analyzed, "
            f"checkers: {', '.join(report.checkers)}"
        )
    return 1 if report.findings else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("available experiments:")
        for name in EXPERIMENT_COMMANDS:
            print(f"  {name}")
        print("  ablations")
        print("  all")
        print("  gateway (front-door routing, node registry, failover, quotas)")
        print("  campaign (run/resume/report/dispatch declarative campaign specs)")
        print("  warehouse (ingest/query/pareto over the results warehouse)")
        print("  codec (run/list composable compression codecs)")
        print("  obs (metrics/trace/summary observability surfaces)")
        print("  chaos (fault-injection plans and the chaos HTTP proxy)")
        print("  journal (inspect/compact a service job journal)")
        print("  analyze (static invariant checkers over the source tree)")
        return 0

    if args.command == "ablations":
        results = run_all_ablations(seed=args.seed)
        if args.json:
            print(json.dumps({name: json_payload(r) for name, r in results.items()}, indent=2))
        else:
            for result in results.values():
                print(result["table"])
        return 0

    if args.command == "all":
        results = experiments.run_all(fast=args.fast, seed=args.seed, jobs=args.jobs)
        if args.json:
            print(json.dumps({name: json_payload(r) for name, r in results.items()}, indent=2))
        else:
            for result in results.values():
                print(result["table"])
        return 0

    if args.command == "serve":
        return _serve(args)

    if args.command == "gateway":
        return _gateway(args)

    if args.command == "campaign":
        return _campaign(args)

    if args.command == "warehouse":
        return _warehouse(args)

    if args.command == "codec":
        return _codec(args)

    if args.command == "obs":
        return _obs(args)

    if args.command == "chaos":
        return _chaos(args)

    if args.command == "journal":
        return _journal(args)

    if args.command == "analyze":
        return _analyze(args)

    return _run_single(args.command, args)


if __name__ == "__main__":
    sys.exit(main())
