"""Synthetic weight and activation generation.

The paper's results depend on the statistical shape of per-channel-quantized
INT8 DNN weights — Gaussian-like, mostly small in magnitude, with a minority
of outlier-heavy channels that dominate the per-channel scaling factors — and
on the value sparsity of activations (high after ReLU in CNNs, essentially
zero after GELU in transformers).  Because the pre-trained checkpoints cannot
be shipped, this module draws weights and activations with those statistics:

* per-channel Gaussian weights whose standard deviation follows fan-in
  (He-style) scaling,
* a configurable fraction of *outlier channels* with several-fold larger
  spread (these become the "sensitive channels" that global pruning protects),
* a heavy-tail component inside every channel so the per-channel max sits a
  realistic 3.5-4.5 sigma above the bulk (this controls the INT8 bit-sparsity
  level, which Figure 3 shows to be ~50 % in two's complement and 60-65 % in
  sign-magnitude),
* ReLU-sparse integer activations for CNN layers and dense, GELU-shaped
  activations for transformer layers.

Large layers can be subsampled (both channels and reduction) while keeping the
full dimensions on record, so that even Llama-3-8B can be analysed in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model_zoo import Conv2dSpec, LayerSpec, LinearSpec, ModelSpec
from ..core.hashing import stable_digest
from ..core.memo import get_memo
from ..quant.ptq import QuantizedTensor, quantize_per_channel

__all__ = [
    "WeightStatistics",
    "LayerWeights",
    "DEFAULT_CNN_STATS",
    "DEFAULT_TRANSFORMER_STATS",
    "synthesize_float_weights",
    "synthesize_layer",
    "synthesize_model",
    "synthesize_activations",
]


@dataclass(frozen=True)
class WeightStatistics:
    """Knobs controlling the synthetic weight distribution of one model family."""

    outlier_channel_fraction: float = 0.08
    outlier_scale: float = 3.5
    heavy_tail_fraction: float = 0.01
    heavy_tail_scale: float = 4.0
    relative_max_sigma: float = 4.0

    def validate(self) -> None:
        if not 0.0 <= self.outlier_channel_fraction <= 1.0:
            raise ValueError("outlier_channel_fraction must be in [0, 1]")
        if not 0.0 <= self.heavy_tail_fraction <= 1.0:
            raise ValueError("heavy_tail_fraction must be in [0, 1]")


#: CNN weights: moderate outlier channels, noticeable heavy tails per channel.
DEFAULT_CNN_STATS = WeightStatistics(
    outlier_channel_fraction=0.08,
    outlier_scale=3.5,
    heavy_tail_fraction=0.012,
    heavy_tail_scale=4.0,
)

#: Transformer weights: fewer but stronger outlier channels (attention/FFN
#: projections are known for a small set of very large-magnitude channels).
DEFAULT_TRANSFORMER_STATS = WeightStatistics(
    outlier_channel_fraction=0.05,
    outlier_scale=5.0,
    heavy_tail_fraction=0.008,
    heavy_tail_scale=5.0,
)


@dataclass
class LayerWeights:
    """Synthetic weights of one layer, possibly subsampled.

    Attributes
    ----------
    spec:
        The layer shape this tensor realizes.
    quantized:
        Per-channel INT8 :class:`~repro.quant.ptq.QuantizedTensor` of shape
        ``(sampled_channels, sampled_reduction)``.
    float_weights:
        The floating-point weights the INT8 tensor was quantized from.
    sample_fraction:
        Fraction of the layer's true weight count represented by the sample
        (1.0 when the layer was generated in full).
    repeat:
        How many identical layers in the model this tensor stands for.
    """

    spec: LayerSpec
    quantized: QuantizedTensor
    float_weights: np.ndarray
    sample_fraction: float
    repeat: int = 1

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def int_weights(self) -> np.ndarray:
        return self.quantized.values

    @property
    def channel_scores(self) -> np.ndarray:
        """Per-channel sensitivity proxy: the per-channel quantization scale."""
        return self.quantized.scales

    @property
    def full_weight_count(self) -> int:
        return self.spec.weight_count * self.repeat


def _stats_for_family(family: str) -> WeightStatistics:
    if family == "cnn":
        return DEFAULT_CNN_STATS
    return DEFAULT_TRANSFORMER_STATS


def synthesize_float_weights(
    channels: int,
    reduction: int,
    rng: np.random.Generator,
    stats: WeightStatistics = DEFAULT_CNN_STATS,
) -> np.ndarray:
    """Draw a ``(channels, reduction)`` float weight matrix with DNN-like statistics."""
    stats.validate()
    base_sigma = np.sqrt(2.0 / max(1, reduction))
    channel_sigma = np.full(channels, base_sigma)
    num_outliers = int(round(stats.outlier_channel_fraction * channels))
    if num_outliers:
        outlier_rows = rng.choice(channels, size=num_outliers, replace=False)
        channel_sigma[outlier_rows] *= stats.outlier_scale

    weights = rng.normal(0.0, 1.0, size=(channels, reduction)) * channel_sigma[:, None]
    if stats.heavy_tail_fraction > 0:
        tail_mask = rng.random((channels, reduction)) < stats.heavy_tail_fraction
        tail = rng.normal(0.0, stats.heavy_tail_scale, size=(channels, reduction))
        weights = np.where(tail_mask, weights * np.abs(tail) + weights, weights)
    return weights


def _sampled_dims(
    spec: LayerSpec, max_channels: int, max_reduction: int, group_size: int
) -> tuple[int, int, float]:
    """Choose sampled (channels, reduction) dims and the represented fraction."""
    channels = spec.gemm_n
    reduction = spec.gemm_k
    sampled_channels = min(channels, max_channels)
    sampled_reduction = min(reduction, max_reduction)
    # Keep the reduction a multiple of the group size whenever the original is.
    if sampled_reduction >= group_size:
        sampled_reduction -= sampled_reduction % group_size
    fraction = (sampled_channels * sampled_reduction) / float(channels * reduction)
    return sampled_channels, sampled_reduction, fraction


def synthesize_layer(
    spec: LayerSpec,
    rng: np.random.Generator,
    stats: WeightStatistics | None = None,
    family: str = "cnn",
    max_channels: int = 512,
    max_reduction: int = 4096,
    group_size: int = 32,
) -> LayerWeights:
    """Generate synthetic per-channel INT8 weights for one layer spec."""
    stats = stats or _stats_for_family(family)
    channels, reduction, fraction = _sampled_dims(
        spec, max_channels, max_reduction, group_size
    )
    float_weights = synthesize_float_weights(channels, reduction, rng, stats)
    quantized = quantize_per_channel(float_weights, bits=8)
    return LayerWeights(
        spec=spec,
        quantized=quantized,
        float_weights=float_weights,
        sample_fraction=fraction,
        repeat=spec.repeat,
    )


def synthesize_model(
    model: ModelSpec,
    seed: int = 0,
    stats: WeightStatistics | None = None,
    max_channels: int = 512,
    max_reduction: int = 4096,
    group_size: int = 32,
) -> dict[str, LayerWeights]:
    """Generate synthetic weights for every (unique) layer of a model.

    Returns a dict keyed by layer name, in the model's layer order.  The seed
    is derived per layer so adding or removing layers does not reshuffle the
    weights of the others.

    Generation is deterministic in its arguments, so results are memoized
    process-wide (see :mod:`repro.core.memo`): the same model/seed/caps
    combination is synthesized once no matter how many experiments ask for it.
    """
    memo = get_memo()
    memo_key = None
    if memo.enabled:
        memo_key = stable_digest(
            "synthesize_model", model, seed, stats, max_channels, max_reduction, group_size
        )
        cached = memo.models.get(memo_key)
        if cached is not None:
            return dict(cached)

    weights: dict[str, LayerWeights] = {}
    for index, layer in enumerate(model.layers):
        rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
        weights[layer.name] = synthesize_layer(
            layer,
            rng,
            stats=stats,
            family=model.family,
            max_channels=max_channels,
            max_reduction=max_reduction,
            group_size=group_size,
        )
    if memo_key is not None:
        memo.models.put(memo_key, dict(weights))
    return weights


def synthesize_activations(
    spec: LayerSpec,
    rng: np.random.Generator,
    family: str = "cnn",
    count: int | None = None,
    bits: int = 8,
) -> np.ndarray:
    """Draw synthetic INT8 activations feeding one layer.

    CNN layers receive post-ReLU activations: non-negative, with the value
    sparsity typical of the family (40-50 % zeros).  Transformer layers
    receive GELU-shaped activations: dense, slightly left-skewed, signed.
    """
    if count is None:
        count = min(spec.gemm_k, 4096)
    hi = (1 << (bits - 1)) - 1
    if family == "cnn":
        values = rng.normal(0.0, hi / 3.0, size=count)
        values = np.where(values > 0, values, 0.0)
        # Random extra zeroing models pooling / bias effects on sparsity.
        drop = rng.random(count) < 0.1
        values = np.where(drop, 0.0, values)
        return np.clip(np.round(values), 0, hi).astype(np.int64)
    values = rng.normal(0.0, hi / 4.0, size=count)
    gelu_like = np.where(values < 0, values * 0.15, values)
    return np.clip(np.round(gelu_like), -(hi + 1), hi).astype(np.int64)


def _is_conv(spec: LayerSpec) -> bool:
    return isinstance(spec, Conv2dSpec)


def _is_linear(spec: LayerSpec) -> bool:
    return isinstance(spec, LinearSpec)
