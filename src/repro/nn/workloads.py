"""GEMM workload extraction for the accelerator models.

Every weight layer of every benchmark model is lowered to a GEMM of shape
``(M, K) x (K, N)``: convolutions through the im2col view (``M`` = output
pixels, ``K`` = ``C*R*S``, ``N`` = output channels) and linear layers directly
(``M`` = tokens).  The accelerator simulators consume these workloads together
with the per-layer weight statistics produced by :mod:`repro.nn.synthetic`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model_zoo import Conv2dSpec, LayerSpec, LinearSpec, ModelSpec

__all__ = ["GemmWorkload", "layer_workload", "model_workloads"]


@dataclass(frozen=True)
class GemmWorkload:
    """One weight-layer GEMM as seen by the accelerators.

    Attributes
    ----------
    name:
        Layer name.
    m:
        Output rows (pixels or tokens) per inference.
    k:
        Reduction dimension (weights per output channel).
    n:
        Output channels.
    repeat:
        Number of identical layers this workload stands for.
    weight_bits:
        Nominal (uncompressed) weight precision.
    activation_bits:
        Activation precision.
    """

    name: str
    m: int
    k: int
    n: int
    repeat: int = 1
    weight_bits: int = 8
    activation_bits: int = 8

    @property
    def macs(self) -> int:
        """Multiply-accumulates per inference (for one of the `repeat` layers)."""
        return self.m * self.k * self.n

    @property
    def total_macs(self) -> int:
        return self.macs * self.repeat

    @property
    def weight_count(self) -> int:
        return self.k * self.n

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * self.weight_bits // 8

    @property
    def activation_bytes(self) -> int:
        return self.m * self.k * self.activation_bits // 8

    @property
    def output_bytes(self) -> int:
        # Partial sums are wider, but outputs are re-quantized to the
        # activation precision before leaving the accelerator.
        return self.m * self.n * self.activation_bits // 8


def layer_workload(spec: LayerSpec) -> GemmWorkload:
    """Lower one layer spec to its GEMM workload."""
    if isinstance(spec, Conv2dSpec):
        return GemmWorkload(
            name=spec.name,
            m=spec.gemm_m,
            k=spec.gemm_k,
            n=spec.gemm_n,
            repeat=spec.repeat,
        )
    if isinstance(spec, LinearSpec):
        return GemmWorkload(
            name=spec.name,
            m=spec.gemm_m,
            k=spec.gemm_k,
            n=spec.gemm_n,
            repeat=spec.repeat,
        )
    raise TypeError(f"unsupported layer spec type: {type(spec).__name__}")


def model_workloads(model: ModelSpec) -> list[GemmWorkload]:
    """Lower every weight layer of a model to its GEMM workload."""
    return [layer_workload(layer) for layer in model.layers]
