"""Numpy DNN substrate: kernels, layers, model zoo, synthetic weights, trainer.

* :mod:`repro.nn.functional` — conv/linear/attention/normalization kernels.
* :mod:`repro.nn.layers` — module-style inference layers with GEMM-layout
  weight access for in-place compression.
* :mod:`repro.nn.model_zoo` — exact layer shapes of the paper's benchmarks
  (VGG-16, ResNet-34/50, ViT-S/B, BERT, Llama-3-8B).
* :mod:`repro.nn.synthetic` — statistically realistic synthetic INT8 weights
  and activations for those shapes.
* :mod:`repro.nn.workloads` — GEMM workload extraction for the accelerator
  simulators.
* :mod:`repro.nn.trainer` — a small numpy MLP for end-to-end accuracy
  experiments.
"""

from . import functional
from .layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GELU,
    Layer,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from .model_zoo import (
    Conv2dSpec,
    LayerSpec,
    LinearSpec,
    MODEL_BUILDERS,
    ModelSpec,
    benchmark_models,
    bert_base,
    get_model,
    llama3_8b,
    resnet34,
    resnet50,
    vgg16,
    vit_base,
    vit_small,
)
from .synthetic import (
    DEFAULT_CNN_STATS,
    DEFAULT_TRANSFORMER_STATS,
    LayerWeights,
    WeightStatistics,
    synthesize_activations,
    synthesize_float_weights,
    synthesize_layer,
    synthesize_model,
)
from .trainer import (
    ClassificationDataset,
    MLPClassifier,
    accuracy_under_compression,
    make_classification_dataset,
)
from .workloads import GemmWorkload, layer_workload, model_workloads

__all__ = [
    "functional",
    "AvgPool2d",
    "Conv2d",
    "Flatten",
    "GELU",
    "Layer",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "Conv2dSpec",
    "LayerSpec",
    "LinearSpec",
    "MODEL_BUILDERS",
    "ModelSpec",
    "benchmark_models",
    "bert_base",
    "get_model",
    "llama3_8b",
    "resnet34",
    "resnet50",
    "vgg16",
    "vit_base",
    "vit_small",
    "DEFAULT_CNN_STATS",
    "DEFAULT_TRANSFORMER_STATS",
    "LayerWeights",
    "WeightStatistics",
    "synthesize_activations",
    "synthesize_float_weights",
    "synthesize_layer",
    "synthesize_model",
    "ClassificationDataset",
    "MLPClassifier",
    "accuracy_under_compression",
    "make_classification_dataset",
    "GemmWorkload",
    "layer_workload",
    "model_workloads",
]
