"""Lightweight inference-layer objects built on :mod:`repro.nn.functional`.

These classes give the examples and the end-to-end tests a familiar
module-style API (objects holding weights with a ``__call__`` forward) without
pulling in a deep-learning framework.  Each weight-bearing layer exposes its
weights in the ``(channels, reduction)`` GEMM layout used by the BBS pruning
code, so a network can be compressed in place and re-run to observe the effect
on its outputs.
"""

from __future__ import annotations

import numpy as np

from . import functional as F

__all__ = [
    "Layer",
    "Linear",
    "Conv2d",
    "ReLU",
    "GELU",
    "LayerNorm",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Sequential",
]


class Layer:
    """Base class: a callable with optional weights in GEMM layout."""

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def weight_matrix(self) -> np.ndarray | None:
        """The layer's weights as a ``(channels, reduction)`` matrix, if any."""
        return None

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        """Replace the layer's weights from a ``(channels, reduction)`` matrix."""
        raise NotImplementedError(f"{type(self).__name__} has no weights")


class Linear(Layer):
    """Affine layer with PyTorch-style ``(out_features, in_features)`` weights."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, size=(out_features, in_features))
        self.bias = np.zeros(out_features)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.linear(inputs, self.weight, self.bias)

    def weight_matrix(self) -> np.ndarray:
        return self.weight

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != self.weight.shape:
            raise ValueError(f"expected shape {self.weight.shape}, got {matrix.shape}")
        self.weight = np.asarray(matrix, dtype=np.float64)


class Conv2d(Layer):
    """2-D convolution with ``(out_channels, in_channels, k, k)`` weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.weight = rng.normal(0.0, np.sqrt(2.0 / fan_in),
                                 size=(out_channels, in_channels, kernel, kernel))
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.padding = padding

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.conv2d(inputs, self.weight, self.bias, self.stride, self.padding)

    def weight_matrix(self) -> np.ndarray:
        out_channels = self.weight.shape[0]
        return self.weight.reshape(out_channels, -1)

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.weight.shape[0], int(np.prod(self.weight.shape[1:])))
        if matrix.shape != expected:
            raise ValueError(f"expected shape {expected}, got {matrix.shape}")
        self.weight = np.asarray(matrix, dtype=np.float64).reshape(self.weight.shape)


class ReLU(Layer):
    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.relu(inputs)


class GELU(Layer):
    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.gelu(inputs)


class LayerNorm(Layer):
    def __init__(self, features: int):
        self.gamma = np.ones(features)
        self.beta = np.zeros(features)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.layer_norm(inputs, self.gamma, self.beta)


class MaxPool2d(Layer):
    def __init__(self, kernel: int, stride: int | None = None):
        self.kernel = kernel
        self.stride = stride

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.max_pool2d(inputs, self.kernel, self.stride)


class AvgPool2d(Layer):
    def __init__(self, kernel: int, stride: int | None = None):
        self.kernel = kernel
        self.stride = stride

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return F.avg_pool2d(inputs, self.kernel, self.stride)


class Flatten(Layer):
    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return inputs.reshape(inputs.shape[0], -1)


class Sequential(Layer):
    """A pipeline of layers applied in order."""

    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            inputs = layer(inputs)
        return inputs

    def weight_layers(self) -> list[Layer]:
        """The layers that carry weights, in execution order."""
        return [layer for layer in self.layers if layer.weight_matrix() is not None]
