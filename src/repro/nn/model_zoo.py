"""Benchmark model zoo: layer shapes of the paper's seven DNNs plus Llama-3-8B.

The paper evaluates VGG-16, ResNet-34, ResNet-50 (ImageNet), ViT-Small,
ViT-Base (ImageNet), BERT-base (MRPC and SST-2) and, for the LLM study,
Llama-3-8B.  We cannot ship the pre-trained weights, but every result in the
evaluation depends only on

* the *shapes* of the weight layers (they determine compute, memory traffic
  and parallel-mapping behaviour), and
* the per-channel weight *statistics* (they determine bit sparsity, pruning
  error and load balance),

so this module records the exact layer shapes of the published architectures,
and :mod:`repro.nn.synthetic` attaches statistically realistic weights to
them.  Repeated transformer blocks and residual stages are described once with
a multiplicity so very large models (Llama-3-8B) stay cheap to analyse.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Conv2dSpec",
    "LinearSpec",
    "LayerSpec",
    "ModelSpec",
    "vgg16",
    "resnet34",
    "resnet50",
    "vit_small",
    "vit_base",
    "bert_base",
    "llama3_8b",
    "benchmark_models",
    "get_model",
    "MODEL_BUILDERS",
]


@dataclass(frozen=True)
class Conv2dSpec:
    """A convolution layer described by its GEMM-relevant dimensions."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    input_size: int
    padding: int = 0
    repeat: int = 1

    @property
    def output_size(self) -> int:
        return (self.input_size + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def gemm_m(self) -> int:
        """Output pixels (rows of the im2col GEMM) for batch size 1."""
        return self.output_size * self.output_size

    @property
    def gemm_k(self) -> int:
        """Reduction dimension of the im2col GEMM."""
        return self.in_channels * self.kernel * self.kernel

    @property
    def gemm_n(self) -> int:
        """Output channels (columns of the im2col GEMM)."""
        return self.out_channels

    @property
    def weight_count(self) -> int:
        return self.out_channels * self.in_channels * self.kernel * self.kernel

    @property
    def macs(self) -> int:
        return self.gemm_m * self.gemm_k * self.gemm_n


@dataclass(frozen=True)
class LinearSpec:
    """A linear (fully-connected / projection) layer."""

    name: str
    in_features: int
    out_features: int
    tokens: int = 1
    repeat: int = 1

    @property
    def gemm_m(self) -> int:
        return self.tokens

    @property
    def gemm_k(self) -> int:
        return self.in_features

    @property
    def gemm_n(self) -> int:
        return self.out_features

    @property
    def weight_count(self) -> int:
        return self.out_features * self.in_features

    @property
    def macs(self) -> int:
        return self.gemm_m * self.gemm_k * self.gemm_n


LayerSpec = Conv2dSpec | LinearSpec


@dataclass(frozen=True)
class ModelSpec:
    """A benchmark model: its layers plus the published accuracy reference points."""

    name: str
    family: str
    dataset: str
    layers: tuple[LayerSpec, ...]
    fp32_accuracy: float
    int8_accuracy: float
    activation_value_sparsity: float = 0.0
    notes: str = ""

    def unique_layers(self) -> list[tuple[LayerSpec, int]]:
        """Layers with their repeat counts (identical blocks described once)."""
        return [(layer, layer.repeat) for layer in self.layers]

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count * layer.repeat for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs * layer.repeat for layer in self.layers)

    def describe(self) -> str:
        return (
            f"{self.name} ({self.family}, {self.dataset}): "
            f"{len(self.layers)} unique weight layers, "
            f"{self.total_weights / 1e6:.1f}M weights, "
            f"{self.total_macs / 1e9:.2f} GMACs"
        )


def vgg16() -> ModelSpec:
    """VGG-16 for 224x224 ImageNet inference (13 conv + 3 FC layers)."""
    cfg = [
        # (in, out, input_size)
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers: list[LayerSpec] = [
        Conv2dSpec(
            name=f"conv{i + 1}",
            in_channels=in_c,
            out_channels=out_c,
            kernel=3,
            stride=1,
            padding=1,
            input_size=size,
        )
        for i, (in_c, out_c, size) in enumerate(cfg)
    ]
    layers += [
        LinearSpec("fc6", 512 * 7 * 7, 4096),
        LinearSpec("fc7", 4096, 4096),
        LinearSpec("fc8", 4096, 1000),
    ]
    return ModelSpec(
        name="VGG-16",
        family="cnn",
        dataset="ImageNet",
        layers=tuple(layers),
        fp32_accuracy=73.36,
        int8_accuracy=73.35,
        activation_value_sparsity=0.45,
        notes="13 conv layers with 3x3 kernels plus 3 fully-connected layers.",
    )


def _basic_block(name: str, channels: int, size: int, downsample_from: int | None,
                 repeat: int) -> list[LayerSpec]:
    """ResNet basic block (two 3x3 convolutions) with optional downsampling entry."""
    layers: list[LayerSpec] = []
    if downsample_from is not None:
        layers += [
            Conv2dSpec(f"{name}.0.conv1", downsample_from, channels, 3, 2, size * 2, padding=1),
            Conv2dSpec(f"{name}.0.conv2", channels, channels, 3, 1, size, padding=1),
            Conv2dSpec(f"{name}.0.downsample", downsample_from, channels, 1, 2, size * 2),
        ]
        repeat -= 1
    if repeat > 0:
        layers += [
            Conv2dSpec(f"{name}.conv1", channels, channels, 3, 1, size, padding=1, repeat=repeat),
            Conv2dSpec(f"{name}.conv2", channels, channels, 3, 1, size, padding=1, repeat=repeat),
        ]
    return layers


def resnet34() -> ModelSpec:
    """ResNet-34 for ImageNet (basic residual blocks)."""
    layers: list[LayerSpec] = [
        Conv2dSpec("conv1", 3, 64, 7, 2, 224, padding=3),
    ]
    layers += _basic_block("layer1", 64, 56, None, 3)
    layers += _basic_block("layer2", 128, 28, 64, 4)
    layers += _basic_block("layer3", 256, 14, 128, 6)
    layers += _basic_block("layer4", 512, 7, 256, 3)
    layers += [LinearSpec("fc", 512, 1000)]
    return ModelSpec(
        name="ResNet-34",
        family="cnn",
        dataset="ImageNet",
        layers=tuple(layers),
        fp32_accuracy=73.31,
        int8_accuracy=73.39,
        activation_value_sparsity=0.40,
        notes="Basic residual blocks (two 3x3 convolutions per block).",
    )


def _bottleneck_stage(name: str, in_channels: int, mid: int, size: int,
                      blocks: int, stride: int) -> list[LayerSpec]:
    """ResNet bottleneck stage (1x1 -> 3x3 -> 1x1 blocks)."""
    out_channels = mid * 4
    input_size = size * stride
    layers: list[LayerSpec] = [
        Conv2dSpec(f"{name}.0.conv1", in_channels, mid, 1, 1, input_size),
        Conv2dSpec(f"{name}.0.conv2", mid, mid, 3, stride, input_size, padding=1),
        Conv2dSpec(f"{name}.0.conv3", mid, out_channels, 1, 1, size),
        Conv2dSpec(f"{name}.0.downsample", in_channels, out_channels, 1, stride, input_size),
    ]
    remaining = blocks - 1
    if remaining > 0:
        layers += [
            Conv2dSpec(f"{name}.conv1", out_channels, mid, 1, 1, size, repeat=remaining),
            Conv2dSpec(f"{name}.conv2", mid, mid, 3, 1, size, padding=1, repeat=remaining),
            Conv2dSpec(f"{name}.conv3", mid, out_channels, 1, 1, size, repeat=remaining),
        ]
    return layers


def resnet50() -> ModelSpec:
    """ResNet-50 for ImageNet (bottleneck residual blocks)."""
    layers: list[LayerSpec] = [
        Conv2dSpec("conv1", 3, 64, 7, 2, 224, padding=3),
    ]
    layers += _bottleneck_stage("layer1", 64, 64, 56, 3, 1)
    layers += _bottleneck_stage("layer2", 256, 128, 28, 4, 2)
    layers += _bottleneck_stage("layer3", 512, 256, 14, 6, 2)
    layers += _bottleneck_stage("layer4", 1024, 512, 7, 3, 2)
    layers += [LinearSpec("fc", 2048, 1000)]
    return ModelSpec(
        name="ResNet-50",
        family="cnn",
        dataset="ImageNet",
        layers=tuple(layers),
        fp32_accuracy=76.13,
        int8_accuracy=76.17,
        activation_value_sparsity=0.35,
        notes="Bottleneck residual blocks (1x1, 3x3, 1x1 convolutions).",
    )


def _vit(name: str, embed: int, depth: int, mlp_ratio: int, heads: int,
         fp32: float, int8: float) -> ModelSpec:
    tokens = 197  # 14x14 patches + class token for 224x224 / patch 16
    layers: tuple[LayerSpec, ...] = (
        Conv2dSpec("patch_embed", 3, embed, 16, 16, 224),
        LinearSpec("attn.qkv", embed, 3 * embed, tokens=tokens, repeat=depth),
        LinearSpec("attn.proj", embed, embed, tokens=tokens, repeat=depth),
        LinearSpec("mlp.fc1", embed, mlp_ratio * embed, tokens=tokens, repeat=depth),
        LinearSpec("mlp.fc2", mlp_ratio * embed, embed, tokens=tokens, repeat=depth),
        LinearSpec("head", embed, 1000),
    )
    return ModelSpec(
        name=name,
        family="transformer",
        dataset="ImageNet",
        layers=layers,
        fp32_accuracy=fp32,
        int8_accuracy=int8,
        activation_value_sparsity=0.02,
        notes=f"{depth} encoder blocks, {heads} heads, GELU activations (no value sparsity).",
    )


def vit_small() -> ModelSpec:
    """ViT-Small/16 at 224x224 (embed 384, 12 blocks, 6 heads)."""
    return _vit("ViT-Small", 384, 12, 4, 6, fp32=80.16, int8=80.05)


def vit_base() -> ModelSpec:
    """ViT-Base/16 at 224x224 (embed 768, 12 blocks, 12 heads)."""
    return _vit("ViT-Base", 768, 12, 4, 12, fp32=84.54, int8=84.52)


def bert_base(task: str = "MRPC") -> ModelSpec:
    """BERT-base encoder for a GLUE classification task (sequence length 128)."""
    accuracy = {"MRPC": (90.7, 90.4), "SST2": (91.8, 91.63)}
    if task not in accuracy:
        raise ValueError(f"unknown BERT task {task!r}; expected one of {sorted(accuracy)}")
    fp32, int8 = accuracy[task]
    hidden, depth, tokens = 768, 12, 128
    layers: tuple[LayerSpec, ...] = (
        LinearSpec("attn.query", hidden, hidden, tokens=tokens, repeat=depth),
        LinearSpec("attn.key", hidden, hidden, tokens=tokens, repeat=depth),
        LinearSpec("attn.value", hidden, hidden, tokens=tokens, repeat=depth),
        LinearSpec("attn.output", hidden, hidden, tokens=tokens, repeat=depth),
        LinearSpec("ffn.intermediate", hidden, 4 * hidden, tokens=tokens, repeat=depth),
        LinearSpec("ffn.output", 4 * hidden, hidden, tokens=tokens, repeat=depth),
        LinearSpec("pooler", hidden, hidden),
        LinearSpec("classifier", hidden, 2),
    )
    return ModelSpec(
        name=f"BERT-{task}",
        family="transformer",
        dataset=f"GLUE-{task}",
        layers=layers,
        fp32_accuracy=fp32,
        int8_accuracy=int8,
        activation_value_sparsity=0.02,
        notes="12 encoder blocks, hidden 768, GELU activations (no value sparsity).",
    )


def llama3_8b(sequence_length: int = 2048) -> ModelSpec:
    """Llama-3-8B decoder (32 blocks, hidden 4096, GQA with 8 KV heads).

    Used only for the weight-compression study of Figure 17; the reported
    metric is a perplexity proxy computed from weight-reconstruction error, so
    the sequence length only matters for compute accounting.
    """
    hidden, depth = 4096, 32
    kv_hidden = 1024  # 8 KV heads x 128
    intermediate = 14336
    layers: tuple[LayerSpec, ...] = (
        LinearSpec("attn.q_proj", hidden, hidden, tokens=sequence_length, repeat=depth),
        LinearSpec("attn.k_proj", hidden, kv_hidden, tokens=sequence_length, repeat=depth),
        LinearSpec("attn.v_proj", hidden, kv_hidden, tokens=sequence_length, repeat=depth),
        LinearSpec("attn.o_proj", hidden, hidden, tokens=sequence_length, repeat=depth),
        LinearSpec("mlp.gate_proj", hidden, intermediate, tokens=sequence_length, repeat=depth),
        LinearSpec("mlp.up_proj", hidden, intermediate, tokens=sequence_length, repeat=depth),
        LinearSpec("mlp.down_proj", intermediate, hidden, tokens=sequence_length, repeat=depth),
        LinearSpec("lm_head", hidden, 128256, tokens=sequence_length),
    )
    return ModelSpec(
        name="Llama-3-8B",
        family="llm",
        dataset="Wikitext/C4",
        layers=layers,
        fp32_accuracy=0.0,
        int8_accuracy=0.0,
        activation_value_sparsity=0.02,
        notes="Decoder-only LLM; evaluated through the perplexity proxy of Figure 17.",
    )


MODEL_BUILDERS = {
    "VGG-16": vgg16,
    "ResNet-34": resnet34,
    "ResNet-50": resnet50,
    "ViT-Small": vit_small,
    "ViT-Base": vit_base,
    "BERT-MRPC": lambda: bert_base("MRPC"),
    "BERT-SST2": lambda: bert_base("SST2"),
    "Llama-3-8B": llama3_8b,
}


def benchmark_models() -> list[ModelSpec]:
    """The seven DNN benchmarks of Table I (excludes the Llama-3-8B LLM study)."""
    return [
        vgg16(),
        resnet34(),
        resnet50(),
        vit_small(),
        vit_base(),
        bert_base("MRPC"),
        bert_base("SST2"),
    ]


def get_model(name: str) -> ModelSpec:
    """Look up a benchmark model by its paper name (e.g. ``"ResNet-50"``)."""
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[name]()
