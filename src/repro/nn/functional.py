"""Numpy implementations of the DNN operators the benchmark models use.

The paper's evaluation runs seven pre-trained PyTorch/HuggingFace models.  We
do not have PyTorch in this environment, so this module provides the numpy
forward kernels needed to (a) execute small end-to-end networks for the
accuracy experiments and (b) define the dataflow semantics (im2col GEMM view)
that the accelerator models and the binary-pruning code share.

All kernels use the ``(batch, channels, height, width)`` layout for images and
``(batch, tokens, features)`` for sequences, matching PyTorch conventions so
the model-zoo layer shapes read exactly like the published architectures.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "linear",
    "relu",
    "gelu",
    "softmax",
    "log_softmax",
    "layer_norm",
    "batch_norm",
    "max_pool2d",
    "avg_pool2d",
    "scaled_dot_product_attention",
    "cross_entropy",
]


def im2col(
    inputs: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into GEMM columns.

    Parameters
    ----------
    inputs:
        ``(batch, channels, height, width)`` tensor.
    kernel, stride, padding:
        Square kernel size, stride and symmetric zero padding.

    Returns
    -------
    tuple
        ``(columns, out_height, out_width)`` where ``columns`` has shape
        ``(batch, out_height * out_width, channels * kernel * kernel)``.
    """
    batch, channels, height, width = inputs.shape
    if padding:
        inputs = np.pad(
            inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} and padding {padding} does not "
            f"fit a {height}x{width} input"
        )
    # Gather strided patch views, then reshape to GEMM columns.
    strides = inputs.strides
    view = np.lib.stride_tricks.as_strided(
        inputs,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    columns = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(columns), out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold GEMM columns back into an image tensor (adjoint of :func:`im2col`)."""
    batch, channels, height, width = input_shape
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    patches = columns.reshape(batch, out_h, out_w, channels, kernel, kernel)
    output = np.zeros((batch, channels, padded_h, padded_w), dtype=columns.dtype)
    for row in range(kernel):
        for col in range(kernel):
            output[:, :, row : row + stride * out_h : stride,
                   col : col + stride * out_w : stride] += patches[
                :, :, :, :, row, col
            ].transpose(0, 3, 1, 2)
    if padding:
        output = output[:, :, padding:-padding, padding:-padding]
    return output


def conv2d(
    inputs: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution via im2col GEMM.

    ``weight`` has shape ``(out_channels, in_channels, kernel, kernel)``.
    """
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if inputs.shape[1] != in_channels:
        raise ValueError(
            f"input has {inputs.shape[1]} channels, weight expects {in_channels}"
        )
    columns, out_h, out_w = im2col(inputs, kernel, stride, padding)
    flat_weight = weight.reshape(out_channels, -1)
    output = columns @ flat_weight.T  # (batch, out_h*out_w, out_channels)
    if bias is not None:
        output = output + bias
    return output.transpose(0, 2, 1).reshape(inputs.shape[0], out_channels, out_h, out_w)


def linear(
    inputs: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Affine transform ``inputs @ weight.T + bias`` (PyTorch weight layout)."""
    output = inputs @ weight.T
    if bias is not None:
        output = output + bias
    return output


def relu(inputs: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(inputs, 0.0)


def gelu(inputs: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as used by ViT/BERT)."""
    return (
        0.5
        * inputs
        * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (inputs + 0.044715 * inputs**3)))
    )


def softmax(inputs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = inputs - inputs.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(inputs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = inputs - inputs.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def layer_norm(
    inputs: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over the last dimension."""
    mean = inputs.mean(axis=-1, keepdims=True)
    var = inputs.var(axis=-1, keepdims=True)
    normalized = (inputs - mean) / np.sqrt(var + epsilon)
    if gamma is not None:
        normalized = normalized * gamma
    if beta is not None:
        normalized = normalized + beta
    return normalized


def batch_norm(
    inputs: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalization for ``(batch, channels, H, W)`` tensors."""
    shape = (1, -1, 1, 1)
    normalized = (inputs - running_mean.reshape(shape)) / np.sqrt(
        running_var.reshape(shape) + epsilon
    )
    if gamma is not None:
        normalized = normalized * gamma.reshape(shape)
    if beta is not None:
        normalized = normalized + beta.reshape(shape)
    return normalized


def max_pool2d(inputs: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Max pooling with a square window."""
    stride = stride or kernel
    batch, channels, height, width = inputs.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = inputs.strides
    view = np.lib.stride_tricks.as_strided(
        inputs,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return view.max(axis=(4, 5))


def avg_pool2d(inputs: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Average pooling with a square window."""
    stride = stride or kernel
    batch, channels, height, width = inputs.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = inputs.strides
    view = np.lib.stride_tricks.as_strided(
        inputs,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return view.mean(axis=(4, 5))


def scaled_dot_product_attention(
    query: np.ndarray, key: np.ndarray, value: np.ndarray
) -> np.ndarray:
    """Standard attention ``softmax(Q K^T / sqrt(d)) V`` over the last two dims."""
    d = query.shape[-1]
    scores = query @ np.swapaxes(key, -1, -2) / np.sqrt(d)
    return softmax(scores, axis=-1) @ value


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer labels under the rows of ``logits``."""
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    return float(-log_probs[rows, labels].mean())
