"""A tiny trainable network for end-to-end accuracy experiments.

The paper reports ImageNet / GLUE accuracy of models compressed with BBS,
BitWave and PTQ.  We cannot evaluate those datasets offline, so the accuracy
experiments in this reproduction use (a) the paper's own distribution-level
proxy (KL divergence, Figure 6) and (b) a real — if small — end-to-end
measurement provided by this module: a multi-layer perceptron trained with
plain numpy on a synthetic non-linearly-separable classification task, whose
per-channel-quantized weights are then compressed by each method and whose
test accuracy is re-measured.  The *ordering* of the methods and the shape of
the accuracy-vs-compression trade-off are the quantities being reproduced;
absolute accuracies obviously differ from ImageNet.

The MLP uses manual backpropagation (no autograd dependency) with Adam, and
is deliberately over-parameterized for the task so that, like the paper's
8-bit baselines, INT8 quantization itself costs essentially no accuracy and
any degradation is attributable to the compression method under test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import functional as F
from ..quant.ptq import quantize_per_channel

__all__ = [
    "ClassificationDataset",
    "make_classification_dataset",
    "MLPClassifier",
    "accuracy_under_compression",
]


@dataclass
class ClassificationDataset:
    """A train/test split of a synthetic classification problem."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_features(self) -> int:
        return self.train_x.shape[1]

    @property
    def num_classes(self) -> int:
        return int(self.train_y.max()) + 1


def make_classification_dataset(
    num_samples: int = 4000,
    num_features: int = 64,
    num_classes: int = 10,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> ClassificationDataset:
    """Build a non-linearly-separable Gaussian-cluster classification task.

    Each class is a mixture of two Gaussian clusters pushed through a fixed
    random rotation and a mild non-linearity, so a linear model underfits but
    a small MLP reaches high accuracy — leaving headroom for compression to
    visibly hurt.
    """
    rng = np.random.default_rng(seed)
    samples_per_class = num_samples // num_classes
    xs = []
    ys = []
    rotation = rng.normal(0, 1.0, size=(num_features, num_features)) / np.sqrt(num_features)
    for label in range(num_classes):
        for _ in range(2):  # two clusters per class
            center = rng.normal(0, 2.0, size=num_features)
            cluster = rng.normal(0, 1.0, size=(samples_per_class // 2, num_features)) + center
            xs.append(cluster)
            ys.append(np.full(cluster.shape[0], label))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    x = np.tanh(x @ rotation) + 0.1 * x

    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    split = int(len(x) * (1.0 - test_fraction))
    return ClassificationDataset(
        train_x=x[:split], train_y=y[:split], test_x=x[split:], test_y=y[split:]
    )


class MLPClassifier:
    """A small fully-connected classifier trained with Adam + backprop."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden_sizes: tuple[int, ...] = (256, 256, 128),
        seed: int = 0,
    ):
        self.sizes = (num_features, *hidden_sizes, num_classes)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(self.sizes[:-1], self.sizes[1:], strict=True):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-limit, limit, size=(fan_out, fan_in)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------ forward
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a batch of inputs."""
        hidden = inputs
        last = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases, strict=True)):
            hidden = F.linear(hidden, weight, bias)
            if index != last:
                hidden = F.relu(hidden)
        return hidden

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs).argmax(axis=-1)

    def evaluate(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy in percent."""
        return float((self.predict(inputs) == labels).mean() * 100.0)

    # ------------------------------------------------------------------- training
    def train(
        self,
        dataset: ClassificationDataset,
        epochs: int = 30,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> float:
        """Train with Adam and return the final test accuracy (percent)."""
        rng = np.random.default_rng(seed)
        m_w = [np.zeros_like(w) for w in self.weights]
        v_w = [np.zeros_like(w) for w in self.weights]
        m_b = [np.zeros_like(b) for b in self.biases]
        v_b = [np.zeros_like(b) for b in self.biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for epoch in range(epochs):
            order = rng.permutation(len(dataset.train_x))
            for start in range(0, len(order), batch_size):
                batch = order[start : start + batch_size]
                x = dataset.train_x[batch]
                y = dataset.train_y[batch]
                grads_w, grads_b = self._backward(x, y)
                step += 1
                for i in range(len(self.weights)):
                    m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                    v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                    m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                    v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                    m_w_hat = m_w[i] / (1 - beta1**step)
                    v_w_hat = v_w[i] / (1 - beta2**step)
                    m_b_hat = m_b[i] / (1 - beta1**step)
                    v_b_hat = v_b[i] / (1 - beta2**step)
                    self.weights[i] -= learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    self.biases[i] -= learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
            if verbose:
                acc = self.evaluate(dataset.test_x, dataset.test_y)
                print(f"epoch {epoch + 1:3d}: test accuracy {acc:.2f}%")
        return self.evaluate(dataset.test_x, dataset.test_y)

    def _backward(
        self, inputs: np.ndarray, labels: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Cross-entropy gradients for one batch (manual backprop)."""
        activations = [inputs]
        pre_activations = []
        hidden = inputs
        last = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases, strict=True)):
            pre = F.linear(hidden, weight, bias)
            pre_activations.append(pre)
            hidden = F.relu(pre) if index != last else pre
            activations.append(hidden)

        batch = inputs.shape[0]
        probabilities = F.softmax(activations[-1], axis=-1)
        delta = probabilities
        delta[np.arange(batch), labels] -= 1.0
        delta /= batch

        grads_w: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        for index in range(len(self.weights) - 1, -1, -1):
            grads_w[index] = delta.T @ activations[index]
            grads_b[index] = delta.sum(axis=0)
            if index > 0:
                delta = (delta @ self.weights[index]) * (pre_activations[index - 1] > 0)
        return grads_w, grads_b

    # ------------------------------------------------------------------ weights
    def weight_matrices(self) -> dict[str, np.ndarray]:
        """Weights in GEMM layout keyed by layer name (``fc0``, ``fc1``, ...)."""
        return {f"fc{i}": w.copy() for i, w in enumerate(self.weights)}

    def with_weight_matrices(self, matrices: dict[str, np.ndarray]) -> "MLPClassifier":
        """Return a copy of the classifier with replaced weights."""
        clone = MLPClassifier(self.sizes[0], self.sizes[-1], tuple(self.sizes[1:-1]))
        clone.weights = [w.copy() for w in self.weights]
        clone.biases = [b.copy() for b in self.biases]
        for index in range(len(clone.weights)):
            name = f"fc{index}"
            if name in matrices:
                replacement = np.asarray(matrices[name], dtype=np.float64)
                if replacement.shape != clone.weights[index].shape:
                    raise ValueError(
                        f"{name}: expected shape {clone.weights[index].shape}, "
                        f"got {replacement.shape}"
                    )
                clone.weights[index] = replacement
        return clone


def accuracy_under_compression(
    model: MLPClassifier,
    dataset: ClassificationDataset,
    compress_int_weights,
    skip_last_layer: bool = True,
) -> float:
    """Accuracy (percent) of the model after compressing its INT8 weights.

    ``compress_int_weights(name, int_weights, scales)`` receives each layer's
    per-channel-quantized INT8 weight matrix and must return the compressed
    integer weights (same shape, same scale interpretation).  The classifier
    head (last layer) is kept at 8 bits by default, mirroring standard
    practice (and the paper's sensitive-channel protection of small critical
    layers).
    """
    matrices = model.weight_matrices()
    names = list(matrices)
    replacement: dict[str, np.ndarray] = {}
    for index, name in enumerate(names):
        float_weights = matrices[name]
        quantized = quantize_per_channel(float_weights, bits=8)
        if skip_last_layer and index == len(names) - 1:
            new_int = quantized.values
        else:
            new_int = compress_int_weights(name, quantized.values, quantized.scales)
        replacement[name] = new_int.astype(np.float64) * quantized.scales[:, None]
    compressed = model.with_weight_matrices(replacement)
    return compressed.evaluate(dataset.test_x, dataset.test_y)
