"""Per-tenant API keys and quotas for the gateway front door.

Tenants are declared in a JSON keys file::

    {
      "tenants": [
        {"name": "research", "key": "rk-...", "rate": 50.0,
         "burst": 100, "max_inflight": 32},
        {"name": "ci", "key": "ck-...", "rate": 5.0, "max_inflight": 4}
      ]
    }

``rate`` is sustained requests/second refilling a token bucket of capacity
``burst`` (default: ``max(rate, 1)`` rounded up), and ``max_inflight`` caps
concurrently outstanding submissions.  Either limit may be omitted (``null``
or absent = unlimited).  Requests authenticate with
``Authorization: Bearer <key>``; an unknown or missing key is refused with
401 when quotas are configured at all, and a quota rejection maps to the
service's existing 429 + ``Retry-After`` contract so every client retry path
(backoff, hints, dispatcher saturation handling) applies unchanged.

Tenant names form a **closed label set** (the file is read once at startup),
so the per-tenant request metrics stay bounded-cardinality; unauthenticated
traffic on a quota-free gateway is labelled ``anonymous``.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..obs.metrics import get_metrics

__all__ = [
    "QuotaExceeded",
    "Tenant",
    "TenantQuotas",
    "UnknownKeyError",
    "load_keys_file",
]

#: Tenant names label metrics, so they are restricted like node ids.
_TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Label value for requests with no (valid) tenant on a quota-free gateway.
ANONYMOUS_TENANT = "anonymous"

_OBS = get_metrics()
_REJECTIONS = _OBS.counter(
    "repro_gateway_quota_rejections_total",
    "Gateway requests refused by tenant quotas, by tenant and reason "
    "(rate, inflight, unauthorized).",
    ("tenant", "reason"),
)


class UnknownKeyError(ValueError):
    """No tenant owns the presented API key (or none was presented)."""


class QuotaExceeded(Exception):
    """A tenant hit its rate or in-flight ceiling; retry after a hint."""

    def __init__(self, tenant: str, reason: str, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} exceeded its {reason} quota; "
            f"retry after {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.reason = reason
        self.retry_after = max(float(retry_after), 0.0)


@dataclass
class Tenant:
    """One tenant's identity and limits (``None`` limit = unlimited)."""

    name: str
    key: str
    rate: float | None = None
    burst: float | None = None
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if not _TENANT_NAME_RE.match(self.name):
            raise ValueError(
                f"invalid tenant name {self.name!r}: one metric-safe segment "
                "of at most 64 characters ([A-Za-z0-9._-])"
            )
        if not self.key or not isinstance(self.key, str):
            raise ValueError(f"tenant {self.name!r} needs a non-empty string key")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"tenant {self.name!r}: rate must be > 0")
        if self.burst is None and self.rate is not None:
            self.burst = float(math.ceil(max(self.rate, 1.0)))
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"tenant {self.name!r}: burst must be >= 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"tenant {self.name!r}: max_inflight must be >= 1")


def load_keys_file(path: str | Path, clock: Callable[[], float] = time.monotonic) -> "TenantQuotas":
    """Parse a keys file (see module docstring) into :class:`TenantQuotas`."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or not isinstance(raw.get("tenants"), list):
        raise ValueError(f"keys file {path}: expected {{'tenants': [...]}}")
    tenants = []
    for entry in raw["tenants"]:
        if not isinstance(entry, dict):
            raise ValueError(f"keys file {path}: tenant entries must be objects")
        unknown = set(entry) - {"name", "key", "rate", "burst", "max_inflight"}
        if unknown:
            raise ValueError(
                f"keys file {path}: unknown tenant fields {sorted(unknown)}"
            )
        tenants.append(
            Tenant(
                name=entry.get("name", ""),
                key=entry.get("key", ""),
                rate=None if entry.get("rate") is None else float(entry["rate"]),
                burst=None if entry.get("burst") is None else float(entry["burst"]),
                max_inflight=(
                    None
                    if entry.get("max_inflight") is None
                    else int(entry["max_inflight"])
                ),
            )
        )
    return TenantQuotas(tenants, clock=clock)


class TenantQuotas:
    """Thread-safe token buckets + in-flight caps keyed by API key.

    ``clock`` is injectable monotonic seconds so refill is unit testable.
    In-flight slots are keyed by ``(tenant, content digest)`` and released
    when the gateway observes a terminal state (or a cancel), so a tenant's
    budget survives gateway-side failover: the slot follows the work, not
    the node it ran on.  Two tenants submitting the same digest each hold
    (and are each charged) their own slot; the shared job finishing frees
    both, since the digest is what reaches a terminal state.
    """

    def __init__(self, tenants: list[Tenant], clock: Callable[[], float] = time.monotonic):
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError("duplicate tenant names in keys file")
        keys = [tenant.key for tenant in tenants]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate tenant keys in keys file")
        self._clock = clock
        self._lock = threading.Lock()
        self._by_key = {tenant.key: tenant for tenant in tenants}
        self._tenants = {tenant.name: tenant for tenant in tenants}
        self._tokens = {
            tenant.name: float(tenant.burst or 0.0) for tenant in tenants
        }
        self._refilled = {tenant.name: clock() for tenant in tenants}
        self._inflight: set[tuple[str, str]] = set()  # (tenant name, digest)

    @property
    def tenant_names(self) -> tuple[str, ...]:
        """Closed set of label values (sorted; excludes ``anonymous``)."""
        return tuple(sorted(self._tenants))

    def tenant_for(self, authorization: str | None) -> Tenant:
        """Resolve an ``Authorization`` header to a tenant or raise."""
        if not authorization:
            _REJECTIONS.inc(tenant=ANONYMOUS_TENANT, reason="unauthorized")
            raise UnknownKeyError("missing Authorization: Bearer <key> header")
        scheme, _, key = authorization.partition(" ")
        key = key.strip()
        if scheme.lower() != "bearer" or not key:
            _REJECTIONS.inc(tenant=ANONYMOUS_TENANT, reason="unauthorized")
            raise UnknownKeyError("Authorization header must be 'Bearer <key>'")
        tenant = self._by_key.get(key)
        if tenant is None:
            _REJECTIONS.inc(tenant=ANONYMOUS_TENANT, reason="unauthorized")
            raise UnknownKeyError("unknown API key")
        return tenant

    def admit(self, tenant: Tenant) -> None:
        """Charge one request against the tenant's rate bucket or raise."""
        if tenant.rate is None:
            return
        with self._lock:
            now = self._clock()
            tokens = min(
                float(tenant.burst or 0.0),
                self._tokens[tenant.name]
                + (now - self._refilled[tenant.name]) * tenant.rate,
            )
            self._refilled[tenant.name] = now
            if tokens < 1.0:
                self._tokens[tenant.name] = tokens
                retry_after = (1.0 - tokens) / tenant.rate
                _REJECTIONS.inc(tenant=tenant.name, reason="rate")
                raise QuotaExceeded(tenant.name, "rate", retry_after)
            self._tokens[tenant.name] = tokens - 1.0

    def acquire(self, tenant: Tenant, job_id: str) -> None:
        """Claim the tenant's in-flight slot for ``job_id`` or raise.

        Idempotent per ``(tenant, job_id)`` — a re-submission of work the
        tenant already has in flight costs nothing extra.  A *different*
        tenant submitting the same digest claims (and is charged) its own
        slot, so one tenant's traffic never deflates another's accounting.
        """
        with self._lock:
            slot = (tenant.name, job_id)
            if slot in self._inflight:
                return
            if tenant.max_inflight is not None:
                held = sum(
                    1 for owner, _ in self._inflight if owner == tenant.name
                )
                if held >= tenant.max_inflight:
                    _REJECTIONS.inc(tenant=tenant.name, reason="inflight")
                    raise QuotaExceeded(tenant.name, "inflight", 1.0)
            self._inflight.add(slot)

    def release(self, job_id: str) -> None:
        """Free every tenant's slot for a finished/cancelled job (idempotent).

        The shared job reached a terminal state once, for everyone who
        submitted it — each holder's slot frees exactly once.
        """
        with self._lock:
            self._inflight = {
                slot for slot in self._inflight if slot[1] != job_id
            }

    def inflight(self, tenant_name: str) -> int:
        with self._lock:
            return sum(
                1 for owner, _ in self._inflight if owner == tenant_name
            )
