"""repro.gateway — decentralized control plane for a repro fleet.

One gateway process fronts any number of ``repro serve`` nodes: nodes
self-register and heartbeat (:mod:`.registry`, :mod:`.agent`), submissions
route by content digest over a consistent-hash ring (:mod:`.ring`) so
repeated work lands on the node whose cache holds it, journals replicate to
the gateway (:mod:`.replication`) so a SIGKILLed node's unfinished jobs
replay onto survivors, and tenants are metered with API keys and quotas
(:mod:`.quotas`).  See ``docs/gateway.md`` for the full tour.
"""

from .agent import GatewayAgent
from .quotas import (
    ANONYMOUS_TENANT,
    QuotaExceeded,
    Tenant,
    TenantQuotas,
    UnknownKeyError,
    load_keys_file,
)
from .registry import (
    Node,
    NodeRegistry,
    RegistrySkewError,
    UnknownNodeError,
    compute_registry_digest,
    node_id_for_url,
)
from .replication import ReplicaStore
from .ring import HashRing
from .server import GATEWAY_ROUTES, GatewayServer, create_gateway

__all__ = [
    "ANONYMOUS_TENANT",
    "GATEWAY_ROUTES",
    "GatewayAgent",
    "GatewayServer",
    "HashRing",
    "Node",
    "NodeRegistry",
    "QuotaExceeded",
    "RegistrySkewError",
    "ReplicaStore",
    "Tenant",
    "TenantQuotas",
    "UnknownKeyError",
    "UnknownNodeError",
    "compute_registry_digest",
    "create_gateway",
    "load_keys_file",
    "node_id_for_url",
]
