"""Node-side gateway agent: register, heartbeat, stream the journal.

``repro serve --register URL`` attaches one of these to the node's server.
It does three things, all best-effort and none on the request path:

* **Register** once at startup (``POST /v1/nodes`` with the node's URL and
  registry digest) — synchronously, so a node whose registry digest the
  gateway refuses (HTTP 409, skew) fails fast and visibly instead of
  serving unroutable work.
* **Heartbeat** every ``heartbeat_interval`` seconds with the pool's queue
  depth and the digest; a 404 answer means the gateway restarted or swept
  this node to dead — the agent simply re-registers and carries on.
* **Replicate** journal lines: a sink on the node's :class:`JobJournal`
  buffers every appended line (bounded — oldest dropped beyond
  ``buffer_limit``), and the heartbeat thread flushes the buffer to
  ``POST /v1/nodes/<id>/journal``.  Failures requeue the lines; the node's
  own journal remains the durable copy either way.

The agent owns one background thread; :meth:`stop` joins it, performs a
final flush, and deregisters gracefully (the gateway marks the node "left"
instead of sweeping it to dead and replaying its finished work).
"""

from __future__ import annotations

import threading

from ..service.client import ServiceClient, ServiceError, ServiceRequestError
from .registry import compute_registry_digest, node_id_for_url

__all__ = ["GatewayAgent"]


class GatewayAgent:
    """Registers ``server`` with a gateway and keeps it registered."""

    def __init__(
        self,
        gateway_url: str,
        node_url: str,
        server,
        heartbeat_interval: float = 1.0,
        node_id: str | None = None,
        buffer_limit: int = 10_000,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        self.gateway_url = gateway_url.rstrip("/")
        self.node_url = node_url.rstrip("/")
        self.server = server
        self.heartbeat_interval = heartbeat_interval
        self.buffer_limit = buffer_limit
        self.registry_digest = compute_registry_digest(server.registry)
        self.node_id = node_id or node_id_for_url(self.node_url)
        # One quick retry only: the heartbeat loop itself is the real retry
        # mechanism, and a slow gateway must not stall the loop for long.
        self.client = ServiceClient(
            self.gateway_url, timeout=10.0, retries=1, backoff=0.1
        )
        self.heartbeat_failures = 0
        self.flush_failures = 0
        self.reregistrations = 0
        self.dropped_lines = 0
        self._lock = threading.Lock()
        self._buffer: list[str] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> dict:
        """Register (raising on refusal) and start the heartbeat thread."""
        reply = self.client.request(
            "POST",
            "/v1/nodes",
            {
                "url": self.node_url,
                "registry_digest": self.registry_digest,
                "node_id": self.node_id,
            },
        )
        journal = getattr(self.server, "journal", None)
        if journal is not None:
            journal.add_sink(self._enqueue)
        thread = threading.Thread(
            target=self._run, name=f"gateway-agent-{self.node_id}", daemon=True
        )
        with self._lock:
            self._thread = thread
        thread.start()
        return reply

    def stop(self) -> None:
        """Stop heartbeating, flush the buffer, deregister gracefully."""
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=self.heartbeat_interval + 10.0)
        journal = getattr(self.server, "journal", None)
        if journal is not None:
            journal.remove_sink(self._enqueue)
        self.flush()
        try:
            self.client.request(
                "POST", f"/v1/nodes/{self.node_id}/deregister", {}
            )
        except ServiceError:
            # The gateway may already be gone; its sweeper will notice us
            # missing either way, so a failed goodbye is only worth a tally.
            self.heartbeat_failures += 1

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            self.flush()
            self.heartbeat()

    # ------------------------------------------------------------------ #
    # Journal replication
    # ------------------------------------------------------------------ #

    def _enqueue(self, line: str) -> None:
        """Journal sink: buffer one raw line for the next flush."""
        with self._lock:
            self._buffer.append(line)
            overflow = len(self._buffer) - self.buffer_limit
            if overflow > 0:
                del self._buffer[:overflow]
                self.dropped_lines += overflow

    def pending_lines(self) -> int:
        with self._lock:
            return len(self._buffer)

    def flush(self) -> None:
        """Ship buffered journal lines to the gateway; requeue on failure."""
        with self._lock:
            lines = self._buffer
            self._buffer = []
        if not lines:
            return
        try:
            self.client.request(
                "POST",
                f"/v1/nodes/{self.node_id}/journal",
                {"lines": lines},
            )
        except ServiceRequestError as error:
            self.flush_failures += 1
            if error.status == 404:
                # Gateway restarted or declared us dead: rejoin, keep lines.
                self._requeue(lines)
                self._reregister()
            else:
                # A non-404 4xx means the gateway examined and refused the
                # payload; resending the same lines would loop forever.
                with self._lock:
                    self.dropped_lines += len(lines)
        except ServiceError:
            self.flush_failures += 1
            self._requeue(lines)

    def _requeue(self, lines: list[str]) -> None:
        with self._lock:
            self._buffer[:0] = lines
            overflow = len(self._buffer) - self.buffer_limit
            if overflow > 0:
                del self._buffer[:overflow]
                self.dropped_lines += overflow

    # ------------------------------------------------------------------ #
    # Heartbeats
    # ------------------------------------------------------------------ #

    def heartbeat(self) -> None:
        try:
            queue_depth = int(self.server.pool.stats().get("inflight", 0))
        except (AttributeError, TypeError, ValueError):
            queue_depth = 0
        try:
            self.client.request(
                "POST",
                f"/v1/nodes/{self.node_id}/heartbeat",
                {
                    "queue_depth": queue_depth,
                    "registry_digest": self.registry_digest,
                    "url": self.node_url,
                },
            )
        except ServiceRequestError as error:
            self.heartbeat_failures += 1
            if error.status == 404:
                self._reregister()
        except ServiceError:
            self.heartbeat_failures += 1

    def _reregister(self) -> None:
        try:
            self.client.request(
                "POST",
                "/v1/nodes",
                {
                    "url": self.node_url,
                    "registry_digest": self.registry_digest,
                    "node_id": self.node_id,
                },
            )
            self.reregistrations += 1
        except ServiceError:
            self.heartbeat_failures += 1

    def stats(self) -> dict:
        return {
            "node_id": self.node_id,
            "gateway": self.gateway_url,
            "pending_lines": self.pending_lines(),
            "heartbeat_failures": self.heartbeat_failures,
            "flush_failures": self.flush_failures,
            "reregistrations": self.reregistrations,
            "dropped_lines": self.dropped_lines,
        }
