"""The gateway front door: one URL that routes, replicates, and fails over.

``repro gateway`` serves the same submission surface as a node
(``POST /v1/jobs``, ``/v1/compress``, ``/v1/campaign``) plus the node-ops
endpoints the fleet uses to assemble itself.  Clients — above all
:class:`~repro.campaign.dispatch.CampaignDispatcher` in gateway mode — talk
to the gateway exactly as they would to a single node; the gateway:

* **canonicalizes** every submission with the same shared helpers nodes use
  (:func:`~repro.service.server.canonicalize_compress` et al.), computes the
  content digest *before* choosing a node, and
* **routes by digest** over a consistent-hash ring (:mod:`.ring`), so a
  re-submitted job lands on the node whose result cache already holds it;
  the node's answer must echo the same digest or the proxy answers 502
  (registry skew caught per-response, as the dispatcher does);
* **replicates journals**: nodes stream their journal lines in, and the
  gateway writes its own submit line per routed job at proxy time — so a
  node SIGKILLed before its shipper flushed still leaves the gateway
  knowing every job it owed;
* **fails over**: when the registry sweeps a node to dead, its unfinished
  replica jobs are replayed onto ring survivors; polls for a dead node's
  jobs answer synthetically (``state: "queued"``) until the replacement
  exists, then follow the mapping — the dispatcher never sees the death;
* **meters tenants**: with a keys file, submissions authenticate with
  ``Authorization: Bearer`` and are charged against per-tenant token-bucket
  rate and max-inflight quotas (429 + ``Retry-After``, same contract as a
  saturated node queue).

Gateway job ids are ``<remote id>@<node id>``; the proxy rewrites ids on the
way out and back so callers never handle node-local ids.
"""

from __future__ import annotations

import json
import math
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics
from ..service.client import (
    ServiceClient,
    ServiceError,
    ServiceRequestError,
    ServiceUnavailable,
)
from ..service.registry import ScenarioRegistry, build_default_registry
from ..service.server import canonicalize_campaign, canonicalize_compress
from ..service.workers import job_digest
from .quotas import ANONYMOUS_TENANT, QuotaExceeded, TenantQuotas, UnknownKeyError
from .registry import NodeRegistry, RegistrySkewError, UnknownNodeError, compute_registry_digest
from .replication import ReplicaStore
from .ring import HashRing

__all__ = ["GATEWAY_ROUTES", "GatewayServer", "create_gateway"]

#: The gateway's route table — snapshotted by ``scripts/check_api_surface.py``
#: (``gateway_routes``) so the front-door surface is an explicit contract,
#: like the node's ``V1_ROUTES``.
GATEWAY_ROUTES = (
    "GET /v1/codecs",
    "GET /v1/gateway/nodes",
    "GET /v1/health",
    "GET /v1/healthz",
    "GET /v1/jobs",
    "GET /v1/jobs/<id>",
    "GET /v1/jobs/<id>/result",
    "GET /v1/jobs/<id>/trace",
    "GET /v1/metrics",
    "GET /v1/readyz",
    "GET /v1/scenarios",
    "POST /v1/campaign",
    "POST /v1/compress",
    "POST /v1/jobs",
    "POST /v1/jobs/<id>/cancel",
    "POST /v1/nodes",
    "POST /v1/nodes/<id>/deregister",
    "POST /v1/nodes/<id>/heartbeat",
    "POST /v1/nodes/<id>/journal",
)

_GATEWAY_ROUTE_SET = frozenset(GATEWAY_ROUTES)

#: Same body bound as the node servers (a campaign spec is a few KiB).
MAX_BODY_BYTES = 16 * 1024 * 1024

_OBS = get_metrics()
_GW_REQUESTS = _OBS.counter(
    "repro_gateway_requests_total",
    "Gateway requests served, by route pattern, status code, and tenant.",
    ("route", "status", "tenant"),
)
_GW_SECONDS = _OBS.histogram(
    "repro_gateway_proxy_seconds",
    "Gateway request handling latency (including the proxied hop) per route.",
    ("route",),
)
_FAILOVER = _OBS.counter(
    "repro_gateway_failover_replays_total",
    "Jobs considered by failover replay, by outcome "
    "(replayed, already_finished, failed).",
    ("outcome",),
)

#: Terminal job states, mirrored from the node API (string form — the
#: gateway never imports job objects, it only proxies their JSON).
_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def _route_label(method: str, parts: list[str]) -> str:
    """Collapse a request to its route pattern; unknown paths -> unrouted."""
    normalized = list(parts)
    if len(normalized) >= 2 and normalized[0] in ("jobs", "nodes"):
        normalized[1] = "<id>"
    candidate = "/v1/" + "/".join(normalized)
    if f"{method} {candidate}" in _GATEWAY_ROUTE_SET:
        return candidate
    return "unrouted"


def _parse_deadline(body: dict) -> float | None:
    value = body.get("deadline_s")
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or not value > 0:
        raise ValueError('"deadline_s" must be a positive number of seconds')
    return float(value)


class NoRouteError(Exception):
    """No healthy node can take this submission right now."""


class FleetSaturated(Exception):
    """The digest's node answered 429 through every attempt."""

    def __init__(self, node_id: str, cause: str, retry_after: float = 1.0):
        super().__init__(f"node {node_id} saturated: {cause}")
        self.node_id = node_id
        self.retry_after = retry_after


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, close: bool = False):
        super().__init__(message)
        self.status = status
        self.message = message
        self.close = close


class _GatewayHandler(BaseHTTPRequestHandler):
    server: "GatewayServer"
    server_version = "repro-gateway/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing (mirrors the node handler's envelope guarantees)
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, extra_headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self._observed_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._observed_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _split_path(self, url) -> list[str]:
        """Path segments under ``/v1``.  The gateway is ``/v1``-only — it was
        born versioned, so there is no legacy alias surface to carry."""
        parts = [part for part in url.path.split("/") if part]
        if parts and parts[0] == "v1":
            return parts[1:]
        return ["", *parts]  # unrouted namespace -> 404

    def _drain_body(self) -> bytes:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            raise _HTTPError(
                400, f"invalid Content-Length header {raw_length!r}", close=True
            ) from None
        if length < 0:
            raise _HTTPError(
                400, f"invalid Content-Length header {raw_length!r}", close=True
            )
        if length > MAX_BODY_BYTES:
            raise _HTTPError(
                413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}",
                close=True,
            )
        return self.rfile.read(length) if length else b""

    def _parse_json_body(self, raw: bytes) -> dict:
        if not raw:
            raise _HTTPError(400, "empty request body; expected a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _HTTPError(400, f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body

    def _handle(self, route) -> None:
        """Observability choke point: metrics + one ``gateway.request`` span.

        The tenant label starts ``anonymous`` and is upgraded once a
        submission authenticates, so the per-tenant request counter stays a
        closed set (keys-file names + anonymous).
        """
        url = urlsplit(self.path)
        route_label = _route_label(self.command, self._split_path(url))
        self._observed_status = 0
        self._tenant_label = ANONYMOUS_TENANT
        request_span = obs_trace.start_span(
            "gateway.request",
            attrs={"method": self.command, "route": route_label, "path": url.path},
            parent=obs_trace.parse_traceparent(
                self.headers.get(obs_trace.TRACE_HEADER)
            ),
        )
        started = time.perf_counter()
        try:
            with obs_trace.activate(request_span):
                self._dispatch_route(route)
        finally:
            status = self._observed_status
            request_span.set_attr("status", status)
            request_span.finish(
                status="error" if status >= 500 or status == 0 else "ok"
            )
            _GW_SECONDS.observe(time.perf_counter() - started, route=route_label)
            _GW_REQUESTS.inc(
                route=route_label, status=str(status), tenant=self._tenant_label
            )

    def _dispatch_route(self, route) -> None:
        try:
            route()
        except _HTTPError as error:
            if error.close:
                self.close_connection = True
            self._send_json(error.status, {"error": error.message})
        except UnknownKeyError as error:
            self._send_json(
                401,
                {"error": str(error)},
                extra_headers={"WWW-Authenticate": "Bearer"},
            )
        except QuotaExceeded as error:
            self._send_json(
                429,
                {
                    "error": str(error),
                    "tenant": error.tenant,
                    "reason": error.reason,
                    "retry_after": error.retry_after,
                },
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
            )
        except RegistrySkewError as error:
            self._send_json(409, {"error": str(error)})
        except UnknownNodeError as error:
            node_id = error.args[0] if error.args else "?"
            self._send_json(404, {"error": f"unknown node {node_id!r}"})
        except FleetSaturated as error:
            self._send_json(
                429,
                {"error": str(error), "retry_after": error.retry_after},
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
            )
        except NoRouteError as error:
            self._send_json(
                503, {"error": f"no healthy node available: {error}"}
            )
        except ServiceRequestError as error:
            # A node answered with a definitive error: pass it through under
            # the node's own status so clients see one consistent API.
            payload = error.payload if isinstance(error.payload, dict) else None
            self._send_json(error.status, payload or {"error": str(error)})
        except ServiceUnavailable as error:
            self._send_json(502, {"error": f"node unreachable: {error}"})
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away; nothing to send
        except Exception as error:  # noqa: BLE001 - last-resort envelope
            self.close_connection = True
            try:
                self._send_json(
                    500,
                    {"error": f"internal gateway error: {type(error).__name__}: {error}"},
                )
            except (BrokenPipeError, ConnectionResetError, OSError, ValueError, TypeError):
                self._observed_status = 0  # connection unusable; span says error

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle(self._route_post)

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        parts = self._split_path(url)
        server = self.server

        if parts == ["health"]:
            self._send_json(
                200,
                {
                    "status": "ok",
                    "api_version": "v1",
                    "role": "gateway",
                    "uptime_seconds": time.time() - server.started_at,
                    "scenarios": len(server.registry),
                    "registry_digest": server.registry_digest,
                    "nodes": server.nodes.counts(),
                },
            )
        elif parts == ["healthz"]:
            self._send_json(200, {"status": "alive"})
        elif parts == ["readyz"]:
            self._send_readyz()
        elif parts == ["scenarios"]:
            self._send_json(200, {"scenarios": server.registry.describe()})
        elif parts == ["codecs"]:
            from .. import codecs

            self._send_json(
                200, {"api_version": "v1", "codecs": codecs.describe_codecs()}
            )
        elif parts == ["metrics"]:
            self._send_metrics(url.query)
        elif parts == ["gateway", "nodes"]:
            self._send_json(
                200,
                {
                    "nodes": [node.to_dict() for node in server.nodes.nodes()],
                    "counts": server.nodes.counts(),
                    "registry_digest": server.registry_digest,
                },
            )
        elif parts == ["jobs"]:
            self._send_json(200, server.list_jobs(url.query))
        elif len(parts) in (2, 3) and parts[0] == "jobs":
            suffix = ""
            if len(parts) == 3:
                if parts[2] not in ("result", "trace"):
                    self._send_json(404, {"error": f"no such endpoint {url.path!r}"})
                    return
                suffix = "/" + parts[2]
            status, payload = server.proxy_job_get(parts[1], suffix)
            self._send_json(status, payload)
        else:
            self._send_json(404, {"error": f"no such endpoint {url.path!r}"})

    def _send_readyz(self) -> None:
        """Ready when at least one registered node is healthy to route to."""
        if self.server.draining:
            self._send_json(503, {"ready": False, "reason": "draining"})
        elif not self.server.nodes.healthy_ids():
            self._send_json(
                503, {"ready": False, "reason": "no healthy nodes registered"}
            )
        else:
            self._send_json(200, {"ready": True})

    def _send_metrics(self, query_string: str) -> None:
        query = parse_qs(query_string)
        fmt = query.get("format", ["prometheus"])[0]
        registry = get_metrics()
        if fmt == "json":
            self._send_json(200, registry.to_jsonable())
        elif fmt in ("prometheus", "text"):
            self._send_text(
                200,
                registry.render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            raise _HTTPError(
                400, f'invalid "format" {fmt!r}; one of ["json", "prometheus"]'
            )

    def _route_post(self) -> None:
        url = urlsplit(self.path)
        raw = self._drain_body()
        parts = self._split_path(url)

        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            server = self.server
            if server.quotas is not None:
                # Cancelling releases the job's quota slot, so it must not
                # be open to anonymous callers when tenants are enforced;
                # same auth path as _submit (rate is not charged — a cancel
                # sheds load, it does not add any).
                tenant = server.quotas.tenant_for(self.headers.get("Authorization"))
                self._tenant_label = tenant.name
            status, payload = server.proxy_cancel(parts[1])
            self._send_json(status, payload)
            return
        if parts == ["nodes"]:
            self._register_node(self._parse_json_body(raw))
            return
        if len(parts) == 2 and parts[0] == "nodes":
            raise _HTTPError(404, f"no such endpoint {url.path!r}")
        if len(parts) == 3 and parts[0] == "nodes":
            self._node_ops(parts[1], parts[2], raw)
            return
        if parts not in (["jobs"], ["compress"], ["campaign"]):
            self._send_json(404, {"error": f"no such endpoint {url.path!r}"})
            return
        self._submit(parts, url.query, self._parse_json_body(raw))

    # ------------------------------------------------------------------ #
    # Front door: routed submission
    # ------------------------------------------------------------------ #

    def _submit(self, parts: list[str], query_string: str, body: dict) -> None:
        """Canonicalize -> authorize -> route by digest -> proxy -> record."""
        server = self.server
        tenant = None
        if server.quotas is not None:
            tenant = server.quotas.tenant_for(self.headers.get("Authorization"))
            self._tenant_label = tenant.name
            server.quotas.admit(tenant)
        try:
            job_type, params, digest, deadline_s = server.canonicalize(parts, body)
        except ValueError as error:
            raise _HTTPError(400, str(error)) from None
        if tenant is not None:
            # In-flight slots are keyed by digest: idempotent across the
            # resubmission of the same work and stable across failover.
            server.quotas.acquire(tenant, digest)
        query = parse_qs(query_string)
        wait = f"?wait={query['wait'][0]}" if "wait" in query else ""
        try:
            node_id, record = server.submit_routed(
                f"/v1/{parts[0]}", body, digest, query=wait
            )
        except (NoRouteError, FleetSaturated, ServiceError):
            if tenant is not None:
                server.quotas.release(digest)
            raise
        remote_digest = record.get("digest")
        if remote_digest != digest:
            if tenant is not None:
                server.quotas.release(digest)
            server.nodes.mark_suspect(
                node_id,
                f"digest mismatch (gateway {digest[:12]}..., "
                f"node {str(remote_digest)[:12]}...): registry skew",
            )
            raise _HTTPError(
                502,
                f"node {node_id} canonicalized the job to a different digest; "
                "refusing the response (registry skew)",
            )
        rid = record.get("job_id")
        gid = f"{rid}@{node_id}"
        server.note_submission(node_id, rid, job_type, params, digest, deadline_s)
        state = record.get("state")
        if tenant is not None and state in _TERMINAL_STATES:
            server.quotas.release(digest)
        payload = {**record, "job_id": gid, "node": node_id}
        self._send_json(200 if state in _TERMINAL_STATES else 202, payload)

    # ------------------------------------------------------------------ #
    # Node operations
    # ------------------------------------------------------------------ #

    def _register_node(self, body: dict) -> None:
        url = body.get("url")
        if not isinstance(url, str) or not url:
            raise _HTTPError(400, 'missing or non-string "url" field')
        digest = body.get("registry_digest")
        if not isinstance(digest, str) or not digest:
            raise _HTTPError(400, 'missing or non-string "registry_digest" field')
        node_id = body.get("node_id")
        if node_id is not None and not isinstance(node_id, str):
            raise _HTTPError(400, '"node_id" must be a string when present')
        try:
            node = self.server.admit_node(url, digest, node_id=node_id)
        except RegistrySkewError:
            raise
        except ValueError as error:
            raise _HTTPError(400, str(error)) from None
        self._send_json(
            200,
            {
                "node_id": node.node_id,
                "state": node.state,
                "registry_digest": self.server.registry_digest,
            },
        )

    def _node_ops(self, node_id: str, op: str, raw: bytes) -> None:
        server = self.server
        if op == "heartbeat":
            body = self._parse_json_body(raw)
            depth = body.get("queue_depth", 0)
            if not isinstance(depth, int) or isinstance(depth, bool):
                raise _HTTPError(400, '"queue_depth" must be an integer')
            digest = body.get("registry_digest")
            if not isinstance(digest, str):
                raise _HTTPError(400, 'missing or non-string "registry_digest" field')
            node = server.nodes.heartbeat(node_id, depth, digest)
            self._send_json(200, {"status": "ok", "state": node.state})
        elif op == "journal":
            body = self._parse_json_body(raw)
            lines = body.get("lines")
            if not isinstance(lines, list) or not all(
                isinstance(line, str) for line in lines
            ):
                raise _HTTPError(400, '"lines" must be a list of strings')
            if server.nodes.get(node_id) is None:
                raise UnknownNodeError(node_id)
            self._send_json(200, server.replicas.append_lines(node_id, lines))
        elif op == "deregister":
            node = server.remove_node(node_id)
            self._send_json(200, node.to_dict())
        else:
            raise _HTTPError(404, f"no such node operation {op!r}")


class GatewayServer(ThreadingHTTPServer):
    """HTTP gateway owning the node registry, hash ring, and replica store."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: ScenarioRegistry | None = None,
        quotas: TenantQuotas | None = None,
        state_dir: str | None = None,
        suspect_after: float = 3.0,
        dead_after: float = 10.0,
        ring_replicas: int = 64,
        node_timeout: float = 5.0,
        sweep_interval: float | None = None,
        verbose: bool = False,
    ):
        super().__init__(address, _GatewayHandler)
        self.registry = registry if registry is not None else build_default_registry()
        self.registry_digest = compute_registry_digest(self.registry)
        self.nodes = NodeRegistry(
            self.registry_digest, suspect_after=suspect_after, dead_after=dead_after
        )
        self.quotas = quotas
        self.verbose = verbose
        self.draining = False
        self.started_at = time.time()
        self.node_timeout = node_timeout
        self._tmpdir = None
        if state_dir is None:
            # Ephemeral gateways (tests, smoke runs) keep replicas in a
            # self-cleaning directory; production passes --state.
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-gateway-")
            state_dir = self._tmpdir.name
        self.replicas = ReplicaStore(state_dir)
        self._lock = threading.Lock()
        self._ring = HashRing(replicas=ring_replicas)
        self._clients: dict[str, ServiceClient] = {}
        #: Original gateway job id -> (node id, remote id) after failover.
        self._failover: dict[str, tuple[str, str]] = {}
        #: Gateway ids with a failover resubmission in flight right now.
        self._resurrecting: set[str] = set()
        self._stop = threading.Event()
        self._sweeper = threading.Thread(
            target=self._sweep_loop,
            args=(sweep_interval if sweep_interval else max(suspect_after / 4.0, 0.05),),
            name="gateway-sweeper",
            daemon=True,
        )
        self._sweeper.start()
        self._serving = False

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        with self._lock:
            self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            with self._lock:
                self._serving = False

    def begin_drain(self) -> None:
        """Flip ``GET /v1/readyz`` to 503 ahead of a graceful shutdown."""
        self.draining = True

    def close(self) -> None:
        self._stop.set()
        # BaseServer.shutdown() waits on an event only serve_forever() sets
        # on exit; skip it for a gateway that never entered the serve loop.
        if self._serving:
            self.shutdown()
        self.server_close()
        self._sweeper.join(timeout=5.0)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    # ------------------------------------------------------------------ #
    # Fleet membership
    # ------------------------------------------------------------------ #

    def admit_node(self, url: str, registry_digest: str, node_id: str | None = None):
        node = self.nodes.register(url, registry_digest, node_id=node_id)
        with self._lock:
            self._ring.add(node.node_id)
            # Drop any cached client: a re-registration may change the URL.
            self._clients.pop(node.node_id, None)
        return node

    def remove_node(self, node_id: str):
        node = self.nodes.deregister(node_id)
        with self._lock:
            self._ring.remove(node_id)
        # A graceful drain finishes running jobs but requeues the rest into
        # a journal nobody will replay soon; fail them over now.
        self._failover_node(node_id)
        return node

    def node_client(self, node_id: str) -> ServiceClient | None:
        node = self.nodes.get(node_id)
        if node is None:
            return None
        with self._lock:
            client = self._clients.get(node_id)
            if client is None or client.base_url != node.url:
                client = ServiceClient(
                    node.url, timeout=self.node_timeout, retries=1, backoff=0.05
                )
                self._clients[node_id] = client
        return client

    def route_digest(self, digest: str, extra_exclude=()) -> str | None:
        """The healthy ring owner for ``digest`` (suspect/dead excluded)."""
        healthy = self.nodes.healthy_ids()
        with self._lock:
            exclude = (set(self._ring.members()) - healthy) | set(extra_exclude)
            return self._ring.route(digest, exclude=exclude)

    # ------------------------------------------------------------------ #
    # Canonicalization (must agree byte-for-byte with the nodes)
    # ------------------------------------------------------------------ #

    def canonicalize(self, parts: list[str], body: dict):
        """-> ``(job_type, canonical_params, digest, deadline_s)``.

        Uses the node-shared canonicalizers, then merges the scenario's
        defaults exactly as ``WorkerPool.submit`` does, so the digest the
        gateway routes by equals the digest every (non-skewed) node will
        answer with.  Raises ``ValueError`` on anything malformed.
        """
        if parts == ["compress"]:
            submission, deadline_s = canonicalize_compress(body)
            job_type = "codec_compress"
        elif parts == ["campaign"]:
            submission, deadline_s = canonicalize_campaign(body, self.registry)
            job_type = "campaign"
        else:
            job_type = body.get("type")
            if not isinstance(job_type, str):
                raise ValueError('missing or non-string "type" field')
            submission = body.get("params")
            if submission is None:
                submission = {}
            if not isinstance(submission, dict):
                raise ValueError('"params" must be a JSON object')
            unknown = set(body) - {"type", "params", "deadline_s"}
            if unknown:
                raise ValueError(f"unknown field(s) {sorted(unknown)}")
            deadline_s = _parse_deadline(body)
        declared = self.registry.get(job_type)  # ValueError on unknown types
        params = {**declared.defaults, **dict(submission)}
        return job_type, params, job_digest(job_type, params), deadline_s

    # ------------------------------------------------------------------ #
    # Routed proxying
    # ------------------------------------------------------------------ #

    def submit_routed(
        self, path: str, body: dict, digest: str, query: str = ""
    ) -> tuple[str, dict]:
        """POST ``body`` to the digest's ring owner, failing over candidates.

        An unreachable owner is marked suspect and the next ring candidate
        tried; a *saturated* owner (429 through the client's retries) is
        surfaced as :class:`FleetSaturated` instead — backpressure should
        slow the caller down, not scatter the digest's cache locality
        across the fleet.
        """
        tried: set[str] = set()
        last_error = "no nodes registered"
        while True:
            target = self.route_digest(digest, extra_exclude=tried)
            if target is None:
                raise NoRouteError(last_error)
            client = self.node_client(target)
            if client is None:
                tried.add(target)
                continue
            try:
                record = client.request(
                    "POST", path + query, body,
                    on_retry=self._reconciler(client, digest),
                )
            except ServiceUnavailable as error:
                if error.saturated:
                    raise FleetSaturated(target, str(error)) from None
                self.nodes.mark_suspect(target, str(error))
                tried.add(target)
                last_error = str(error)
                continue
            return target, record

    @staticmethod
    def _reconciler(client: ServiceClient, digest: str):
        """Reconcile-by-digest hook for proxied submits (see client.submit):
        a retry first asks whether the previous attempt already landed."""

        def reconcile() -> dict | None:
            try:
                listing = client.request("GET", f"/v1/jobs?digest={digest}")
            except ServiceError:
                return None
            for record in listing.get("jobs", []):
                if isinstance(record, dict) and record.get("state") != "cancelled":
                    return record
            return None

        return reconcile

    def note_submission(
        self,
        node_id: str,
        rid: str,
        job_type: str,
        params: dict,
        digest: str,
        deadline_s: float | None,
        gateway_id: str | None = None,
    ) -> None:
        """Write the gateway-authored replica submit line for a routed job.

        This is the failover safety net: even if the node is SIGKILLed
        before its journal shipper ever flushes, the gateway already holds
        a submit record for every job it routed there.
        """
        fields = {
            "job_id": rid,
            "type": job_type,
            "params": params,
            "digest": digest,
            "submitted_at": time.time(),
            "deadline_s": deadline_s,
        }
        if gateway_id is not None:
            fields["gateway_id"] = gateway_id
        self.replicas.record_submit(node_id, **fields)

    def lookup_target(self, gid: str) -> tuple[str | None, str | None]:
        """Resolve a gateway job id to its current ``(node id, remote id)``."""
        with self._lock:
            mapped = self._failover.get(gid)
        if mapped is not None:
            return mapped
        rid, sep, node_id = gid.rpartition("@")
        if not sep or not rid or not node_id:
            return None, None
        return node_id, rid

    def proxy_job_get(self, gid: str, suffix: str) -> tuple[int, dict]:
        """``GET /v1/jobs/<gid>[/result|/trace]`` -> (status, payload).

        Reachable nodes are proxied and ids rewritten; a dead (or
        unreachable) node's jobs answer synthetically from the replica
        journal until failover has re-homed them — the caller sees
        ``queued``, never a 5xx, so dispatcher poll loops ride straight
        through a node loss.
        """
        node_id, rid = self.lookup_target(gid)
        if node_id is None:
            return 404, {"error": f"no such job {gid!r} (not a gateway job id)"}
        node = self.nodes.get(node_id)
        if node is None:
            return 404, {"error": f"no such job {gid!r} (unknown node)"}
        if node.state != "dead":
            client = self.node_client(node_id)
            try:
                record = client.request("GET", f"/v1/jobs/{rid}{suffix}")
            except ServiceRequestError as error:
                payload = error.payload if isinstance(error.payload, dict) else None
                payload = payload or {"error": str(error)}
                if payload.get("job_id") == rid:
                    payload = {**payload, "job_id": gid}
                return error.status, payload
            except ServiceUnavailable as error:
                self.nodes.mark_suspect(node_id, str(error))
            else:
                if record.get("job_id") == rid:
                    record = {**record, "job_id": gid}
                if self.quotas is not None and record.get("state") in _TERMINAL_STATES:
                    digest = record.get("digest")
                    if isinstance(digest, str):
                        self.quotas.release(digest)
                return 200, record
        return self._synthetic_job_get(gid, node_id, rid, suffix)

    def _synthetic_job_get(
        self, gid: str, node_id: str, rid: str, suffix: str
    ) -> tuple[int, dict]:
        """Answer for a job on an unreachable node, resurrecting if needed."""
        view = self.replicas.job_view(node_id, rid)
        finish = (view or {}).get("finish")
        if isinstance(finish, dict) and finish.get("event") in ("failed", "cancelled"):
            record = {
                "job_id": gid,
                "state": finish["event"],
                "digest": finish.get("digest"),
                "error": finish.get("error"),
            }
            if self.quotas is not None and isinstance(record["digest"], str):
                self.quotas.release(record["digest"])
            return 200, record
        submit = (view or {}).get("submit")
        if isinstance(submit, dict):
            node = self.nodes.get(node_id)
            if node is None or node.state in ("dead", "left"):
                # Unfinished — or finished "done" with the result marooned
                # on the dead node — either way the job must run again on a
                # survivor.
                outcome = self.resurrect(gid, submit)
                if outcome != "already_finished":
                    _FAILOVER.inc(outcome=outcome)
            # A merely *suspect* node (one failed poll) keeps its in-flight
            # work: answer queued without resubmitting and let the
            # sweeper's dead transition drive failover, as the registry
            # contract promises.
            queued = {"job_id": gid, "state": "queued", "digest": submit.get("digest")}
            if suffix == "/result":
                return 409, {**queued, "error": "job not finished"}
            if suffix == "/trace":
                return 200, {"job_id": gid, "trace_id": None, "state": "queued",
                             "span_count": 0, "trace": []}
            return 200, queued
        return 404, {"error": f"no such job {gid!r}"}

    def proxy_cancel(self, gid: str) -> tuple[int, dict]:
        node_id, rid = self.lookup_target(gid)
        if node_id is None or self.nodes.get(node_id) is None:
            return 404, {"error": f"no such job {gid!r}"}
        client = self.node_client(node_id)
        try:
            record = client.request("POST", f"/v1/jobs/{rid}/cancel", {})
        except ServiceRequestError as error:
            payload = error.payload if isinstance(error.payload, dict) else None
            return error.status, payload or {"error": str(error)}
        if record.get("job_id") == rid:
            record = {**record, "job_id": gid}
        if self.quotas is not None and record.get("state") in _TERMINAL_STATES:
            digest = record.get("digest")
            if isinstance(digest, str):
                self.quotas.release(digest)
        return 200, record

    def list_jobs(self, query_string: str) -> dict:
        """``GET /v1/jobs`` fanned out over reachable nodes, ids rewritten.

        The digest/state/pagination query is forwarded verbatim to each
        node; this is what makes a client's reconcile-by-digest work
        through the gateway.
        """
        query = f"?{query_string}" if query_string else ""
        jobs: list[dict] = []
        total = 0
        for node in self.nodes.nodes():
            if node.state not in ("healthy", "suspect"):
                continue
            client = self.node_client(node.node_id)
            try:
                listing = client.request("GET", f"/v1/jobs{query}")
            except ServiceError:
                continue
            for record in listing.get("jobs", []):
                if isinstance(record, dict) and isinstance(record.get("job_id"), str):
                    record = {
                        **record,
                        "job_id": f"{record['job_id']}@{node.node_id}",
                        "node": node.node_id,
                    }
                jobs.append(record)
            raw_total = listing.get("total")
            total += raw_total if isinstance(raw_total, int) else 0
        return {"jobs": jobs, "total": total}

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    def _sweep_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            for node, _old, new_state in self.nodes.sweep():
                if new_state == "dead":
                    self._failover_node(node.node_id)

    def _failover_node(self, node_id: str) -> dict:
        """Replay a lost node's unfinished replica jobs onto survivors."""
        with obs_trace.span("gateway.failover", attrs={"node": node_id}) as span:
            # Chained failover: mappings that re-homed earlier jobs *onto*
            # this node are stale now — drop them so resurrect() re-homes
            # those gids again instead of skipping them as already handled.
            with self._lock:
                stale = [
                    gid
                    for gid, (target, _rid) in self._failover.items()
                    if target == node_id
                ]
                for gid in stale:
                    del self._failover[gid]
            unfinished = self.replicas.unfinished(node_id)
            outcomes = {"replayed": 0, "already_finished": 0, "failed": 0}
            for record in unfinished:
                rid = record.get("job_id")
                if not isinstance(rid, str):
                    continue
                gid = record.get("gateway_id")
                if not isinstance(gid, str):
                    gid = f"{rid}@{node_id}"
                outcome = self.resurrect(gid, record)
                outcomes[outcome] += 1
                _FAILOVER.inc(outcome=outcome)
            span.set_attr("unfinished", len(unfinished))
            span.set_attr("outcomes", dict(outcomes))
        return outcomes

    def resurrect(self, gid: str, submit_record: dict) -> str:
        """Re-home one lost job onto a ring survivor; returns the outcome.

        Idempotent and race-safe: a gid being re-homed by a concurrent
        poll/sweeper is skipped, as is one already mapped to a *live*
        replacement — eager sweep failover and lazy poll-driven
        resurrection never double-submit.  A mapping whose target node has
        itself died (or left) is stale, though: chained failover drops it
        and re-homes the job again instead of wedging every poll on the
        dead replacement.
        """
        while True:
            with self._lock:
                if gid in self._resurrecting:
                    return "already_finished"
                mapped = self._failover.get(gid)
                if mapped is None:
                    self._resurrecting.add(gid)
                    break
            # Node state is read outside self._lock (the registry has its
            # own lock); loop to re-claim once the stale mapping is gone.
            node = self.nodes.get(mapped[0])
            if node is not None and node.state not in ("dead", "left"):
                return "already_finished"
            with self._lock:
                if self._failover.get(gid) == mapped:
                    del self._failover[gid]
        try:
            job_type = submit_record.get("type")
            params = submit_record.get("params")
            digest = submit_record.get("digest")
            if not (
                isinstance(job_type, str)
                and isinstance(params, dict)
                and isinstance(digest, str)
            ):
                return "failed"
            body: dict = {"type": job_type, "params": params}
            deadline = submit_record.get("deadline_s")
            if (
                isinstance(deadline, (int, float))
                and not isinstance(deadline, bool)
                and deadline > 0
            ):
                # Re-armed with its full budget: the old wall clock died
                # with the node (same rule as journal replay on restart).
                body["deadline_s"] = float(deadline)
            try:
                target, record = self.submit_routed("/v1/jobs", body, digest)
            except (NoRouteError, FleetSaturated, ServiceError):
                return "failed"
            rid = record.get("job_id")
            if not isinstance(rid, str):
                return "failed"
            self.note_submission(
                target, rid, job_type, params, digest,
                body.get("deadline_s"), gateway_id=gid,
            )
            with self._lock:
                self._failover[gid] = (target, rid)
            return "replayed"
        finally:
            with self._lock:
                self._resurrecting.discard(gid)


def create_gateway(
    host: str = "127.0.0.1",
    port: int = 8100,
    state_dir: str | None = None,
    keys_file: str | None = None,
    registry: ScenarioRegistry | None = None,
    suspect_after: float = 3.0,
    dead_after: float = 10.0,
    node_timeout: float = 5.0,
    sweep_interval: float | None = None,
    verbose: bool = False,
) -> GatewayServer:
    """Build a ready-to-serve :class:`GatewayServer` (``port=0`` -> ephemeral).

    ``keys_file`` enables per-tenant authentication and quotas (see
    :mod:`repro.gateway.quotas` for the format); without it the gateway is
    open and all traffic is metered under the ``anonymous`` tenant label.
    ``state_dir`` holds the per-node replica journals; omitted, an ephemeral
    directory is used (fine for tests, wrong for durable failover across
    gateway restarts).
    """
    from .quotas import load_keys_file

    quotas = load_keys_file(keys_file) if keys_file is not None else None
    return GatewayServer(
        (host, port),
        registry=registry,
        quotas=quotas,
        state_dir=state_dir,
        suspect_after=suspect_after,
        dead_after=dead_after,
        node_timeout=node_timeout,
        sweep_interval=sweep_interval,
        verbose=verbose,
    )
