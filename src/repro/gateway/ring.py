"""Consistent-hash ring: stable digest -> node routing with virtual nodes.

The gateway routes every job by its content digest over this ring, so a
re-submitted job lands on the node whose result cache already holds it, and
adding or removing one node remaps only ~1/N of the key space (instead of
reshuffling everything, as modulo hashing would).

Each member is projected onto the ring at ``replicas`` points (virtual
nodes), which evens out the per-node share of the key space; lookups walk
clockwise from the key's own ring position and may *exclude* members (the
gateway passes its suspect/dead set), giving failover-by-construction: the
keys of an excluded node fall through to the next node on the ring, and only
those keys move.

Everything is deterministic — positions are SHA-256 over ``node_id#replica``
and keys hash the same way on every process — so two gateways with the same
membership route identically.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

__all__ = ["HashRing"]


def _position(text: str) -> int:
    """Ring coordinate of ``text``: the first 8 bytes of its SHA-256."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over opaque member ids.  Not thread-safe —
    the gateway serializes access under its own lock."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []  # sorted ring coordinates
        self._owners: dict[int, str] = {}  # coordinate -> member id
        self._members: set[str] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> list[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        """Add a member (idempotent); remaps ~1/N of the key space to it."""
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self.replicas):
            point = _position(f"{member}#{replica}")
            # SHA-256 collisions on 64-bit prefixes are not a practical
            # concern, but first-add-wins keeps the ring deterministic
            # regardless of insertion order if one ever happened.
            if point not in self._owners:
                self._owners[point] = member
                bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        """Remove a member (idempotent); only its keys move."""
        if member not in self._members:
            return
        self._members.discard(member)
        for replica in range(self.replicas):
            point = _position(f"{member}#{replica}")
            if self._owners.get(point) == member:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    def route(self, key: str, exclude: Iterable[str] = ()) -> str | None:
        """The member owning ``key``, skipping ``exclude``; ``None`` if empty.

        Walks clockwise from the key's ring position, so excluding a member
        (the gateway's suspect/dead set) hands exactly that member's keys to
        their ring successors and leaves every other assignment untouched.
        """
        excluded = set(exclude)
        if not self._points or not (self._members - excluded):
            return None
        start = bisect.bisect_right(self._points, _position(key))
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            owner = self._owners[point]
            if owner not in excluded:
                return owner
        return None

    def assignments(self, keys: Iterable[str], exclude: Iterable[str] = ()) -> dict[str, str]:
        """``{key: member}`` for every key (testing/inspection helper)."""
        excluded = tuple(exclude)
        result: dict[str, str] = {}
        for key in keys:
            owner = self.route(key, exclude=excluded)
            if owner is not None:
                result[key] = owner
        return result
