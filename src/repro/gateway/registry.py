"""Node registry: who is in the fleet, how healthy, and on which revision.

``repro serve --register URL`` self-registers here and then heartbeats.
Each heartbeat carries the node's queue depth (for observability) and its
**registry digest** — a stable hash over the node's scenario registry and
codec schemas.  A node whose digest differs from the gateway's is refused at
registration (HTTP 409): routing by content digest only works when every
party canonicalizes parameters identically, so registry skew is rejected at
the door instead of surfacing later as checkpoint corruption (the same
invariant the campaign dispatcher enforces per-response).

Health is heartbeat-driven and moves one way between sweeps::

    healthy --(suspect_after missed)--> suspect --(dead_after)--> dead
       ^                                  |
       +----------- heartbeat ------------+

A *suspect* node is skipped for new routing but its in-flight jobs are left
alone (it may merely be slow); a *dead* node's unfinished jobs are replayed
onto survivors from the replica journal (see :mod:`repro.gateway.server`).
A heartbeat from a suspect node restores it to healthy; a dead node must
re-register (its replica journal continues under the same stable node id).
Every transition is counted in ``repro_gateway_node_transitions_total`` and
traced as a ``gateway.node.transition`` span.
"""

from __future__ import annotations

import hashlib
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.hashing import stable_digest
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics

__all__ = [
    "Node",
    "NodeRegistry",
    "RegistrySkewError",
    "UnknownNodeError",
    "compute_registry_digest",
    "node_id_for_url",
]

#: The health states a node moves through (also the bounded metric label set).
NODE_STATES = ("healthy", "suspect", "dead", "left")

#: Node ids become replica-journal directory names, so they are restricted to
#: one path-safe segment — anything else is refused at registration.
_NODE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_OBS = get_metrics()
_NODES_GAUGE = _OBS.gauge(
    "repro_gateway_nodes",
    "Registered nodes currently in each health state.",
    ("state",),
)
_TRANSITIONS = _OBS.counter(
    "repro_gateway_node_transitions_total",
    "Node health-state transitions observed by the gateway registry, "
    "by new state.",
    ("state",),
)
_HEARTBEATS = _OBS.counter(
    "repro_gateway_heartbeats_total",
    "Node heartbeats handled by the gateway, by outcome (ok, unknown, skew).",
    ("outcome",),
)


class RegistrySkewError(ValueError):
    """The node's registry digest does not match the gateway's."""


class UnknownNodeError(KeyError):
    """Heartbeat/journal/deregister for a node id never registered."""


def compute_registry_digest(registry) -> str:
    """Stable digest of a node's canonicalization surface.

    Hashes the scenario registry's full description (names and canonical
    default parameters) together with every codec schema — exactly the
    inputs that determine how a submission canonicalizes into a content
    digest.  Two processes with equal digests compute identical job digests
    for identical bodies, which is what lets the gateway route by digest and
    nodes verify it.
    """
    from .. import codecs

    return stable_digest(
        "repro-registry", registry.describe(), codecs.describe_codecs()
    )


def node_id_for_url(url: str) -> str:
    """Deterministic node id for an advertised URL.

    Stable across node restarts so a restarted node re-registers under the
    same id and its replica journal (and failover bookkeeping) continue
    seamlessly.
    """
    return "node-" + hashlib.sha256(url.encode("utf-8")).hexdigest()[:12]


@dataclass
class Node:
    """One registered node and everything the gateway knows about it."""

    node_id: str
    url: str
    registry_digest: str
    state: str = "healthy"
    last_heartbeat: float = 0.0
    queue_depth: int = 0
    heartbeats: int = 0
    reason: str = ""
    registered_at: float = field(default=0.0)

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "url": self.url,
            "state": self.state,
            "queue_depth": self.queue_depth,
            "heartbeats": self.heartbeats,
            "reason": self.reason,
        }


class NodeRegistry:
    """Thread-safe registry of nodes with heartbeat-driven health.

    ``clock`` is injectable (monotonic seconds) so the state machine is unit
    testable without sleeping; :meth:`sweep` applies the timeouts and returns
    the transitions it made, so the caller (the gateway's sweeper thread) can
    react — above all by replaying a newly dead node's unfinished jobs.
    """

    def __init__(
        self,
        expected_digest: str,
        suspect_after: float = 3.0,
        dead_after: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not suspect_after > 0 or not dead_after > suspect_after:
            raise ValueError("need 0 < suspect_after < dead_after")
        self.expected_digest = expected_digest
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._clock = clock
        self._lock = threading.Lock()
        self._nodes: dict[str, Node] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def register(self, url: str, registry_digest: str, node_id: str | None = None) -> Node:
        """Admit (or re-admit) one node; raises on skew or a bad node id.

        Re-registration under a known id is how a restarted or previously
        dead node rejoins: its record is replaced, its health resets to
        healthy, and its history (replica journal, keyed by node id) carries
        over outside this class.
        """
        if registry_digest != self.expected_digest:
            raise RegistrySkewError(
                f"registry digest mismatch: node {url} reports "
                f"{registry_digest[:12]}..., gateway expects "
                f"{self.expected_digest[:12]}... — the node runs a different "
                "revision and would canonicalize jobs differently; refusing"
            )
        node_id = node_id or node_id_for_url(url)
        if not _NODE_ID_RE.match(node_id):
            raise ValueError(
                f"invalid node id {node_id!r}: one path-safe segment of at "
                "most 64 characters ([A-Za-z0-9._-], not starting with a dot)"
            )
        with self._lock:
            previous = self._nodes.get(node_id)
            node = Node(
                node_id=node_id,
                url=url.rstrip("/"),
                registry_digest=registry_digest,
                state="healthy",
                last_heartbeat=self._clock(),
                registered_at=self._clock(),
            )
            self._nodes[node_id] = node
            self._update_gauges_locked()
        if previous is None or previous.state != "healthy":
            self._record_transition(node, previous.state if previous else None, "healthy")
        return node

    def deregister(self, node_id: str) -> Node:
        """A node's graceful goodbye (SIGTERM drain): state becomes ``left``."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                raise UnknownNodeError(node_id)
            old_state = node.state
            node.state = "left"
            node.reason = "deregistered"
            self._update_gauges_locked()
        if old_state != "left":
            self._record_transition(node, old_state, "left")
        return node

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #

    def heartbeat(self, node_id: str, queue_depth: int, registry_digest: str) -> Node:
        """Record one heartbeat; revives a suspect node, rejects skew.

        A *dead* or *left* node's heartbeat is refused with
        :class:`UnknownNodeError` — its unfinished jobs were (or are being)
        replayed elsewhere, so it must go through a fresh registration to
        take new work.
        """
        if registry_digest != self.expected_digest:
            _HEARTBEATS.inc(outcome="skew")
            raise RegistrySkewError(
                f"heartbeat digest mismatch from {node_id}: the node registry "
                "changed underneath a running node; re-register"
            )
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None or node.state in ("dead", "left"):
                _HEARTBEATS.inc(outcome="unknown")
                raise UnknownNodeError(node_id)
            old_state = node.state
            node.last_heartbeat = self._clock()
            node.queue_depth = max(int(queue_depth), 0)
            node.heartbeats += 1
            node.state = "healthy"
            node.reason = ""
            self._update_gauges_locked()
        _HEARTBEATS.inc(outcome="ok")
        if old_state != "healthy":
            self._record_transition(node, old_state, "healthy")
        return node

    def mark_suspect(self, node_id: str, reason: str) -> None:
        """Eagerly demote a node the gateway failed to reach (proxy error).

        Faster than waiting out ``suspect_after``: one refused connection is
        evidence enough to stop routing *new* work there; the heartbeat (or
        the sweeper) settles whether it comes back or dies.
        """
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None or node.state != "healthy":
                return
            node.state = "suspect"
            node.reason = reason
            self._update_gauges_locked()
        self._record_transition(node, "healthy", "suspect")

    def sweep(self) -> list[tuple[Node, str, str]]:
        """Apply the heartbeat timeouts; return ``(node, old, new)`` moves.

        healthy -> suspect after ``suspect_after`` seconds of silence,
        suspect -> dead after ``dead_after``.  The caller reacts to the
        returned transitions (a node newly *dead* triggers failover replay).
        """
        now = self._clock()
        transitions: list[tuple[Node, str, str]] = []
        with self._lock:
            for node in self._nodes.values():
                if node.state in ("dead", "left"):
                    continue
                silent_for = now - node.last_heartbeat
                if node.state in ("healthy", "suspect") and silent_for >= self.dead_after:
                    transitions.append((node, node.state, "dead"))
                    node.state = "dead"
                    node.reason = f"no heartbeat for {silent_for:.1f}s"
                elif node.state == "healthy" and silent_for >= self.suspect_after:
                    transitions.append((node, node.state, "suspect"))
                    node.state = "suspect"
                    node.reason = f"no heartbeat for {silent_for:.1f}s"
            if transitions:
                self._update_gauges_locked()
        for node, old_state, new_state in transitions:
            self._record_transition(node, old_state, new_state)
        return transitions

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get(self, node_id: str) -> Node | None:
        with self._lock:
            return self._nodes.get(node_id)

    def nodes(self) -> list[Node]:
        with self._lock:
            return sorted(self._nodes.values(), key=lambda node: node.node_id)

    def healthy_ids(self) -> set[str]:
        with self._lock:
            return {
                node_id
                for node_id, node in self._nodes.items()
                if node.state == "healthy"
            }

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = dict.fromkeys(NODE_STATES, 0)
            for node in self._nodes.values():
                counts[node.state] = counts.get(node.state, 0) + 1
            return counts

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _update_gauges_locked(self) -> None:
        counts = dict.fromkeys(NODE_STATES, 0)
        for node in self._nodes.values():
            counts[node.state] = counts.get(node.state, 0) + 1
        for state in NODE_STATES:
            _NODES_GAUGE.set(float(counts[state]), state=state)

    @staticmethod
    def _record_transition(node: Node, old_state: str | None, new_state: str) -> None:
        """Metric + span for one health transition (states are a closed set)."""
        _TRANSITIONS.inc(state=new_state)
        with obs_trace.span(
            "gateway.node.transition",
            attrs={
                "node": node.node_id,
                "url": node.url,
                "from": old_state or "unregistered",
                "to": new_state,
                "reason": node.reason,
            },
        ) as event:
            if new_state == "dead":
                event.finish(error=node.reason or "node dead")
