"""Gateway-side replica journals: one checksummed JSONL stream per node.

Every node that registers streams its journal appends to the gateway
(``POST /v1/nodes/<id>/journal``), and the gateway *also* writes its own
submit line at proxy time for every job it routes.  The double write is the
point: a node SIGKILLed before its shipper flushed still leaves the gateway
holding a submit record for everything the gateway routed to it, which is
exactly the set failover must replay.  Duplicate submit lines for the same
job id are harmless — the fold keeps one submit and any finish per job.

Lines use the service journal's checksummed format verbatim
(:func:`repro.service.journal.checksummed_line`), so one verifier covers the
primary journal, the replicas, and anything that replays them; a line that
fails verification is rejected at ingest (counted in
``repro_gateway_replicated_lines_total{outcome="rejected"}``), never written.

Replicas live under ``<state>/replicas/<node_id>/journal.jsonl``.  Node ids
were validated path-safe at registration, but the store re-checks before
touching the filesystem — defense in depth against a handler bug.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Any

from ..service.journal import checksummed_line, verify_checksum
from ..obs.metrics import get_metrics

__all__ = ["ReplicaStore"]

_NODE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_OBS_LINES = get_metrics().counter(
    "repro_gateway_replicated_lines_total",
    "Journal lines offered to the gateway's replica store, by outcome "
    "(accepted, rejected).",
    ("outcome",),
)

#: Finish events, mirroring the service journal's terminal states.
_FINISH_EVENTS = ("done", "failed", "cancelled")


class ReplicaStore:
    """Per-node replica journals under one state directory (thread-safe)."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        (self.directory / "replicas").mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def _journal_path(self, node_id: str) -> Path:
        if not _NODE_ID_RE.match(node_id):
            raise ValueError(f"invalid node id {node_id!r}")
        return self.directory / "replicas" / node_id / "journal.jsonl"

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append_lines(self, node_id: str, lines: list[str]) -> dict:
        """Ingest raw journal lines streamed by a node; verify each first.

        A line must parse as a JSON object and pass the shared checksum
        rule before it is written (verbatim) to the node's replica.
        Returns ``{"accepted": n, "rejected": n}``.
        """
        path = self._journal_path(node_id)
        accepted: list[str] = []
        rejected = 0
        for raw in lines:
            line = raw.strip() if isinstance(raw, str) else ""
            record: Any = None
            if line:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    record = None
            # verify_checksum pops crc32 — hand it a copy, keep the raw line.
            if isinstance(record, dict) and verify_checksum(dict(record)):
                accepted.append(line)
            else:
                rejected += 1
        if accepted:
            with self._lock:
                path.parent.mkdir(parents=True, exist_ok=True)
                with path.open("a", encoding="utf-8") as handle:
                    for line in accepted:
                        handle.write(line + "\n")
                    handle.flush()
        if accepted:
            _OBS_LINES.inc(len(accepted), outcome="accepted")
        if rejected:
            _OBS_LINES.inc(rejected, outcome="rejected")
        return {"accepted": len(accepted), "rejected": rejected}

    def record_submit(self, node_id: str, **fields: Any) -> None:
        """Write one gateway-authored submit line into a node's replica.

        Called at proxy time for every routed submission, with the fields
        the service journal's own submit record carries (job_id, type,
        params, digest, ...) — so failover replay reads one uniform shape.
        """
        line = checksummed_line({"event": "submit", **fields})
        path = self._journal_path(node_id)
        with self._lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        _OBS_LINES.inc(outcome="accepted")

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def _records(self, node_id: str) -> list[dict]:
        path = self._journal_path(node_id)
        with self._lock:
            if not path.exists():
                return []
            with path.open(encoding="utf-8") as handle:
                lines = handle.readlines()
        records: list[dict] = []
        for raw in lines:
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            # Verified at ingest; re-verified here so a corrupted replica
            # file (torn tail after a gateway crash) degrades to skipping
            # the bad line, mirroring the primary journal's behaviour.
            if isinstance(record, dict) and verify_checksum(record):
                records.append(record)
        return records

    def merged(self, node_id: str) -> tuple[list[str], dict[str, dict]]:
        """Fold a replica into per-job ``{"submit": ..., "finish": ...}``.

        Unlike the primary journal's fold, a duplicate submit never clears
        an already-recorded finish: the gateway's proxy-time submit line and
        the node's own streamed submit line arrive independently, and the
        job is finished once either stream says so.
        """
        merged: dict[str, dict] = {}
        order: list[str] = []
        for record in self._records(node_id):
            job_id = record.get("job_id")
            event = record.get("event")
            if not isinstance(job_id, str):
                continue
            if event == "submit":
                if job_id not in merged:
                    order.append(job_id)
                    merged[job_id] = {"submit": record, "finish": None}
                elif merged[job_id]["submit"] is None:
                    merged[job_id]["submit"] = record
                else:
                    # Duplicate submit (gateway-authored + node-streamed):
                    # keep the first, but carry over a gateway_id so chained
                    # failover can recover the original gateway job id
                    # whichever line won the fold.
                    kept = merged[job_id]["submit"]
                    if "gateway_id" not in kept and "gateway_id" in record:
                        kept = dict(kept)
                        kept["gateway_id"] = record["gateway_id"]
                        merged[job_id]["submit"] = kept
            elif event in _FINISH_EVENTS:
                if job_id not in merged:
                    order.append(job_id)
                    merged[job_id] = {"submit": None, "finish": record}
                else:
                    merged[job_id]["finish"] = record
        return order, merged

    def unfinished(self, node_id: str) -> list[dict]:
        """Submit records with no finish line — the set failover replays."""
        order, merged = self.merged(node_id)
        return [
            merged[job_id]["submit"]
            for job_id in order
            if merged[job_id]["finish"] is None
            and isinstance(merged[job_id]["submit"], dict)
        ]

    def job_view(self, node_id: str, job_id: str) -> dict | None:
        """The replica's view of one job (``{"submit", "finish"}``) or None."""
        _, merged = self.merged(node_id)
        return merged.get(job_id)

    def node_ids(self) -> list[str]:
        root = self.directory / "replicas"
        with self._lock:
            if not root.exists():
                return []
            return sorted(
                entry.name for entry in root.iterdir() if entry.is_dir()
            )
