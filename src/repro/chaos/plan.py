"""Fault plans: named, deterministic injection points across the stack.

A :class:`FaultPlan` is a set of :class:`FaultRule` entries keyed by
*injection point* — a dotted name baked into the production code path it can
break (``chaos.maybe_fail("journal.append")`` sits inside the journal's
write path, ``"worker.run"`` inside job execution, and so on; see
:data:`INJECTION_POINTS`).  With no plan installed, ``maybe_fail`` is a
module-global ``None`` check and costs nothing; with one installed, each
matching rule may add latency, raise a chosen exception, or both, governed
by probability/count/skip gates and a seeded RNG so a chaos run is
reproducible.

Plans come from three places, in precedence order:

1. :func:`install_plan` — tests and embedding code install one directly;
2. the ``REPRO_CHAOS`` environment variable — either inline JSON or
   ``@/path/to/plan.json``, resolved lazily on first use so ``repro serve``
   under chaos needs no code changes;
3. nothing — the default, and the fast path.

Spec layout (JSON)::

    {
      "seed": 42,
      "rules": [
        {"point": "journal.append", "probability": 0.2, "mode": "error",
         "exception": "OSError", "count": 3},
        {"point": "worker.run", "mode": "latency", "latency_s": 0.05},
        {"point": "client.*", "probability": 0.1, "mode": "error",
         "exception": "ConnectionResetError", "skip": 2}
      ]
    }

``point`` is an ``fnmatch`` pattern against the injection-point name.  Every
injection is counted in ``repro_chaos_injections_total{point,mode}``.
"""

from __future__ import annotations

import fnmatch
import json
import os
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any

from ..obs.metrics import get_metrics

__all__ = [
    "INJECTION_POINTS",
    "ChaosSpecError",
    "FaultPlan",
    "FaultRule",
    "clear_plan",
    "get_plan",
    "install_plan",
    "maybe_fail",
]

#: Environment variable holding a chaos spec (inline JSON or ``@path``).
CHAOS_ENV = "REPRO_CHAOS"

#: Every injection point wired into the stack, with what firing it breaks.
#: The single source of truth for ``repro chaos points`` and rule validation
#: hints (rules may still use patterns that match nothing — a plan written
#: for a newer revision must not crash an older one).
INJECTION_POINTS: dict[str, str] = {
    "journal.append": "a job-journal write fails (counted as a write error, "
    "never fails the job itself)",
    "worker.run": "a job body raises before the scenario runs (job FAILED "
    "with the injected traceback)",
    "client.request": "one ServiceClient HTTP attempt fails with a network "
    "error (retried like a dropped packet)",
    "server.request": "a request handler raises mid-dispatch (answered as a "
    "500 JSON envelope)",
    "cache.disk_write": "a result-cache disk persistence write fails "
    "(in-memory entry survives, disk_errors counts it)",
}

#: Exceptions a rule may raise, by name — a closed set so a chaos spec can
#: never name something with import side effects.
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "OSError": OSError,
    "IOError": OSError,
    "ConnectionError": ConnectionError,
    "ConnectionResetError": ConnectionResetError,
    "BrokenPipeError": BrokenPipeError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "MemoryError": MemoryError,
}

_INJECTIONS_TOTAL = get_metrics().counter(
    "repro_chaos_injections_total",
    "Faults injected by the active chaos plan, by injection point and mode.",
    ("point", "mode"),
)


class ChaosSpecError(ValueError):
    """A chaos spec is malformed (bad field, unknown exception, bad JSON)."""


@dataclass
class FaultRule:
    """One injection rule; mutable counters track how often it fired."""

    point: str  #: fnmatch pattern over injection-point names
    probability: float = 1.0
    count: int | None = None  #: stop firing after this many injections
    skip: int = 0  #: let the first N matching calls through untouched
    latency_s: float = 0.0
    exception: str | None = None  #: key of :data:`_EXCEPTIONS`, or None
    message: str = "chaos: injected fault"
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not self.point or not isinstance(self.point, str):
            raise ChaosSpecError("rule needs a non-empty string 'point'")
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ChaosSpecError(
                f"rule {self.point!r}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.count is not None and (not isinstance(self.count, int) or self.count < 1):
            raise ChaosSpecError(f"rule {self.point!r}: count must be a positive integer")
        if not isinstance(self.skip, int) or self.skip < 0:
            raise ChaosSpecError(f"rule {self.point!r}: skip must be an integer >= 0")
        if float(self.latency_s) < 0:
            raise ChaosSpecError(f"rule {self.point!r}: latency_s must be >= 0")
        if self.exception is not None and self.exception not in _EXCEPTIONS:
            raise ChaosSpecError(
                f"rule {self.point!r}: unknown exception {self.exception!r}; "
                f"one of {sorted(_EXCEPTIONS)}"
            )
        if self.exception is None and float(self.latency_s) <= 0:
            raise ChaosSpecError(
                f"rule {self.point!r}: a rule must inject latency, an "
                "exception, or both"
            )

    @property
    def mode(self) -> str:
        if self.exception is not None:
            return "error+latency" if self.latency_s > 0 else "error"
        return "latency"

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "mode": self.mode,
            "probability": self.probability,
            "count": self.count,
            "skip": self.skip,
            "latency_s": self.latency_s,
            "exception": self.exception,
            "seen": self.seen,
            "fired": self.fired,
        }


def _parse_rule(entry: Any, position: int) -> FaultRule:
    if not isinstance(entry, dict):
        raise ChaosSpecError(f"rules[{position}] must be a JSON object")
    known = {
        "point", "probability", "count", "skip", "latency_s",
        "exception", "message", "mode",
    }
    unknown = set(entry) - known
    if unknown:
        raise ChaosSpecError(f"rules[{position}]: unknown field(s) {sorted(unknown)}")
    mode = entry.get("mode")
    if mode is not None and mode not in ("error", "latency"):
        raise ChaosSpecError(
            f"rules[{position}]: mode must be 'error' or 'latency', got {mode!r}"
        )
    exception = entry.get("exception")
    if mode == "error" and exception is None:
        exception = "OSError"  # the default way to break something
    if mode == "latency":
        exception = None
    return FaultRule(
        point=entry.get("point", ""),
        probability=float(entry.get("probability", 1.0)),
        count=entry.get("count"),
        skip=int(entry.get("skip", 0)),
        latency_s=float(entry.get("latency_s", 0.0)),
        exception=exception,
        message=entry.get("message", "chaos: injected fault"),
    )


class FaultPlan:
    """A seeded, thread-safe set of fault rules with firing bookkeeping."""

    def __init__(self, rules: list[FaultRule], seed: int = 0):
        self.rules = list(rules)
        self.seed = seed
        self._rng = Random(seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_spec(cls, spec: Any) -> "FaultPlan":
        """Build a plan from a decoded JSON spec (``{"seed":..., "rules": [...]}``)."""
        if isinstance(spec, list):  # bare rule list shorthand
            spec = {"rules": spec}
        if not isinstance(spec, dict):
            raise ChaosSpecError("chaos spec must be a JSON object or rule list")
        unknown = set(spec) - {"seed", "rules"}
        if unknown:
            raise ChaosSpecError(f"unknown top-level field(s) {sorted(unknown)}")
        rules_raw = spec.get("rules")
        if not isinstance(rules_raw, list) or not rules_raw:
            raise ChaosSpecError("chaos spec needs a non-empty 'rules' list")
        seed = spec.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ChaosSpecError("'seed' must be an integer")
        rules = [_parse_rule(entry, i) for i, entry in enumerate(rules_raw)]
        return cls(rules, seed=seed)

    @classmethod
    def from_text(cls, text: str) -> "FaultPlan":
        """Parse inline JSON text, or ``@path`` / a readable path to a file."""
        candidate = text.strip()
        if candidate.startswith("@"):
            candidate = candidate[1:]
        if not candidate.lstrip().startswith(("{", "[")) and os.path.isfile(candidate):
            with open(candidate, encoding="utf-8") as handle:
                candidate = handle.read()
        try:
            spec = json.loads(candidate)
        except json.JSONDecodeError as error:
            raise ChaosSpecError(
                f"chaos spec is neither valid JSON nor a readable file: {error}"
            ) from None
        return cls.from_spec(spec)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        text = os.environ.get(CHAOS_ENV)
        return cls.from_text(text) if text else None

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #

    def maybe_fail(self, point: str) -> None:
        """Fire any matching rules: sleep, then raise (at most one exception)."""
        delay = 0.0
        raising: FaultRule | None = None
        with self._lock:
            for rule in self.rules:
                if not fnmatch.fnmatchcase(point, rule.point):
                    continue
                rule.seen += 1
                if rule.seen <= rule.skip:
                    continue
                if rule.count is not None and rule.fired >= rule.count:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                _INJECTIONS_TOTAL.inc(point=point, mode=rule.mode)
                delay = max(delay, rule.latency_s)
                if rule.exception is not None and raising is None:
                    raising = rule
        if delay > 0:
            time.sleep(delay)
        if raising is not None:
            raise _EXCEPTIONS[raising.exception](
                f"{raising.message} [chaos point={point}]"
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules],
                "fired": sum(rule.fired for rule in self.rules),
            }


# --------------------------------------------------------------------------- #
# The process-wide plan
# --------------------------------------------------------------------------- #

#: Sentinel: the environment has not been consulted yet.
_UNRESOLVED = object()
_plan: Any = _UNRESOLVED
_plan_lock = threading.Lock()


def install_plan(plan: FaultPlan | None) -> None:
    """Install (or, with ``None``, disable) the process-wide fault plan."""
    global _plan
    with _plan_lock:
        _plan = plan


def clear_plan() -> None:
    """Remove any installed plan and forget the environment resolution."""
    global _plan
    with _plan_lock:
        _plan = _UNRESOLVED


def get_plan() -> FaultPlan | None:
    """The active plan: installed one, else lazily resolved from the env."""
    global _plan
    if _plan is _UNRESOLVED:
        with _plan_lock:
            if _plan is _UNRESOLVED:
                _plan = FaultPlan.from_env()
    return _plan


def maybe_fail(point: str) -> None:
    """Injection-point hook: no-op unless an active plan matches ``point``.

    The disabled path is one global read and an identity check — cheap
    enough to sit inside journal writes and HTTP dispatch.
    """
    if _plan is None:  # fast path: chaos explicitly off
        return
    plan = get_plan()
    if plan is not None:
        plan.maybe_fail(point)
