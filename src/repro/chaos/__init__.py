"""repro.chaos — stdlib fault injection for the service and dispatch layers.

Two complementary pieces:

* :mod:`repro.chaos.plan` — in-process fault plans.  Production seams call
  :func:`maybe_fail` under a stable injection-point name (``journal.append``,
  ``worker.run``, ``client.request``, ``server.request``,
  ``cache.disk_write``); an installed :class:`FaultPlan` (or one loaded from
  the ``REPRO_CHAOS`` environment variable) turns those call sites into
  probabilistic latency/exception injectors, deterministically seeded.
* :mod:`repro.chaos.proxy` — :class:`ChaosProxy`, a TCP proxy in front of a
  ``repro serve`` node injecting wire-level faults: connection resets,
  response truncation, added latency, and forced 5xx/429.

``repro chaos`` on the command line lists injection points, validates plan
specs, and runs a proxy.  The point of both is falsifiable robustness: the
hardened failure semantics (deadlines, circuit breaking, journal quarantine,
graceful shutdown) are tested by provoking the failures on demand, not by
hand-rolled doubles.
"""

from .plan import (
    INJECTION_POINTS,
    ChaosSpecError,
    FaultPlan,
    FaultRule,
    clear_plan,
    get_plan,
    install_plan,
    maybe_fail,
)
from .proxy import ChaosProxy

__all__ = [
    "INJECTION_POINTS",
    "ChaosProxy",
    "ChaosSpecError",
    "FaultPlan",
    "FaultRule",
    "clear_plan",
    "get_plan",
    "install_plan",
    "maybe_fail",
]
