"""ChaosProxy: a stdlib TCP/HTTP proxy that injects wire-level faults.

Sits in front of one ``repro serve`` node and forwards each HTTP request to
the upstream, optionally mangling it on the way back::

    upstream = create_server(port=0, ...)
    with ChaosProxy(upstream_port=upstream.port, reset_p=0.1,
                    latency_s=0.05, latency_p=0.3, error_p=0.1,
                    error_status=429, seed=7) as proxy:
        client = ServiceClient(proxy.url)
        ...

Fault modes (independent seeded rolls, per request):

* **forced error** (``error_p``): answer a synthetic ``error_status``
  (429/503/...) JSON envelope without contacting the upstream — a 429
  carries a ``Retry-After`` header, exactly like the real backpressure path;
* **connection reset** (``reset_p``): an abortive close (``SO_LINGER`` 0 →
  TCP RST) before the upstream is contacted;
* **latency** (``latency_p``/``latency_s``): sleep before relaying the
  upstream's response;
* **truncation** (``truncate_p``): relay only half of the response bytes,
  then reset — the client sees a short body against the advertised
  ``Content-Length``.

Every fault is retryable by :class:`repro.service.client.ServiceClient`
(resets and truncations are network errors, forced 429/5xx are retryable
statuses), which is the point: a dispatch through a ChaosProxy must produce
byte-identical results to a fault-free run.  The proxy handles one request
per connection (the stdlib client opens a fresh connection per request) and
counts what it did in :meth:`stats`.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time
from random import Random

from ..obs.metrics import get_metrics

__all__ = ["ChaosProxy"]

_PROXY_FAULTS = get_metrics().counter(
    "repro_chaos_proxy_faults_total",
    "Wire-level faults injected by ChaosProxy, by kind "
    "(forwarded, reset, error, latency, truncated).",
    ("kind",),
)

#: Reason phrases for the synthetic error responses the proxy can fabricate.
_REASONS = {429: "Too Many Requests", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable"}


def _read_http_message(handle, initial_line: bytes | None = None) -> bytes | None:
    """Read one full HTTP message (request or response) from a file object.

    Returns the raw bytes (start line + headers + body), or ``None`` when
    the peer closed before a full header block arrived.  Bodies are framed
    by ``Content-Length`` (both the stdlib client and server always send
    one); a missing length on a response means read-until-close.
    """
    lines: list[bytes] = []
    length: int | None = None
    line = initial_line if initial_line is not None else handle.readline()
    if not line:
        return None
    while line not in (b"\r\n", b"\n", b""):
        lines.append(line)
        lowered = line.lower()
        if lowered.startswith(b"content-length:"):
            try:
                length = int(line.split(b":", 1)[1].strip())
            except ValueError:
                length = None
        line = handle.readline()
    if not lines:
        return None
    head = b"".join(lines) + b"\r\n"
    if length is None:
        # Requests without a length have no body; responses without one are
        # delimited by connection close.
        body = handle.read() if lines[0].startswith(b"HTTP/") else b""
    else:
        body = handle.read(length)
    return head + body


class _ProxyHandler(socketserver.BaseRequestHandler):
    server: "_ProxyServer"

    def handle(self) -> None:  # noqa: D102 - socketserver API
        proxy = self.server.proxy
        client_file = self.request.makefile("rb")
        try:
            request_bytes = _read_http_message(client_file)
        finally:
            client_file.close()
        if request_bytes is None:
            return

        roll = proxy._roll
        if roll("error"):
            proxy._count("error")
            self.request.sendall(proxy._error_response())
            return
        if roll("reset"):
            proxy._count("reset")
            self._reset()
            return

        response = self._fetch_upstream(request_bytes)
        if response is None:
            # The upstream is gone; an abortive close tells the client the
            # same thing a dead node would.
            self._reset()
            return
        if roll("latency"):
            proxy._count("latency")
            time.sleep(proxy.latency_s)
        if roll("truncate"):
            proxy._count("truncate")
            self.request.sendall(response[: max(1, len(response) // 2)])
            self._reset()
            return
        proxy._count("forwarded")
        self.request.sendall(response)

    def _fetch_upstream(self, request_bytes: bytes) -> bytes | None:
        proxy = self.server.proxy
        try:
            with socket.create_connection(
                (proxy.upstream_host, proxy.upstream_port), timeout=proxy.timeout
            ) as upstream:
                upstream.sendall(request_bytes)
                upstream_file = upstream.makefile("rb")
                try:
                    return _read_http_message(upstream_file)
                finally:
                    upstream_file.close()
        except OSError:
            return None

    def _reset(self) -> None:
        """Abortive close: RST instead of FIN, like a crashed peer."""
        try:
            self.request.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            self.request.close()
        except OSError:
            pass


class _ProxyServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    proxy: "ChaosProxy"


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one HTTP upstream."""

    def __init__(
        self,
        upstream_port: int,
        upstream_host: str = "127.0.0.1",
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        reset_p: float = 0.0,
        latency_s: float = 0.0,
        latency_p: float = 0.0,
        error_p: float = 0.0,
        error_status: int = 503,
        retry_after: float = 0.05,
        truncate_p: float = 0.0,
        timeout: float = 30.0,
        seed: int = 0,
    ):
        for name, p in (("reset_p", reset_p), ("latency_p", latency_p),
                        ("error_p", error_p), ("truncate_p", truncate_p)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.latency_s = latency_s
        self.error_status = error_status
        self.retry_after = retry_after
        self.timeout = timeout
        self._probabilities = {
            "reset": reset_p,
            "latency": latency_p if latency_s > 0 else 0.0,
            "error": error_p,
            "truncate": truncate_p,
        }
        self._rng = Random(seed)
        self._rng_lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._server = _ProxyServer((listen_host, listen_port), _ProxyHandler)
        self._server.proxy = self
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Fault rolls / bookkeeping
    # ------------------------------------------------------------------ #

    def _roll(self, kind: str) -> bool:
        p = self._probabilities[kind]
        if p <= 0.0:
            return False
        with self._rng_lock:
            return self._rng.random() < p

    def _count(self, kind: str) -> None:
        with self._rng_lock:
            self._counts[kind] = self._counts.get(kind, 0) + 1
        _PROXY_FAULTS.inc(kind=kind)

    def _error_response(self) -> bytes:
        status = self.error_status
        body = json.dumps(
            {"error": f"chaos proxy: injected HTTP {status}",
             "retry_after": self.retry_after}
        ).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Injected Error')}",
            "Content-Type: application/json; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if status == 429:
            headers.append(f"Retry-After: {max(1, round(self.retry_after))}")
        return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ChaosProxy":
        if self._thread is not None:
            raise RuntimeError("proxy already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="chaos-proxy", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def stats(self) -> dict:
        with self._rng_lock:
            counts = dict(self._counts)
        return {
            "upstream": f"{self.upstream_host}:{self.upstream_port}",
            "listen": self.url,
            "counts": counts,
        }

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
