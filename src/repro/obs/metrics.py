"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

A tiny, dependency-free subset of the Prometheus data model, shared by every
layer of the stack: the HTTP server times requests per route, the worker pool
tracks queue depth and per-scenario run time, the result cache counts
hits/misses/disk errors, the journal counts appends, and the codec layer
records per-codec and per-pipeline-stage compress latency.  One process-wide
:class:`MetricsRegistry` (:func:`get_metrics`) aggregates everything and is
served by ``GET /v1/metrics`` in Prometheus text exposition format (or JSON
with ``?format=json``).

Design constraints, in priority order:

1. **Cheap on the hot path.**  An observation is a dict lookup plus a couple
   of float additions under one lock — instrumentation must stay far below
   the millisecond-scale work it measures.
2. **Always scrapeable.**  The standard metric families are declared when the
   registry is created, so a scrape right after startup (or right after a
   journal replay on a fresh process) sees every family, not just the ones
   that happened to be touched.
3. **Bounded cardinality.**  Histograms use fixed buckets; label values come
   from closed sets (route patterns, scenario names, codec names, states).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_metrics",
]


class MetricError(ValueError):
    """A metric was misdeclared or misused (bad name, label, or type clash)."""


_NAME_PATTERN = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_PATTERN = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

#: Default latency buckets (seconds): microservice-ish spread from 1 ms to
#: 1 min, matching the sub-second cache hits and multi-second suite jobs this
#: stack actually produces.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + body + "}"


class _Metric:
    """Shared series bookkeeping; the registry's lock guards every mutation."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...], lock):
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = lock
        self._series: dict[tuple[str, ...], Any] = {}
        if not labelnames:
            # Label-less metrics expose their zero value immediately, so a
            # scrape before any traffic still sees a numeric sample.
            self._series[()] = self._zero()

    def _zero(self) -> Any:
        return 0.0

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _series_labels(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key, strict=True))

    def samples(self) -> list[tuple[str, dict, float]]:
        """``(sample name, labels, value)`` triples for text exposition."""
        raise NotImplementedError

    def to_jsonable(self) -> dict:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def samples(self) -> list[tuple[str, dict, float]]:
        with self._lock:
            return [
                (self.name, self._series_labels(key), value)
                for key, value in self._series.items()
            ]

    def to_jsonable(self) -> dict:
        with self._lock:
            series = [
                {"labels": self._series_labels(key), "value": float(value)}
                for key, value in self._series.items()
            ]
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames), "series": series}


class Gauge(Counter):
    """A value that can go up and down (queue depth, uptime, window size)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)


class Histogram(_Metric):
    """Fixed-bucket distribution; renders ``_bucket``/``_sum``/``_count``."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets: Iterable[float] | None):
        chosen = tuple(
            sorted(float(b) for b in (DEFAULT_BUCKETS if buckets is None else buckets))
        )
        if not chosen:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        self.buckets = chosen
        super().__init__(name, help, labelnames, lock)

    def _zero(self) -> Any:
        # [per-bucket counts..., +Inf count is implicit via total] + sum + count
        return {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._zero()
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return int(series["count"]) if series else 0

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return float(series["sum"]) if series else 0.0

    def samples(self) -> list[tuple[str, dict, float]]:
        out: list[tuple[str, dict, float]] = []
        with self._lock:
            for key, series in self._series.items():
                labels = self._series_labels(key)
                for bound, count in zip(self.buckets, series["counts"], strict=True):
                    out.append(
                        (f"{self.name}_bucket",
                         {**labels, "le": _format_value(bound)}, count)
                    )
                out.append(
                    (f"{self.name}_bucket", {**labels, "le": "+Inf"}, series["count"])
                )
                out.append((f"{self.name}_sum", dict(labels), series["sum"]))
                out.append((f"{self.name}_count", dict(labels), series["count"]))
        return out

    def to_jsonable(self) -> dict:
        with self._lock:
            series = [
                {
                    "labels": self._series_labels(key),
                    "buckets": {
                        _format_value(bound): count
                        for bound, count in zip(self.buckets, entry["counts"], strict=True)
                    },
                    "sum": float(entry["sum"]),
                    "count": int(entry["count"]),
                }
                for key, entry in self._series.items()
            ]
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames),
                "bucket_bounds": [float(b) for b in self.buckets],
                "series": series}


class MetricsRegistry:
    """Get-or-create metric families, rendered as Prometheus text or JSON.

    ``counter``/``gauge``/``histogram`` return the existing family when the
    name is already declared — with the same type and label names, otherwise
    :class:`MetricError` — so independent modules can share families without
    import-order coupling.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------ #
    # Declaration
    # ------------------------------------------------------------------ #

    def _declare(self, cls, name: str, help: str,
                 labelnames: Iterable[str], **kwargs) -> Any:
        if not _NAME_PATTERN.fullmatch(name):
            raise MetricError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_PATTERN.fullmatch(label) or label == "le":
                raise MetricError(f"invalid label name {label!r} for {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise MetricError(
                        f"metric {name!r} already declared as {existing.kind} "
                        f"with labels {sorted(existing.labelnames)}"
                    )
                return existing
            if cls is Histogram:
                metric = cls(name, help, labelnames, self._lock, kwargs.get("buckets"))
            else:
                metric = cls(name, help, labelnames, self._lock)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    # ------------------------------------------------------------------ #
    # Introspection / exposition
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 (one ``# TYPE`` per family)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                escaped = metric.help.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {name} {escaped}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{_render_labels(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def to_jsonable(self) -> dict:
        return {
            "families": {name: self._metrics[name].to_jsonable() for name in self.names()}
        }

    def reset(self) -> None:
        """Zero every series (tests); declared families stay declared."""
        with self._lock:
            for metric in self._metrics.values():
                labelless = () in metric._series
                metric._series.clear()
                if labelless or not metric.labelnames:
                    metric._series[()] = metric._zero()


# --------------------------------------------------------------------------- #
# The process-wide registry and its standard families
# --------------------------------------------------------------------------- #


def declare_standard_families(registry: MetricsRegistry) -> None:
    """Pre-declare every family the stack's instrumentation writes to.

    Declared once at registry creation, so ``GET /v1/metrics`` exposes the
    full family set from the very first scrape — including after a service
    restart, when journal replay rather than live traffic repopulates the
    counters.
    """
    registry.counter(
        "repro_http_requests_total",
        "HTTP requests served, by method, route pattern, and status code.",
        ("method", "route", "status"),
    )
    registry.histogram(
        "repro_http_request_seconds",
        "HTTP request handling latency per route pattern.",
        ("route",),
    )
    registry.counter(
        "repro_jobs_total",
        "Job lifecycle events per scenario: submitted, cache_hit, dedup_hit, "
        "rejected, restored, done, failed, cancelled.",
        ("scenario", "event"),
    )
    registry.gauge(
        "repro_job_queue_depth",
        "Unfinished (queued or running) jobs currently held by the worker pool.",
    )
    registry.histogram(
        "repro_job_queue_wait_seconds",
        "Time jobs spent queued before a worker picked them up.",
    )
    registry.histogram(
        "repro_job_run_seconds",
        "Job execution wall-clock time per scenario.",
        ("scenario",),
    )
    registry.counter(
        "repro_cache_hits_total", "Result-cache hits (memory or disk)."
    )
    registry.counter("repro_cache_misses_total", "Result-cache misses.")
    registry.counter("repro_cache_stores_total", "Result-cache stores.")
    registry.counter(
        "repro_cache_evictions_total", "Result-cache LRU evictions."
    )
    registry.counter(
        "repro_cache_disk_errors_total",
        "Failed best-effort disk reads/writes of the result cache.",
    )
    registry.counter(
        "repro_journal_appends_total",
        "Job-journal lines appended, by event.",
        ("event",),
    )
    registry.counter(
        "repro_journal_write_errors_total",
        "Journal lines lost to write errors (full disk, unserializable params).",
    )
    registry.counter(
        "repro_journal_quarantined_total",
        "Corrupt journal lines moved to journal.quarantine.jsonl, by reason.",
        ("reason",),
    )
    registry.counter(
        "repro_journal_sink_errors_total",
        "Journal fan-out sink invocations that raised (line kept locally).",
    )
    registry.counter(
        "repro_chaos_injections_total",
        "Faults injected by the active chaos plan, by injection point and mode.",
        ("point", "mode"),
    )
    registry.counter(
        "repro_chaos_proxy_faults_total",
        "Wire-level faults injected by ChaosProxy, by kind "
        "(forwarded, reset, error, latency, truncated).",
        ("kind",),
    )
    registry.counter(
        "repro_breaker_transitions_total",
        "ServiceClient circuit-breaker state transitions, by new state.",
        ("state",),
    )
    registry.histogram(
        "repro_codec_compress_seconds",
        "Codec compress latency per codec (pipelines report as 'pipeline').",
        ("codec",),
    )
    registry.histogram(
        "repro_pipeline_stage_seconds",
        "Per-stage compress latency inside pipeline codecs.",
        ("codec",),
    )
    registry.counter(
        "repro_client_retries_total",
        "ServiceClient retry attempts, by cause.",
        ("reason",),
    )
    registry.counter(
        "repro_client_reconciliations_total",
        "Retried submits resolved by digest lookup instead of re-posting "
        "(double-submit prevention).",
    )
    registry.counter(
        "repro_dispatch_cooldowns_total",
        "Dispatcher 429-saturation cooldowns (node window shrunk, cell parked).",
    )
    registry.counter(
        "repro_gateway_requests_total",
        "Gateway HTTP requests, by route pattern, status code, and tenant.",
        ("route", "status", "tenant"),
    )
    registry.histogram(
        "repro_gateway_proxy_seconds",
        "Gateway proxied-request latency (upstream round trip) per route.",
        ("route",),
    )
    registry.gauge(
        "repro_gateway_nodes",
        "Registered nodes currently in each health state.",
        ("state",),
    )
    registry.counter(
        "repro_gateway_node_transitions_total",
        "Node health-state transitions observed by the gateway registry, "
        "by new state.",
        ("state",),
    )
    registry.counter(
        "repro_gateway_heartbeats_total",
        "Node heartbeats handled by the gateway, by outcome "
        "(ok, unknown, skew).",
        ("outcome",),
    )
    registry.counter(
        "repro_gateway_replicated_lines_total",
        "Journal lines streamed into the gateway's replica store, by outcome "
        "(accepted, rejected).",
        ("outcome",),
    )
    registry.counter(
        "repro_gateway_failover_replays_total",
        "Unfinished jobs of dead nodes replayed onto survivors, by outcome "
        "(replayed, already_finished, failed).",
        ("outcome",),
    )
    registry.counter(
        "repro_gateway_quota_rejections_total",
        "Tenant requests rejected by gateway quotas, by tenant and reason "
        "(rate, inflight, unauthorized).",
        ("tenant", "reason"),
    )
    registry.histogram(
        "repro_operation_seconds",
        "Latency of named operations timed with repro.obs.timed().",
        ("operation",),
    )
    registry.counter(
        "repro_warehouse_ingested_total",
        "Warehouse ingest outcomes per cell, by outcome "
        "(inserted, duplicate, invalid).",
        ("outcome",),
    )
    registry.histogram(
        "repro_warehouse_query_seconds",
        "Warehouse query latency (filter + pivot + sort).",
    )


_metrics_lock = threading.Lock()
_metrics: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (standard families pre-declared)."""
    global _metrics
    if _metrics is None:
        with _metrics_lock:
            if _metrics is None:
                registry = MetricsRegistry()
                declare_standard_families(registry)
                _metrics = registry
    return _metrics
