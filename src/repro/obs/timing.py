"""One timing idiom for the whole repo: ``with timed("name") as t:``.

Replaces the ad-hoc ``time.perf_counter()`` pairs that had drifted into
``cli.py`` and the eval layer.  Every timed block feeds the same
``repro_operation_seconds{operation=...}`` histogram the ``/v1/metrics``
endpoint serves, so a CLI ``--json`` elapsed figure and a metrics scrape are
the same measurement, not two near-identical ones.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator

from .metrics import get_metrics

__all__ = ["Timer", "timed"]


class Timer:
    """Handle yielded by :func:`timed`; ``.seconds`` is live until exit."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._stopped: float | None = None

    def stop(self) -> float:
        if self._stopped is None:
            self._stopped = time.perf_counter() - self._start
        return self._stopped

    @property
    def seconds(self) -> float:
        if self._stopped is not None:
            return self._stopped
        return time.perf_counter() - self._start


@contextlib.contextmanager
def timed(operation: str) -> Iterator[Timer]:
    """Time a block and observe it as ``repro_operation_seconds{operation}``.

    The observation happens even when the block raises — a slow failure is
    still a latency sample worth having.
    """
    timer = Timer()
    try:
        yield timer
    finally:
        get_metrics().histogram(
            "repro_operation_seconds",
            "Latency of named operations timed with repro.obs.timed().",
            ("operation",),
        ).observe(timer.stop(), operation=operation)
