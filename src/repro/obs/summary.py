"""Offline latency profiling of a campaign run directory.

Reports are byte-identical across local, resumed, and federated runs — that
is test- and CI-enforced — so per-cell timing deliberately lives *outside*
``report.json``: checkpoints carry a ``"timing"`` sibling key that the report
builder never reads.  This module is the consumer of that provenance: it
joins ``manifest.json`` with every checkpoint's timing block and aggregates
per-stage (grid) latency, answering "which cells were slow" without touching
the deterministic artifacts.

Cells checkpointed before this instrumentation existed simply have no timing
block; they are counted but excluded from the latency statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["SummaryError", "format_summary_table", "summarize_run_dir"]


class SummaryError(RuntimeError):
    """The directory is not a campaign run dir, or its manifest is unreadable."""


def _load_json(path: Path) -> Any:
    try:
        with path.open("r", encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        raise SummaryError(f"cannot read {path}: {exc}") from exc


def summarize_run_dir(run_dir: str | Path) -> dict:
    """Aggregate per-stage latency from a run directory's checkpoints."""
    run_dir = Path(run_dir)
    manifest_path = run_dir / "manifest.json"
    if not manifest_path.is_file():
        raise SummaryError(
            f"{run_dir} is not a campaign run directory (no manifest.json)"
        )
    manifest = _load_json(manifest_path)
    results_dir = run_dir / "results"

    stages: dict[str, dict] = {}
    for grid in manifest.get("stage_order", []):
        stages[grid] = {
            "grid": grid,
            "cells": 0,
            "checkpointed": 0,
            "timed": 0,
            "cached": 0,
            "total_seconds": 0.0,
            "mean_seconds": None,
            "max_seconds": None,
            "slowest_cell": None,
            "workers": set(),
        }

    for entry in manifest.get("cells", []):
        grid = entry.get("grid")
        stage = stages.setdefault(
            grid,
            {
                "grid": grid, "cells": 0, "checkpointed": 0, "timed": 0,
                "cached": 0, "total_seconds": 0.0, "mean_seconds": None,
                "max_seconds": None, "slowest_cell": None, "workers": set(),
            },
        )
        stage["cells"] += 1
        checkpoint_path = results_dir / f"{entry['digest']}.json"
        if not checkpoint_path.is_file():
            continue
        stage["checkpointed"] += 1
        try:
            checkpoint = _load_json(checkpoint_path)
        except SummaryError:
            continue
        timing = checkpoint.get("timing")
        if not isinstance(timing, dict):
            continue
        wall = timing.get("wall_seconds")
        if not isinstance(wall, (int, float)):
            continue
        stage["timed"] += 1
        stage["total_seconds"] += float(wall)
        if stage["max_seconds"] is None or wall > stage["max_seconds"]:
            stage["max_seconds"] = float(wall)
            stage["slowest_cell"] = entry.get("cell")
        if timing.get("cache_hit"):
            stage["cached"] += 1
        worker = timing.get("worker")
        if worker:
            stage["workers"].add(str(worker))

    for stage in stages.values():
        if stage["timed"]:
            stage["mean_seconds"] = stage["total_seconds"] / stage["timed"]
        stage["workers"] = sorted(stage["workers"])

    ordered = manifest.get("stage_order") or sorted(stages)
    stage_rows = [stages[name] for name in ordered if name in stages]
    for name in sorted(stages):
        if name not in ordered:
            stage_rows.append(stages[name])
    return {
        "campaign": manifest.get("campaign"),
        "spec_digest": manifest.get("spec_digest"),
        "run_dir": str(run_dir),
        "total_cells": manifest.get("total_cells", sum(s["cells"] for s in stage_rows)),
        "stages": stage_rows,
    }


def format_summary_table(summary: dict) -> str:
    """Render the per-stage latency table `repro obs summary` prints."""
    headers = ("stage", "cells", "done", "timed", "cached",
               "total_s", "mean_s", "max_s", "slowest_cell", "workers")
    rows = []
    for stage in summary["stages"]:
        def fmt(value):
            return f"{value:.3f}" if isinstance(value, float) else "-"
        rows.append(
            (
                str(stage["grid"]),
                str(stage["cells"]),
                str(stage["checkpointed"]),
                str(stage["timed"]),
                str(stage["cached"]),
                fmt(stage["total_seconds"] if stage["timed"] else None),
                fmt(stage["mean_seconds"]),
                fmt(stage["max_seconds"]),
                str(stage["slowest_cell"] or "-"),
                ",".join(stage["workers"]) or "-",
            )
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
