"""repro.obs — metrics, tracing, and profiling for the whole stack.

Three stdlib-only pieces, shared by the service, campaign, and codec layers:

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and fixed-bucket histograms, rendered as Prometheus text by
  ``GET /v1/metrics`` (:func:`get_metrics`).
* :mod:`repro.obs.trace` — trace spans with contextvar propagation in
  process and an ``X-Repro-Trace`` header across HTTP, recorded to an
  in-memory ring (``GET /v1/jobs/<id>/trace``) and an optional JSONL log
  next to the job journal.
* :mod:`repro.obs.timing` — :func:`timed`, the one timing idiom for CLI and
  eval code, feeding ``repro_operation_seconds``.

``repro obs`` on the command line exposes all three (``metrics``, ``trace``,
``summary``).
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_metrics,
)
from .summary import SummaryError, format_summary_table, summarize_run_dir
from .timing import Timer, timed
from .trace import (
    TRACE_HEADER,
    Span,
    TraceBuffer,
    TraceContext,
    TraceLog,
    activate,
    build_span_tree,
    current_context,
    format_traceparent,
    get_recorder,
    new_trace_id,
    parse_traceparent,
    span,
    start_span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "SummaryError",
    "TRACE_HEADER",
    "Timer",
    "TraceBuffer",
    "TraceContext",
    "TraceLog",
    "activate",
    "build_span_tree",
    "current_context",
    "format_summary_table",
    "format_traceparent",
    "get_metrics",
    "get_recorder",
    "new_trace_id",
    "parse_traceparent",
    "span",
    "start_span",
    "summarize_run_dir",
    "timed",
]
