"""Trace spans with context propagation across threads, processes, and HTTP.

A trace is a tree of spans sharing one ``trace_id``.  The id is minted at the
first instrumented boundary a request crosses — HTTP ingress, CLI entry, or
``WorkerPool.submit`` for direct submissions — and every span started while a
context is active becomes a child of it.  Propagation:

* **In-process**: a :mod:`contextvars` context variable, so spans flow through
  threads started via executors that copy context (and explicitly via
  :func:`activate` where they do not).
* **Across HTTP**: the ``X-Repro-Trace: <32-hex trace_id>-<16-hex span_id>``
  header, injected by :class:`~repro.service.client.ServiceClient` from the
  current context and honored by the server at ingress.  Malformed headers are
  ignored (a fresh trace starts) — tracing must never fail a request.
* **Across the journal**: a job's ``trace_id`` rides in its submit record, so
  replayed jobs keep their trace identity after a restart.

Finished spans fan out to sinks: an in-memory ring buffer
(:class:`TraceBuffer`, backing ``GET /v1/jobs/<id>/trace``) and optionally a
JSONL :class:`TraceLog` next to the job journal.  Sink errors are swallowed —
observability is best-effort by design, like the journal.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "TRACE_HEADER",
    "Span",
    "SpanRecorder",
    "TraceBuffer",
    "TraceContext",
    "TraceLog",
    "activate",
    "build_span_tree",
    "current_context",
    "format_traceparent",
    "get_recorder",
    "new_trace_id",
    "parse_traceparent",
    "span",
    "start_span",
]

#: HTTP header carrying ``<trace_id>-<span_id>`` across service boundaries.
TRACE_HEADER = "X-Repro-Trace"

_TRACEPARENT = re.compile(r"([0-9a-f]{32})-([0-9a-f]{16})")


def new_trace_id() -> str:
    # os.urandom().hex() over uuid4(): same 128 random bits without paying
    # for a UUID object on every span (spans wrap sub-millisecond codec calls).
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) pair child spans attach to."""

    trace_id: str
    span_id: str


def format_traceparent(ctx: TraceContext) -> str:
    return f"{ctx.trace_id}-{ctx.span_id}"


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse a ``X-Repro-Trace`` header value; ``None`` if malformed."""
    if not value:
        return None
    match = _TRACEPARENT.fullmatch(value.strip().lower())
    if not match:
        return None
    return TraceContext(trace_id=match.group(1), span_id=match.group(2))


_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> TraceContext | None:
    """The active trace context of this thread/task, if any."""
    return _current.get()


@dataclass
class Span:
    """One timed operation inside a trace.

    Spans from :func:`span` finish automatically; manually created spans
    (:func:`start_span`) must call :meth:`finish` exactly once — repeat
    finishes are ignored so error paths can finish defensively.
    """

    name: str
    trace_id: str
    span_id: str = field(default_factory=_new_span_id)
    parent_id: str | None = None
    start_time: float = field(default_factory=time.time)
    duration: float | None = None
    status: str = "ok"
    error: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    _start_pc: float = field(default_factory=time.perf_counter, repr=False)
    _finished: bool = field(default=False, repr=False)

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def finish(
        self,
        status: str | None = None,
        error: str | None = None,
        duration: float | None = None,
    ) -> None:
        """Close the span and emit it to the recorder's sinks.

        ``duration`` overrides the measured wall clock — used when the real
        execution happened elsewhere (process-pool workers measure their own
        run time and the parent backfills it).
        """
        if self._finished:
            return
        self._finished = True
        self.duration = (
            float(duration) if duration is not None
            else time.perf_counter() - self._start_pc
        )
        if status is not None:
            self.status = status
        if error is not None:
            self.error = error
            self.status = "error"
        get_recorder().emit(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
        }


def start_span(
    name: str,
    attrs: dict[str, Any] | None = None,
    parent: TraceContext | None = None,
) -> Span:
    """Create a span without activating it (caller finishes it explicitly).

    Parents to ``parent`` if given, else to the current context, else mints a
    new trace.  The contextvar is untouched — use :func:`activate` (or the
    :func:`span` context manager) to make it the parent of nested work.
    """
    ctx = parent if parent is not None else current_context()
    if ctx is None:
        return Span(name=name, trace_id=new_trace_id(), attrs=dict(attrs or {}))
    return Span(
        name=name,
        trace_id=ctx.trace_id,
        parent_id=ctx.span_id,
        attrs=dict(attrs or {}),
    )


@contextlib.contextmanager
def activate(target: Span | TraceContext | None) -> Iterator[None]:
    """Make ``target`` the current context for the ``with`` body."""
    ctx = target.context if isinstance(target, Span) else target
    token = _current.set(ctx)
    try:
        yield
    finally:
        _current.reset(token)


@contextlib.contextmanager
def span(
    name: str,
    attrs: dict[str, Any] | None = None,
    parent: TraceContext | None = None,
) -> Iterator[Span]:
    """Start an active child span; finishes on exit (``error`` on exception)."""
    current = start_span(name, attrs=attrs, parent=parent)
    token = _current.set(current.context)
    try:
        yield current
    except BaseException as exc:
        current.finish(error=f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _current.reset(token)
        current.finish()  # no-op if the except branch already closed it


# --------------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------------- #


class TraceBuffer:
    """In-memory ring of recent finished spans, queryable by trace id."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        # A deque ring: appends stay O(1) once full (a list would memmove
        # the whole buffer per append, a real cost on the codec hot path).
        self._spans: deque[dict] = deque(maxlen=capacity)

    def __call__(self, record: dict) -> None:
        with self._lock:
            self._spans.append(record)

    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def spans_for_trace(self, trace_id: str) -> list[dict]:
        with self._lock:
            return [s for s in self._spans if s.get("trace_id") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class TraceLog:
    """Append-only JSONL span log (one file, best-effort, like the journal)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.write_errors = 0
        self.read_errors = 0

    def __call__(self, record: dict) -> None:
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):
            self.write_errors += 1
            return
        with self._lock:
            try:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
            except OSError:
                self.write_errors += 1

    def read(self) -> list[dict]:
        """Parse the log, skipping lines torn by a crash."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    self.read_errors += 1
        return records


class SpanRecorder:
    """Fans finished spans out to registered sinks, swallowing sink errors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: list = []
        self.sink_errors = 0
        self.buffer = TraceBuffer()
        self._sinks.append(self.buffer)

    def add_sink(self, sink) -> None:
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(self, span_obj: Span) -> None:
        record = span_obj.to_dict()
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception:
                # A broken sink must never break the traced code, but the
                # swallow has to stay visible somewhere.
                self.sink_errors += 1


_recorder_lock = threading.Lock()
_recorder: SpanRecorder | None = None


def get_recorder() -> SpanRecorder:
    """The process-wide span recorder."""
    global _recorder
    if _recorder is None:
        with _recorder_lock:
            if _recorder is None:
                _recorder = SpanRecorder()
    return _recorder


# --------------------------------------------------------------------------- #
# Span-tree assembly (for /v1/jobs/<id>/trace and `repro obs trace`)
# --------------------------------------------------------------------------- #


def build_span_tree(spans: Iterable[dict]) -> list[dict]:
    """Nest flat span records into parent->children trees.

    Spans whose parent is absent (still open, evicted from the ring, or on
    another node) become roots, so partial traces still render.  Roots and
    children sort by start time.
    """
    nodes = {
        record["span_id"]: {**record, "children": []}
        for record in spans
        if record.get("span_id")
    }
    roots = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def sort_key(node):
        return (node.get("start_time") or 0.0, node["span_id"])
    for node in nodes.values():
        node["children"].sort(key=sort_key)
    roots.sort(key=sort_key)
    return roots
