"""Stripes [19]: dense bit-serial baseline.

Stripes processes weights bit-serially but skips nothing: every bit of every
weight occupies a lane-cycle.  The paper treats it as the dense bit-serial
reference all speedups in Figure 12 are normalized to, evaluated on the same
8-bit models as every other design.
"""

from __future__ import annotations

import numpy as np

from .area_power import PEDesign, stripes_pe
from .common import BitSerialAccelerator, GroupCycleStats
from ..nn.synthetic import LayerWeights

__all__ = ["StripesAccelerator"]


class StripesAccelerator(BitSerialAccelerator):
    """Dense bit-serial accelerator (no sparsity exploitation)."""

    name = "Stripes"

    def __init__(self, weight_bits: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.weight_bits = weight_bits

    def pe_design(self) -> PEDesign:
        return stripes_pe()

    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        groups = self.layer_groups(layer)
        # Every group needs group_size * weight_bits bit-operations, spread
        # over the PE's lanes, with no skipping: the cycle count is a constant.
        cycles_per_group = (
            self.array.pe_group_size * self.weight_bits / self.array.lanes_per_pe
        )
        cycles = np.full(groups.shape[0], cycles_per_group)
        return GroupCycleStats(actual=cycles, minimal=cycles.copy())
