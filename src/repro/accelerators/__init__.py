"""Cycle-level accelerator models: BitVert and the six baselines.

* :mod:`repro.accelerators.common` — shared array geometry, statistical cycle
  model and result containers.
* :mod:`repro.accelerators.area_power` — component-level PE area/power model
  (Tables IV, V, VI).
* :mod:`repro.accelerators.stripes` / ``pragmatic`` / ``bitlet`` /
  ``bitwave`` / ``sparten`` / ``ant_accel`` — the baseline designs.
* :mod:`repro.accelerators.bitvert` — the paper's accelerator (PE, scheduler,
  channel reordering, array model).
"""

from .ant_accel import AntAccelerator, ant_pe
from .area_power import (
    DEFAULT_GATE_COSTS,
    GateCosts,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    PE_BUILDERS,
    PEDesign,
    bitlet_pe,
    bitvert_pe,
    bitwave_pe,
    olive_pe,
    pragmatic_pe,
    stripes_pe,
)
from .bitlet import BitletAccelerator
from .bitvert import (
    BitVertAccelerator,
    BitVertPE,
    ChannelReordering,
    ColumnSchedule,
    PEResult,
    reorder_channels,
    schedule_column,
    unshuffle_output,
)
from .bitwave import BitWaveAccelerator
from .common import (
    Accelerator,
    ArrayConfig,
    BitSerialAccelerator,
    GroupCycleStats,
    LayerPerformance,
    ModelPerformance,
    expected_wave_cycles,
)
from .pragmatic import PragmaticAccelerator
from .sparten import SparTenAccelerator, sparten_pe
from .stripes import StripesAccelerator

__all__ = [
    "AntAccelerator",
    "ant_pe",
    "DEFAULT_GATE_COSTS",
    "GateCosts",
    "PAPER_TABLE_IV",
    "PAPER_TABLE_V",
    "PAPER_TABLE_VI",
    "PE_BUILDERS",
    "PEDesign",
    "bitlet_pe",
    "bitvert_pe",
    "bitwave_pe",
    "olive_pe",
    "pragmatic_pe",
    "stripes_pe",
    "BitletAccelerator",
    "BitVertAccelerator",
    "BitVertPE",
    "ChannelReordering",
    "ColumnSchedule",
    "PEResult",
    "reorder_channels",
    "schedule_column",
    "unshuffle_output",
    "BitWaveAccelerator",
    "Accelerator",
    "ArrayConfig",
    "BitSerialAccelerator",
    "GroupCycleStats",
    "LayerPerformance",
    "ModelPerformance",
    "expected_wave_cycles",
    "PragmaticAccelerator",
    "SparTenAccelerator",
    "sparten_pe",
    "StripesAccelerator",
]
