"""BitVert accelerator performance model (Figure 10 and Section V).

BitVert combines three effects, all modelled here:

* **runtime BBS skipping** — every weight bit column costs one cycle instead
  of two, because after the per-sub-group direction choice at most half of the
  column's bits are effectual and the 8 lanes (plus the subtractor path) cover
  all 16 weights in a single cycle;
* **binary pruning** — compressed groups store only ``8 - pruned`` columns, so
  they finish in ``max(2, 8 - pruned)`` cycles and fetch proportionally fewer
  weight bytes (plus one metadata byte per group);
* **channel reordering** — sensitive (8-bit) channels are processed in their
  own chunks, so mixing precisions does not create inter-PE stalls.

The accelerator applies the paper's hardware-aware global binary pruning
(Algorithm 2) to the whole model before evaluating it; the conservative and
moderate presets of Section V-A are the two configurations reported in
Figures 12/13.
"""

from __future__ import annotations

import numpy as np

from ..area_power import PEDesign, bitvert_pe
from ..common import BitSerialAccelerator, GroupCycleStats, ModelPerformance
from ...core.binary_pruning import PrunedTensor, prune_tensor
from ...core.bitplane import to_bitplanes
from ...core.encoding import METADATA_BITS
from ...core.global_pruning import (
    MODERATE_PRESET,
    PruningPreset,
    global_binary_prune,
)
from ...nn.model_zoo import ModelSpec
from ...nn.synthetic import LayerWeights
from ...nn.workloads import GemmWorkload

__all__ = ["BitVertAccelerator"]


class BitVertAccelerator(BitSerialAccelerator):
    """The paper's accelerator: BBS skipping + binary pruning + reordering."""

    name = "BitVert"

    def __init__(
        self,
        preset: PruningPreset = MODERATE_PRESET,
        sub_group: int = 8,
        min_cycles_per_group: int = 2,
        weight_bits: int = 8,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.preset = preset
        self.sub_group = sub_group
        self.min_cycles_per_group = min_cycles_per_group
        self.weight_bits = weight_bits
        self.name = f"BitVert ({preset.name})"
        self._compressed: dict[str, PrunedTensor] = {}

    def pe_design(self) -> PEDesign:
        return bitvert_pe(sub_group=self.sub_group, optimized=True)

    # ------------------------------------------------------------- compression
    def compress_model(
        self, model: ModelSpec, weights: dict[str, LayerWeights]
    ) -> dict[str, PrunedTensor]:
        """Run global binary pruning over all layers and cache the result."""
        layer_weights = {name: lw.int_weights for name, lw in weights.items()}
        channel_scores = {name: lw.channel_scores for name, lw in weights.items()}
        result = global_binary_prune(
            layer_weights, channel_scores, preset=self.preset, keep_original=False
        )
        self._compressed = dict(result.pruned_layers)
        return self._compressed

    def _layer_compression(self, layer: LayerWeights) -> PrunedTensor:
        if layer.name in self._compressed:
            return self._compressed[layer.name]
        # Stand-alone layer evaluation: select the sensitive channels locally.
        scores = np.asarray(layer.channel_scores, dtype=np.float64)
        count = int(np.ceil(self.preset.beta * scores.size))
        sensitive = np.zeros(scores.size, dtype=bool)
        if count:
            sensitive[np.argsort(-scores, kind="stable")[:count]] = True
        compressed = prune_tensor(
            layer.int_weights,
            num_columns=self.preset.num_columns,
            strategy=self.preset.strategy,
            group_size=self.preset.group_size,
            bits=self.weight_bits,
            sensitive_channels=sensitive,
            keep_original=False,
        )
        self._compressed[layer.name] = compressed
        return compressed

    def run_model(
        self, model: ModelSpec, weights: dict[str, LayerWeights]
    ) -> ModelPerformance:
        self.compress_model(model, weights)
        return super().run_model(model, weights)

    # ------------------------------------------------------------------ cycles
    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        compressed = self._layer_compression(layer)
        pe_group = self.array.pe_group_size
        lanes = self.array.lanes_per_pe

        pruned_per_group = compressed.num_redundant + compressed.num_sparse
        channels, encoding_groups = pruned_per_group.shape
        sensitive = ~compressed.pruned_channel_mask  # True = 8-bit channel

        # Cycles per PE group: stored columns for pruned channels, the full
        # word width for sensitive channels (runtime BBS still gives one cycle
        # per column).  Each encoding group (32 weights) spans two PE groups
        # (16 weights) with the same column count.
        pe_groups_per_encoding_group = max(1, self.preset.group_size // pe_group)
        stored_columns = self.weight_bits - pruned_per_group
        stored_columns = np.where(
            sensitive[:, None], self.weight_bits, stored_columns
        )
        actual = np.maximum(self.min_cycles_per_group, stored_columns)
        actual = np.repeat(actual.reshape(-1), pe_groups_per_encoding_group).astype(np.float64)
        partition = np.repeat(
            np.broadcast_to(sensitive[:, None], (channels, encoding_groups)).reshape(-1),
            pe_groups_per_encoding_group,
        ).astype(np.int64)

        # Lower bound: the BBS-effectual (per-sub-group minority) bits of the
        # pruned weights, spread over the lanes.
        minimal = self._minimal_cycles(compressed.values, lanes)
        minimal = np.minimum(self._match_group_counts(actual, minimal), actual)
        return GroupCycleStats(actual=actual, minimal=minimal, partition=partition)

    def _minimal_cycles(self, pruned_weights: np.ndarray, lanes: int) -> np.ndarray:
        """Per-PE-group lower bound from the per-sub-group minority bit counts."""
        pe_group = self.array.pe_group_size
        weights = np.asarray(pruned_weights)
        lo, hi = -(1 << (self.weight_bits - 1)), (1 << (self.weight_bits - 1)) - 1
        weights = np.clip(weights, lo, hi)
        channels, reduction = weights.shape
        usable = reduction - (reduction % pe_group)
        if usable == 0:
            padded = np.zeros((channels, pe_group), dtype=weights.dtype)
            padded[:, :reduction] = weights
            groups = padded
        else:
            groups = weights[:, :usable].reshape(-1, pe_group)
        planes = to_bitplanes(groups.astype(np.int64), self.weight_bits)
        num_groups = groups.shape[0]
        sub_groups = pe_group // self.sub_group
        per_sub = planes.reshape(num_groups, sub_groups, self.sub_group, self.weight_bits)
        ones = per_sub.sum(axis=2)
        minority = np.minimum(ones, self.sub_group - ones)
        effectual = minority.sum(axis=(1, 2))
        minimal = np.ceil(effectual / lanes)
        return np.maximum(minimal, 1.0).astype(np.float64)

    def _match_group_counts(self, actual: np.ndarray, minimal: np.ndarray) -> np.ndarray:
        if minimal.size == actual.size:
            return minimal
        # The encoding-group expansion and the PE-group reshape can disagree by
        # a few groups when the sampled reduction is not a multiple of the
        # encoding group size; resample the smaller array to match.
        if minimal.size == 0:
            return np.ones_like(actual)
        indices = np.linspace(0, minimal.size - 1, actual.size).astype(np.int64)
        return minimal[indices]

    # ------------------------------------------------------------------ memory
    def stored_weight_bytes(self, workload: GemmWorkload, layer: LayerWeights) -> float:
        compressed = self._layer_compression(layer)
        bits_per_weight = self._effective_bits(compressed)
        return workload.weight_count * bits_per_weight / 8.0

    def _effective_bits(self, compressed: PrunedTensor) -> float:
        pruned_per_group = compressed.num_redundant + compressed.num_sparse
        sensitive = ~compressed.pruned_channel_mask
        group = compressed.group_size
        stored_bits = (self.weight_bits - pruned_per_group) * group + METADATA_BITS
        dense_bits = self.weight_bits * group
        per_group_bits = np.where(sensitive[:, None], dense_bits, stored_bits)
        return float(per_group_bits.mean()) / group
