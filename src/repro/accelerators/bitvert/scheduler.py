"""BitVert scheduler (Figure 8): bit-column direction selection and lane dispatch.

For every weight bit column the scheduler decides which symbol is sparse
(zeros or ones), inverts the column if ones dominate, and then drives four
sliding priority encoders that locate the (at most ``sub_group/2``) effectual
bits and produce the ``sel``/``val`` signals for the PE's activation muxes.
It also tracks the column significance (``col_idx``) starting from
``7 - #redundant_columns`` and decrementing every cycle.

The sliding-window encoder arrangement is the paper's key trick for shrinking
the activation muxes: encoder *i* only ever needs to select among activations
``A_i .. A_{i + sub_group/2}``, because when at most half the bits of the
sub-group are effectual, the *i*-th effectual bit (counting from position 0)
can only sit in that window.  ``schedule_column`` implements exactly that
hardware and the tests prove the window property holds for every bit pattern
with ≤ 50 % effectual bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ColumnSchedule", "schedule_column", "column_index_sequence"]


@dataclass(frozen=True)
class ColumnSchedule:
    """Control signals for one bit column of one sub-group.

    Attributes
    ----------
    invert:
        True when ones dominate the column, i.e. the PE must subtract the
        selected activations from the sub-group activation sum (Eq. 3).
    selections:
        Index of the activation each lane must select, one entry per lane
        (``sub_group / 2`` lanes).  Only meaningful where ``valid`` is True.
    valid:
        Lane-enable flags (``val`` in Figure 8); a lane is disabled when there
        are fewer effectual bits than lanes.
    """

    invert: bool
    selections: tuple[int, ...]
    valid: tuple[bool, ...]

    @property
    def effectual_count(self) -> int:
        return sum(self.valid)


def schedule_column(bit_column: np.ndarray) -> ColumnSchedule:
    """Produce the PE control signals for one sub-group bit column.

    Parameters
    ----------
    bit_column:
        1-D 0/1 array of length ``sub_group`` (8 in the BitVert design):
        the bits of one significance across the sub-group's weights.

    Returns
    -------
    ColumnSchedule
        Inversion flag plus ``sel``/``val`` for the ``sub_group/2`` lanes.
    """
    bits = np.asarray(bit_column).astype(np.int64).ravel()
    sub_group = bits.size
    if sub_group % 2 != 0:
        raise ValueError(f"sub-group size must be even, got {sub_group}")
    lanes = sub_group // 2

    popcount = int(bits.sum())
    invert = popcount > lanes
    working = (1 - bits) if invert else bits.copy()

    selections: list[int] = []
    valid: list[bool] = []
    # Four sliding priority encoders: encoder i scans positions [i, i + lanes].
    remaining = working.copy()
    for lane in range(lanes):
        window = remaining[lane : lane + lanes + 1]
        hits = np.flatnonzero(window)
        if hits.size:
            position = lane + int(hits[0])
            selections.append(position)
            valid.append(True)
            remaining[position] = 0  # mask the bit for the next encoder
        else:
            selections.append(lane)
            valid.append(False)
    if remaining.any():
        # With ≤ 50 % effectual bits this cannot happen (proved in the tests);
        # reaching it means the scheduler was fed a non-BBS column.
        raise ValueError(
            "bit column has more effectual bits than the PE lanes can absorb; "
            "the BBS inversion should have prevented this"
        )
    return ColumnSchedule(invert=invert, selections=tuple(selections), valid=tuple(valid))


def column_index_sequence(bits: int, num_redundant: int, stored_columns: int) -> list[int]:
    """Significances (``col_idx``) of the stored columns, MSB first.

    The first stored column of a group carries significance
    ``bits - 1 - num_redundant`` (7 minus the redundant-column count for 8-bit
    weights), and the index decrements by one for every further column, which
    is exactly the counter the scheduler maintains (Section IV-B).
    """
    if num_redundant < 0 or stored_columns < 0:
        raise ValueError("column counts must be non-negative")
    start = bits - 1 - num_redundant
    if stored_columns > start + 1:
        raise ValueError(
            f"cannot store {stored_columns} columns when the top significance is {start}"
        )
    return [start - offset for offset in range(stored_columns)]
