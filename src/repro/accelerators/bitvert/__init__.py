"""BitVert: the paper's bit-serial accelerator exploiting BBS.

* :mod:`repro.accelerators.bitvert.pe` — behavioural PE model (Figure 7),
  proves the compressed-domain dot product is exact.
* :mod:`repro.accelerators.bitvert.scheduler` — bit-column direction choice
  and sliding-priority-encoder lane dispatch (Figure 8).
* :mod:`repro.accelerators.bitvert.reorder` — channel reordering and output
  unshuffling (Figure 9).
* :mod:`repro.accelerators.bitvert.accelerator` — array-level performance and
  energy model (Figure 10).
"""

from .accelerator import BitVertAccelerator
from .pe import BitVertPE, PEResult
from .reorder import ChannelReordering, reorder_channels, unshuffle_output
from .scheduler import ColumnSchedule, column_index_sequence, schedule_column

__all__ = [
    "BitVertAccelerator",
    "BitVertPE",
    "PEResult",
    "ChannelReordering",
    "reorder_channels",
    "unshuffle_output",
    "ColumnSchedule",
    "column_index_sequence",
    "schedule_column",
]
