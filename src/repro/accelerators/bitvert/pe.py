"""Functional model of the BitVert processing element (Figure 7).

This is the *behavioural* model of the PE datapath — it executes the exact
sequence of per-cycle operations the hardware performs (activation selection
through the sliding muxes, bit-serial accumulation or subtraction per
sub-group, column-significance shifting, BBS-constant multiplication, final
accumulation) and therefore lets the tests prove that the hardware computes
the dot product of the *compressed* weights exactly.  The performance model
lives in :mod:`repro.accelerators.bitvert.accelerator`; the area/power model
in :mod:`repro.accelerators.area_power`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scheduler import column_index_sequence, schedule_column
from ...core.bitplane import to_bitplanes
from ...core.encoding import EncodedGroup, PruningStrategy

__all__ = ["PEResult", "BitVertPE"]


@dataclass(frozen=True)
class PEResult:
    """Outcome of processing one weight group on the functional PE."""

    dot_product: int
    cycles: int
    effectual_bit_ops: int
    skipped_bit_ops: int


class BitVertPE:
    """Behavioural BitVert PE: 16 weights x 16 activations, bit-serial weights.

    Parameters
    ----------
    group_size:
        Weights (and activations) per PE group; 16 in the paper's design.
    sub_group:
        Activations per sub-group sharing one subtractor and one set of
        sliding muxes; 8 in the optimized design.
    bits:
        Weight word width.
    min_cycles_per_group:
        Floor on the per-group latency; the time-multiplexed BBS-constant
        multiplier needs two cycles, so the paper uses 2.
    """

    def __init__(
        self,
        group_size: int = 16,
        sub_group: int = 8,
        bits: int = 8,
        min_cycles_per_group: int = 2,
    ) -> None:
        if group_size % sub_group != 0:
            raise ValueError("sub_group must divide group_size")
        self.group_size = group_size
        self.sub_group = sub_group
        self.bits = bits
        self.min_cycles_per_group = min_cycles_per_group

    # ------------------------------------------------------------------ compute
    def compute_group(self, encoded: EncodedGroup, activations: np.ndarray) -> PEResult:
        """Process one compressed weight group against a vector of activations.

        Returns the exact dot product of the *decoded* weights with the
        activations, together with the cycle count and bit-operation counts
        the datapath incurred.
        """
        activations = np.asarray(activations).astype(np.int64)
        if activations.shape != (encoded.group_size,):
            raise ValueError(
                f"expected {encoded.group_size} activations, got shape {activations.shape}"
            )
        if encoded.group_size % self.sub_group != 0:
            raise ValueError(
                f"group size {encoded.group_size} is not a multiple of the "
                f"sub-group size {self.sub_group}"
            )

        reduced_bits = encoded.bits - encoded.num_redundant
        stored_columns = encoded.stored_columns
        column_indices = column_index_sequence(
            encoded.bits, encoded.num_redundant, stored_columns
        )
        num_sub_groups = encoded.group_size // self.sub_group
        act_sub_sums = activations.reshape(num_sub_groups, self.sub_group).sum(axis=1)
        act_total = int(activations.sum())

        accumulator = 0
        effectual_ops = 0
        planes = encoded.stored_planes  # (group_size, stored_columns), MSB first

        for column_position, col_idx in enumerate(column_indices):
            column = planes[:, column_position]
            column_partial = 0
            for sub in range(num_sub_groups):
                bits = column[sub * self.sub_group : (sub + 1) * self.sub_group]
                schedule = schedule_column(bits)
                selected = 0
                for index, valid in zip(
                    schedule.selections, schedule.valid, strict=True
                ):
                    if valid:
                        selected += int(activations[sub * self.sub_group + index])
                        effectual_ops += 1
                if schedule.invert:
                    partial = int(act_sub_sums[sub]) - selected
                else:
                    partial = selected
                column_partial += partial
            # The stored MSB column still carries the negative two's-complement
            # place value of the reduced word.
            is_msb = column_position == 0
            place = 1 << col_idx
            signed_place = -place if is_msb else place
            accumulator += signed_place * column_partial

        # Step 4: the BBS constant multiplies the activation sum.  For
        # zero-point shifting the constant was *added* to the stored weights,
        # so its contribution is subtracted back; for rounded averaging the
        # pruned low columns are exactly the constant, so it is added.
        if encoded.strategy is PruningStrategy.ZERO_POINT_SHIFT:
            accumulator -= encoded.constant * act_total
        elif encoded.strategy is PruningStrategy.ROUNDED_AVERAGE:
            accumulator += encoded.constant * act_total
        elif encoded.num_sparse:
            raise ValueError("sparse columns require a pruning strategy")

        del reduced_bits
        cycles = max(self.min_cycles_per_group, stored_columns)
        total_bit_ops = encoded.group_size * encoded.bits
        return PEResult(
            dot_product=int(accumulator),
            cycles=cycles,
            effectual_bit_ops=effectual_ops,
            skipped_bit_ops=total_bit_ops - effectual_ops,
        )

    # -------------------------------------------------------------- uncompressed
    def compute_uncompressed_group(
        self, weights: np.ndarray, activations: np.ndarray
    ) -> PEResult:
        """Process an uncompressed (sensitive-channel) group with runtime BBS only.

        Even without binary pruning the PE exploits bi-directional sparsity at
        run time: every bit column costs one cycle because at most half of the
        sub-group's bits are effectual after the direction choice.
        """
        weights = np.asarray(weights).astype(np.int64)
        activations = np.asarray(activations).astype(np.int64)
        if weights.shape != activations.shape:
            raise ValueError("weights and activations must have the same shape")

        planes = to_bitplanes(weights, self.bits)  # (group, bits) MSB first
        num_sub_groups = weights.size // self.sub_group
        act_sub_sums = activations.reshape(num_sub_groups, self.sub_group).sum(axis=1)

        accumulator = 0
        effectual_ops = 0
        for column_position in range(self.bits):
            column = planes[:, column_position]
            column_partial = 0
            for sub in range(num_sub_groups):
                bits = column[sub * self.sub_group : (sub + 1) * self.sub_group]
                schedule = schedule_column(bits)
                selected = 0
                for index, valid in zip(schedule.selections, schedule.valid, strict=True):
                    if valid:
                        selected += int(activations[sub * self.sub_group + index])
                        effectual_ops += 1
                if schedule.invert:
                    partial = int(act_sub_sums[sub]) - selected
                else:
                    partial = selected
                column_partial += partial
            place = 1 << (self.bits - 1 - column_position)
            signed_place = -place if column_position == 0 else place
            accumulator += signed_place * column_partial

        cycles = max(self.min_cycles_per_group, self.bits)
        total_bit_ops = weights.size * self.bits
        return PEResult(
            dot_product=int(accumulator),
            cycles=cycles,
            effectual_bit_ops=effectual_ops,
            skipped_bit_ops=total_bit_ops - effectual_ops,
        )
