"""Channel reordering and output unshuffling (Figure 9).

Hardware-aware global binary pruning leaves a layer with two precision
classes of output channels — sensitive channels at 8 bits and pruned channels
at a lower effective precision.  Storing them interleaved would make weight
accesses unaligned, so BitVert groups channels of the same precision into
contiguous memory chunks and processes them chunk by chunk.  Because this
permutes the *output* channel order, the outputs must be unshuffled when they
are written back; doing the unshuffle at output-writeback time (rather than
statically reshuffling the next layer's weights, as SparTen does) keeps
element-wise-consumer patterns such as residual additions correct even when
two differently-ordered weight tensors process the same input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChannelReordering", "reorder_channels", "unshuffle_output"]


@dataclass(frozen=True)
class ChannelReordering:
    """A precision-based channel permutation of one layer.

    Attributes
    ----------
    permutation:
        ``permutation[i]`` is the original index of the channel stored at
        reordered position ``i`` (sensitive chunk first, then normal chunk).
    sensitive_count:
        Number of channels in the sensitive (8-bit) chunk.
    """

    permutation: np.ndarray
    sensitive_count: int

    @property
    def num_channels(self) -> int:
        return int(self.permutation.size)

    def inverse(self) -> np.ndarray:
        """Mapping from original channel index to reordered position."""
        inverse = np.empty_like(self.permutation)
        inverse[self.permutation] = np.arange(self.permutation.size)
        return inverse

    def index_buffer_bytes(self) -> int:
        """Size of the original-channel-index side buffer (one index per channel)."""
        index_bits = max(1, int(np.ceil(np.log2(max(2, self.num_channels)))))
        return int(np.ceil(self.num_channels * index_bits / 8))


def reorder_channels(
    weights: np.ndarray, sensitive_mask: np.ndarray
) -> tuple[np.ndarray, ChannelReordering]:
    """Group a layer's channels into a sensitive chunk followed by a normal chunk.

    Parameters
    ----------
    weights:
        ``(channels, reduction)`` weight matrix (any dtype).
    sensitive_mask:
        Boolean mask marking the sensitive (unpruned, 8-bit) channels.

    Returns
    -------
    tuple
        ``(reordered_weights, reordering)``; the reordering records the
        permutation needed to restore the original channel order.
    """
    weights = np.asarray(weights)
    sensitive_mask = np.asarray(sensitive_mask, dtype=bool)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    if sensitive_mask.shape != (weights.shape[0],):
        raise ValueError(
            f"sensitive_mask must have shape ({weights.shape[0]},), got {sensitive_mask.shape}"
        )
    sensitive_indices = np.flatnonzero(sensitive_mask)
    normal_indices = np.flatnonzero(~sensitive_mask)
    permutation = np.concatenate([sensitive_indices, normal_indices])
    reordering = ChannelReordering(
        permutation=permutation, sensitive_count=int(sensitive_indices.size)
    )
    return weights[permutation], reordering


def unshuffle_output(output: np.ndarray, reordering: ChannelReordering) -> np.ndarray:
    """Restore the original channel order of an output computed with reordered weights.

    ``output`` has the channel dimension last (``(..., channels)``), matching
    the GEMM view ``activations @ reordered_weights.T``.
    """
    output = np.asarray(output)
    if output.shape[-1] != reordering.num_channels:
        raise ValueError(
            f"output has {output.shape[-1]} channels, reordering expects "
            f"{reordering.num_channels}"
        )
    restored = np.empty_like(output)
    restored[..., reordering.permutation] = output
    return restored
