"""ANT [16]: adaptive-datatype low-bit accelerator.

ANT quantizes both weights and activations to a low precision (6 bits in the
paper's comparison, the precision ANT reports as safe without retraining)
using its adaptive ``flint`` datatype, and executes dense low-bit MACs.  Its
advantage over the 8-bit dense baseline is therefore purely the precision
reduction — smaller operands to move and fewer weight bits to process — with
no exploitation of bit-level sparsity, which is exactly the gap the BBS paper
measures against it.

Under the bit-serial normalization used for the whole comparison, a 6-bit
weight occupies a lane for 6 cycles instead of 8, uniformly across all groups
(perfect load balance), and both weight and activation traffic shrink to 6/8
of the dense INT8 volume.  The datatype decoder adds area/power to the PE.
"""

from __future__ import annotations

import numpy as np

from .area_power import DEFAULT_GATE_COSTS, GateCosts, PEDesign
from .common import BitSerialAccelerator, GroupCycleStats
from ..nn.synthetic import LayerWeights
from ..nn.workloads import GemmWorkload

__all__ = ["AntAccelerator", "ant_pe"]


def ant_pe(costs: GateCosts = DEFAULT_GATE_COSTS) -> PEDesign:
    """ANT PE: a low-bit multiplier plus the adaptive-datatype decoder."""
    design = PEDesign("ANT", activity_factor=0.92, lanes=8)
    design.add("multiplier_6x6", costs.adder(8, 6))
    design.add("flint_decoder", costs.barrel_shifter(8, 4, 2) + costs.priority_encoder(6, 2))
    design.add("datatype_select", costs.mux(4, 8, 2))
    design.add("accumulator", costs.adder(24) + costs.register(24))
    design.add("operand_registers", costs.register(6, 8) / 2.0)
    design.add("control", 40.0)
    return design


class AntAccelerator(BitSerialAccelerator):
    """Dense low-bit accelerator with adaptive datatypes (no bit sparsity)."""

    name = "ANT"

    def __init__(self, precision_bits: int = 6, **kwargs) -> None:
        super().__init__(**kwargs)
        self.precision_bits = precision_bits

    def pe_design(self) -> PEDesign:
        return ant_pe()

    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        groups = self.layer_groups(layer)
        cycles_per_group = (
            self.array.pe_group_size * self.precision_bits / self.array.lanes_per_pe
        )
        cycles = np.full(groups.shape[0], float(cycles_per_group))
        return GroupCycleStats(actual=cycles, minimal=cycles.copy())

    def stored_weight_bytes(self, workload: GemmWorkload, layer: LayerWeights) -> float:
        # 6-bit weights plus a 4-bit per-16-value datatype/exponent tag.
        tag_bits_per_weight = 4.0 / 16.0
        return workload.weight_count * (self.precision_bits + tag_bits_per_weight) / 8.0

    def activation_bits(self, workload: GemmWorkload) -> int:
        return self.precision_bits
