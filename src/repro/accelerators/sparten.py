"""SparTen [13]: two-sided value-sparsity accelerator.

SparTen multiplies only weight/activation pairs where *both* values are
non-zero, using per-vector bitmasks and prefix-sum logic to pair them up.  On
8-bit quantized DNNs weight value sparsity is below 5 % and transformer
activations (GELU) are essentially dense, so the paper finds SparTen performs
poorly on these workloads and pays heavily for its sparse encoding (a 12.5 %
bitmask overhead at 8 bits) and pairing hardware.

The model: a PE with the normalized compute budget retires one effective MAC
per cycle per 8-bit multiplier equivalent; the cycles for a 16-weight group
equal the number of surviving (both-nonzero) pairs, floored at one cycle, plus
a pairing-overhead factor.  Weight storage carries the bitmask overhead.
"""

from __future__ import annotations

import numpy as np

from .area_power import DEFAULT_GATE_COSTS, GateCosts, PEDesign
from .common import BitSerialAccelerator, GroupCycleStats, ModelPerformance
from ..nn.model_zoo import ModelSpec
from ..nn.synthetic import LayerWeights
from ..nn.workloads import GemmWorkload

__all__ = ["SparTenAccelerator", "sparten_pe"]


def sparten_pe(costs: GateCosts = DEFAULT_GATE_COSTS) -> PEDesign:
    """SparTen PE: an 8x8 multiplier plus sparse pairing (prefix sum) logic."""
    design = PEDesign("SparTen", activity_factor=0.95, lanes=8)
    design.add("multiplier_8x8", costs.adder(10, 8))
    design.add("prefix_sum", costs.adder(5, 16))
    design.add("pair_priority_encoders", costs.priority_encoder(16, 4))
    design.add("bitmask_registers", costs.register(16, 2))
    design.add("local_buffer", costs.register(8, 32))
    design.add("accumulator", costs.adder(24) + costs.register(24))
    design.add("control", 60.0)
    return design


class SparTenAccelerator(BitSerialAccelerator):
    """Two-sided value-sparse accelerator evaluated on 8-bit DNNs."""

    name = "SparTen"

    #: Extra cycles spent on prefix-sum pairing and bank-conflict stalls,
    #: as a fraction of the effective-MAC cycles.
    PAIRING_OVERHEAD = 0.15

    def __init__(self, activation_sparsity: float = 0.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.activation_sparsity = activation_sparsity

    def pe_design(self) -> PEDesign:
        return sparten_pe()

    def run_model(self, model: ModelSpec, weights) -> ModelPerformance:
        # Activation value sparsity is a property of the model family (ReLU
        # CNNs vs GELU transformers); pick it up from the model spec so one
        # SparTen instance can evaluate the whole benchmark suite.
        self.activation_sparsity = model.activation_value_sparsity
        return super().run_model(model, weights)

    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        groups = self.layer_groups(layer)
        nonzero_weights = (groups != 0).sum(axis=1)
        # A pair survives when both the weight and its activation are nonzero;
        # activations are independent of the weights, so the expected number
        # of surviving pairs is scaled by the activation density.
        activation_density = 1.0 - self.activation_sparsity
        effective_macs = nonzero_weights * activation_density
        # The PE's 8 bit-serial-lane budget equals one 8-bit MAC per cycle.
        actual = np.maximum(np.ceil(effective_macs * (1.0 + self.PAIRING_OVERHEAD)), 1.0)
        minimal = np.maximum(np.ceil(effective_macs), 1.0)
        minimal = np.minimum(minimal, actual)
        return GroupCycleStats(actual=actual.astype(np.float64), minimal=minimal.astype(np.float64))

    def stored_weight_bytes(self, workload: GemmWorkload, layer: LayerWeights) -> float:
        weights = np.asarray(layer.int_weights)
        density = float(np.count_nonzero(weights) / weights.size) if weights.size else 1.0
        payload = workload.weight_count * density * workload.weight_bits / 8.0
        bitmask = workload.weight_count / 8.0  # one mask bit per weight
        return payload + bitmask
