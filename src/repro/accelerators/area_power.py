"""Analytical PE area/power model (Tables IV, V and VI).

The paper synthesizes every PE at RTL level in TSMC 28 nm with Design
Compiler.  We rebuild the same comparison with a component-level analytical
model: each PE is described as an inventory of datapath components (AND
arrays, adder trees, multiplexers, shifters, two's complementers, priority
encoders, registers), each costed from per-bit standard-cell-calibrated
constants representative of a 28 nm library.  The model reproduces the
*relationships* the paper reports — which designs pay for large muxes,
variable shifters or sign-magnitude complementers, and how the BitVert
sub-group size trades mux cost against subtractor cost — and lands within
roughly 15 % of the published absolute numbers, which are also recorded here
(``PAPER_TABLE_*``) so the experiment harness can print model-vs-paper.

Every PE in the comparison contains 8 bit-serial multiplier lanes with 8-bit
activations and runs at 800 MHz, matching the paper's normalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "GateCosts",
    "DEFAULT_GATE_COSTS",
    "PEDesign",
    "stripes_pe",
    "pragmatic_pe",
    "bitlet_pe",
    "bitwave_pe",
    "bitvert_pe",
    "olive_pe",
    "PE_BUILDERS",
    "PAPER_TABLE_IV",
    "PAPER_TABLE_V",
    "PAPER_TABLE_VI",
]


@dataclass(frozen=True)
class GateCosts:
    """Per-bit area constants (um^2) for a 28 nm standard-cell library."""

    and_gate: float = 0.6
    full_adder: float = 2.4
    flip_flop: float = 4.2
    mux_input: float = 0.5  # per extra input, per bit
    shift_stage: float = 1.1  # per bit, per barrel-shifter stage
    encoder_input: float = 1.0
    inverter: float = 0.35

    def mux(self, inputs: int, width: int, count: int = 1) -> float:
        """Area of ``count`` N:1 muxes of ``width`` bits."""
        if inputs < 1:
            raise ValueError("a mux needs at least one input")
        return (inputs - 1) * self.mux_input * width * count

    def adder(self, width: int, count: int = 1) -> float:
        return self.full_adder * width * count

    def adder_tree(self, terms: int, input_width: int) -> float:
        """Area of a balanced adder tree reducing ``terms`` operands."""
        area = 0.0
        width = input_width
        remaining = terms
        while remaining > 1:
            adders = remaining // 2
            area += self.adder(width + 1, adders)
            remaining = remaining - adders
            width += 1
        return area

    def register(self, width: int, count: int = 1) -> float:
        return self.flip_flop * width * count

    def barrel_shifter(self, width: int, positions: int, count: int = 1) -> float:
        stages = max(1, (positions - 1).bit_length())
        return self.shift_stage * width * stages * count

    def priority_encoder(self, inputs: int, count: int = 1) -> float:
        return self.encoder_input * inputs * count

    def twos_complementer(self, width: int, count: int = 1) -> float:
        return (self.full_adder + self.inverter) * width * count


DEFAULT_GATE_COSTS = GateCosts()

#: Power density (mW per um^2) of active 28 nm datapath logic at 800 MHz.
#: Calibrated so a fully-active Stripes PE dissipates ~0.37 mW (Table V).
_POWER_DENSITY_MW_PER_UM2 = 7.0e-4


@dataclass
class PEDesign:
    """A processing element as an inventory of costed components."""

    name: str
    components: dict[str, float] = field(default_factory=dict)
    activity_factor: float = 1.0
    lanes: int = 8

    def add(self, component: str, area_um2: float) -> None:
        self.components[component] = self.components.get(component, 0.0) + area_um2

    @property
    def area_um2(self) -> float:
        return sum(self.components.values())

    @property
    def power_mw(self) -> float:
        """Average dynamic power at 800 MHz under DNN-typical activity."""
        return self.area_um2 * _POWER_DENSITY_MW_PER_UM2 * self.activity_factor

    def energy_per_cycle_pj(self, clock_ghz: float = 0.8) -> float:
        """Energy per clock cycle in pJ."""
        return self.power_mw / clock_ghz

    def breakdown(self) -> dict[str, float]:
        return dict(sorted(self.components.items(), key=lambda item: -item[1]))


def _bit_serial_core(
    design: PEDesign, costs: GateCosts, lanes: int, act_bits: int, accumulator_bits: int
) -> None:
    """The datapath every bit-serial PE shares: AND lanes, adder tree, accumulator."""
    design.add("and_array", costs.and_gate * act_bits * lanes)
    design.add("adder_tree", costs.adder_tree(lanes, act_bits))
    design.add(
        "accumulator",
        costs.adder(accumulator_bits) + costs.register(accumulator_bits),
    )
    design.add("operand_registers", costs.register(act_bits, lanes) / 4.0)
    design.add("weight_bit_registers", costs.register(1, lanes * act_bits) / 4.0)
    design.add("control", 40.0)


def stripes_pe(costs: GateCosts = DEFAULT_GATE_COSTS, lanes: int = 8) -> PEDesign:
    """Dense bit-serial PE (Stripes [19]): no skipping hardware at all."""
    design = PEDesign("Stripes", activity_factor=1.0, lanes=lanes)
    _bit_serial_core(design, costs, lanes, act_bits=8, accumulator_bits=26)
    return design


def pragmatic_pe(costs: GateCosts = DEFAULT_GATE_COSTS, lanes: int = 8) -> PEDesign:
    """Pragmatic [1]: per-operand zero-bit skipping with per-lane variable shifters."""
    design = PEDesign("Pragmatic", activity_factor=0.78, lanes=lanes)
    _bit_serial_core(design, costs, lanes, act_bits=8, accumulator_bits=26)
    # Every lane can present a different bit significance, so each product must
    # be shifted by 0..7 before the adder tree.
    design.add("variable_shifters", costs.barrel_shifter(12, 8, lanes))
    design.add("oneffectual_encoders", costs.priority_encoder(8, lanes))
    return design


def bitlet_pe(costs: GateCosts = DEFAULT_GATE_COSTS, lanes: int = 8) -> PEDesign:
    """Bitlet [26]: bit-significance-parallel skipping with a 64:1 mux per lane."""
    design = PEDesign("Bitlet", activity_factor=0.48, lanes=lanes)
    _bit_serial_core(design, costs, lanes, act_bits=8, accumulator_bits=26)
    # Any of 64 interleaved weights can donate its essential bit to a lane, so
    # each lane needs a 64:1 activation selector (the paper quotes 35.9 % of
    # the Bitlet PE area for these muxes) plus the sparsity scheduler state.
    design.add("activation_mux_64to1", costs.mux(64, 8, lanes) * 0.5)
    design.add("sparsity_scheduler", costs.register(8, 2) + costs.priority_encoder(64, 1))
    return design


def bitwave_pe(costs: GateCosts = DEFAULT_GATE_COSTS, lanes: int = 8) -> PEDesign:
    """BitWave [39]: bit-column-serial PE with sign-magnitude arithmetic."""
    design = PEDesign("BitWave", activity_factor=0.92, lanes=lanes)
    _bit_serial_core(design, costs, lanes, act_bits=8, accumulator_bits=26)
    # Sign-magnitude partial sums need a two's complementer per lane plus sign
    # tracking before accumulation.
    design.add("twos_complementers", costs.twos_complementer(9, lanes) * 0.8)
    design.add("sign_logic", costs.register(1, lanes) + costs.priority_encoder(2, lanes))
    return design


def bitvert_pe(
    costs: GateCosts = DEFAULT_GATE_COSTS,
    sub_group: int = 8,
    optimized: bool = True,
    lanes: int = 8,
    group_size: int = 16,
) -> PEDesign:
    """BitVert PE (Figure 7) with configurable sub-group size and optimizations.

    Parameters
    ----------
    sub_group:
        Activations per bit-serial sub-group (16, 8 or 4 in Table IV).  The
        PE always covers ``group_size`` (16) activations, so it instantiates
        ``group_size / sub_group`` sub-groups, each with its own subtractor
        and activation-sum input for the bi-directional path.
    optimized:
        Apply the two circuit optimizations of Section IV-A: compact
        ``(sub_group/2 + 1):1`` muxes instead of full ``sub_group:1`` muxes
        (possible because BBS guarantees at most half the lanes per sub-group
        are active) and a time-multiplexed 3-bit BBS-constant multiplier with
        an alignment shifter instead of a full 6x8 multiplier.
    """
    if group_size % sub_group != 0:
        raise ValueError(f"sub_group {sub_group} must divide the group size {group_size}")
    name = f"BitVert(sub{sub_group}{'-opt' if optimized else ''})"
    design = PEDesign(name, activity_factor=0.72, lanes=lanes)
    _bit_serial_core(design, costs, lanes, act_bits=8, accumulator_bits=26)

    num_sub_groups = group_size // sub_group
    # Activation-select muxes: one per bit-serial lane.  With BBS at most half
    # of each sub-group's activations are selected, so the optimized design
    # uses compact (sub_group/2 + 1):1 sliding muxes; the baseline pays for
    # full sub_group:1 muxes on every lane.
    mux_inputs = (sub_group // 2 + 1) if optimized else sub_group
    design.add("activation_muxes", costs.mux(mux_inputs, 8, lanes))
    # One subtractor and partial-sum select per sub-group for the Eq. 3 path
    # (subtract the serial sum from the activation sum when ones dominate);
    # the activation sum itself comes from the shared per-column ΣA generator
    # (Figure 10) and costs nothing inside the PE.  Splitting the adder tree
    # into per-sub-group trees also adds a combining stage.  Smaller
    # sub-groups multiply all of these costs.
    design.add("bbs_subtractors", costs.adder(11, num_sub_groups))
    design.add("psum_select", costs.mux(2, 12, num_sub_groups))
    design.add("subgroup_tree_overhead", costs.adder(12, max(0, num_sub_groups - 1)))
    # BBS-constant multiplier (Step 4): the optimized design multiplies 3 bits
    # per cycle and aligns with a small shifter; the baseline multiplies the
    # full 6-bit constant at once.
    if optimized:
        design.add("bbs_constant_multiplier", costs.adder_tree(3, 10) + costs.barrel_shifter(12, 4))
    else:
        design.add("bbs_constant_multiplier", costs.adder_tree(6, 12))
    # Single (fixed-direction) shifter for the column significance plus the
    # column-index datapath from the scheduler.
    design.add("column_shifter", costs.barrel_shifter(12, 8))
    design.add("scheduler_interface", costs.register(4, 2))
    return design


def olive_pe(costs: GateCosts = DEFAULT_GATE_COSTS) -> PEDesign:
    """Olive [15] PE: one 4-bit x 8-bit multiplier with outlier (abfloat) support.

    The Olive PE computes a single multiplication per cycle; the outlier path
    needs a wider multiplier and an exponent shifter to cover the extended
    outlier range, which is why it is larger than a plain 4x8 multiplier.
    """
    design = PEDesign("Olive", activity_factor=0.65, lanes=1)
    # 8x8-capable array multiplier core (outliers need the full width).
    design.add("multiplier", costs.adder(10, 6))
    design.add("outlier_exponent_shifter", costs.barrel_shifter(16, 8))
    design.add("outlier_decode", costs.priority_encoder(8, 2))
    design.add("accumulator", costs.adder(24) + costs.register(24))
    design.add("control", 20.0)
    return design


#: Builders keyed by the accelerator names used throughout the evaluation.
PE_BUILDERS = {
    "Stripes": stripes_pe,
    "Pragmatic": pragmatic_pe,
    "Bitlet": bitlet_pe,
    "BitWave": bitwave_pe,
    "BitVert": bitvert_pe,
    "Olive": olive_pe,
}


#: Published reference numbers (Table V): PE area split and power at 28 nm / 800 MHz.
PAPER_TABLE_V = {
    "Stripes": {"multiplier_um2": 286.3, "others_um2": 246.5, "total_um2": 532.8, "power_mw": 0.37},
    "Pragmatic": {"multiplier_um2": 319.2, "others_um2": 603.9, "total_um2": 923.1, "power_mw": 0.51},
    "Bitlet": {"multiplier_um2": 223.2, "others_um2": 1442.4, "total_um2": 1665.6, "power_mw": 0.57},
    "BitWave": {"multiplier_um2": 286.3, "others_um2": 416.1, "total_um2": 702.4, "power_mw": 0.49},
    "BitVert": {"multiplier_um2": 332.4, "others_um2": 407.2, "total_um2": 739.6, "power_mw": 0.45},
}

#: Published reference numbers (Table IV): BitVert PE design space.
PAPER_TABLE_IV = {
    (16, False): {"area_um2": 1342.3, "power_mw": 0.61},
    (16, True): {"area_um2": 971.5, "power_mw": 0.53},
    (8, False): {"area_um2": 896.6, "power_mw": 0.49},
    (8, True): {"area_um2": 739.6, "power_mw": 0.45},
    (4, False): {"area_um2": 878.7, "power_mw": 0.51},
    (4, True): {"area_um2": 786.5, "power_mw": 0.47},
}

#: Published reference numbers (Table VI): Olive vs BitVert PE.
PAPER_TABLE_VI = {
    "Olive": {"area_um2": 291.6, "power_mw": 0.18, "norm_perf": 1.0, "norm_perf_per_area": 1.0},
    "BitVert": {"area_um2": 739.6, "power_mw": 0.45, "norm_perf": 4.0, "norm_perf_per_area": 1.58},
}
