"""Pragmatic [1]: per-operand essential-bit (zero-bit skipping) accelerator.

Pragmatic serializes only the *one* bits of each weight: every lane walks the
essential bits of its assigned weight, one per cycle, and a variable shifter
aligns the bit significance before accumulation.  Because the lanes of a PE
process different weights in lockstep (they share the activation fetch and the
adder tree), a PE is occupied until its slowest lane finishes — the intra-PE
load-imbalance the paper highlights.  All weight bits are still fetched from
memory (no compression).
"""

from __future__ import annotations

import numpy as np

from .area_power import PEDesign, pragmatic_pe
from .common import BitSerialAccelerator, GroupCycleStats
from ..core.bitplane import to_bitplanes
from ..nn.synthetic import LayerWeights

__all__ = ["PragmaticAccelerator"]


class PragmaticAccelerator(BitSerialAccelerator):
    """Essential-bit-serial accelerator with per-lane variable shifters."""

    name = "Pragmatic"

    def __init__(self, weight_bits: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.weight_bits = weight_bits

    def pe_design(self) -> PEDesign:
        return pragmatic_pe()

    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        groups = self.layer_groups(layer)
        lanes = self.array.lanes_per_pe
        group_size = self.array.pe_group_size
        weights_per_lane = max(1, group_size // lanes)

        planes = to_bitplanes(groups, self.weight_bits)  # (G, group, bits)
        ones_per_weight = planes.sum(axis=2)  # (G, group)
        # Each lane serially handles `weights_per_lane` weights of the group;
        # the PE finishes when its busiest lane does.
        lane_view = ones_per_weight[:, : lanes * weights_per_lane].reshape(
            groups.shape[0], lanes, weights_per_lane
        )
        lane_cycles = lane_view.sum(axis=2)
        actual = lane_cycles.max(axis=1).astype(np.float64)
        total_ones = ones_per_weight.sum(axis=1)
        minimal = np.ceil(total_ones / lanes).astype(np.float64)
        # A lane still spends one cycle on an all-zero weight (pipeline bubble).
        actual = np.maximum(actual, 1.0)
        minimal = np.minimum(np.maximum(minimal, 1.0), actual)
        return GroupCycleStats(actual=actual, minimal=minimal)
