"""BitWave [39]: bit-column-serial accelerator with sign-magnitude bit-flip.

BitWave stores weights in sign-magnitude format and processes one bit *column*
of a weight group per step: a column that is entirely zero is skipped (and not
even stored), every other column is processed densely.  Its software bit-flip
pass forces additional low-significance columns to zero to increase the number
of skippable columns, at some accuracy cost (the zero-column-only pruning the
BBS paper compares against).

Performance characteristics captured by this model:

* structured, per-group-uniform cycle counts → good load balance,
* two cycles per surviving column (a column of ``pe_group_size`` weights is
  processed densely by ``lanes_per_pe`` bit-serial multipliers, with no
  skipping of the zero bits inside a kept column),
* compressed weight storage: only surviving columns are written to memory,
  plus one metadata byte per group.
"""

from __future__ import annotations

import numpy as np

from .area_power import PEDesign, bitwave_pe
from .common import BitSerialAccelerator, GroupCycleStats
from ..core.bitplane import to_sign_magnitude_planes
from ..core.encoding import METADATA_BITS
from ..nn.synthetic import LayerWeights
from ..nn.workloads import GemmWorkload
from ..quant.bitflip import bitflip_tensor

__all__ = ["BitWaveAccelerator"]


class BitWaveAccelerator(BitSerialAccelerator):
    """Bit-column-serial accelerator with zero-column (bit-flip) pruning."""

    name = "BitWave"

    def __init__(
        self,
        pruned_columns: int = 3,
        sensitive_fraction: float = 0.10,
        weight_bits: int = 8,
        **kwargs,
    ) -> None:
        """
        Parameters
        ----------
        pruned_columns:
            Zero columns enforced per weight group by the bit-flip pass.  The
            paper notes BitWave must stay conservative (its aggressive setting
            loses > 1 % accuracy), so the default is 3.
        sensitive_fraction:
            Fraction of channels kept unpruned, mirroring the sensitive-channel
            protection all methods are granted in the comparison.
        """
        super().__init__(**kwargs)
        self.pruned_columns = pruned_columns
        self.sensitive_fraction = sensitive_fraction
        self.weight_bits = weight_bits

    def pe_design(self) -> PEDesign:
        return bitwave_pe()

    # ------------------------------------------------------------------ helpers
    def _sensitive_mask(self, layer: LayerWeights) -> np.ndarray:
        scores = np.asarray(layer.channel_scores, dtype=np.float64)
        count = int(np.ceil(self.sensitive_fraction * scores.size))
        mask = np.zeros(scores.size, dtype=bool)
        if count:
            mask[np.argsort(-scores, kind="stable")[:count]] = True
        return mask

    def _pruned_weights(self, layer: LayerWeights) -> np.ndarray:
        result = bitflip_tensor(
            layer.int_weights,
            num_columns=self.pruned_columns,
            group_size=self.array.pe_group_size,
            bits=self.weight_bits,
            sensitive_channels=self._sensitive_mask(layer),
            keep_original=False,
        )
        return result.values

    def _kept_columns_per_group(self, layer: LayerWeights) -> np.ndarray:
        pruned = self._pruned_weights(layer)
        group = self.array.pe_group_size
        channels, reduction = pruned.shape
        usable = reduction - (reduction % group)
        if usable == 0:
            padded = np.zeros((channels, group), dtype=pruned.dtype)
            padded[:, :reduction] = pruned
            groups = padded
        else:
            groups = pruned[:, :usable].reshape(-1, group)
        lo = -(1 << (self.weight_bits - 1))
        groups = np.where(groups == lo, lo + 1, groups)
        planes = to_sign_magnitude_planes(groups, self.weight_bits)
        kept = planes.any(axis=1).sum(axis=1)  # non-all-zero columns per group
        return np.maximum(kept, 1).astype(np.int64)

    def _group_partition(self, layer: LayerWeights) -> np.ndarray:
        """Scheduling-class label per PE group (sensitive vs pruned channels).

        BitWave's structured (column-level) compression keeps the column
        counts of a layer's pruned channels aligned, and its memory layout
        separates precision classes, so sensitive and pruned channels are not
        co-scheduled in the same wave.
        """
        mask = self._sensitive_mask(layer)
        group = self.array.pe_group_size
        reduction = layer.int_weights.shape[1]
        groups_per_channel = max(1, reduction // group)
        return np.repeat(mask.astype(np.int64), groups_per_channel)

    # ----------------------------------------------------------------- hooks
    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        kept = self._kept_columns_per_group(layer)
        cycles_per_column = self.array.pe_group_size / self.array.lanes_per_pe
        actual = kept.astype(np.float64) * cycles_per_column
        partition = self._group_partition(layer)
        if partition.size != actual.size:
            partition = None

        # Lower bound: the one-bits actually present, spread over all lanes.
        pruned = self._pruned_weights(layer)
        group = self.array.pe_group_size
        channels, reduction = pruned.shape
        usable = reduction - (reduction % group)
        view = pruned[:, :usable].reshape(-1, group) if usable else pruned[:, :group]
        lo = -(1 << (self.weight_bits - 1))
        view = np.where(view == lo, lo + 1, view)
        planes = to_sign_magnitude_planes(view, self.weight_bits)
        total_ones = planes.sum(axis=(1, 2))
        minimal = np.ceil(total_ones / self.array.lanes_per_pe).astype(np.float64)
        minimal = np.minimum(np.maximum(minimal, 1.0), actual)
        return GroupCycleStats(actual=actual, minimal=minimal, partition=partition)

    def stored_weight_bytes(self, workload: GemmWorkload, layer: LayerWeights) -> float:
        kept = self._kept_columns_per_group(layer)
        group = self.array.pe_group_size
        bits_per_group = kept.astype(np.float64) * group + METADATA_BITS
        mean_bits_per_weight = float(bits_per_group.mean()) / group
        return workload.weight_count * mean_bits_per_weight / 8.0
