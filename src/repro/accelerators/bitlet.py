"""Bitlet [26]: bit-significance-parallel (sparsity parallelism) accelerator.

Bitlet assigns one lane to every bit significance: a lane absorbs, one per
cycle, the essential bits of *any* weight in the group at its significance
(hence the 64:1 activation mux the paper calls out).  A group is finished when
the significance with the most one-bits has drained, so the PE-level latency
is the maximum column population — a different load-imbalance axis than
Pragmatic's.  Like Pragmatic, all weight bits are fetched from memory.
"""

from __future__ import annotations

import numpy as np

from .area_power import PEDesign, bitlet_pe
from .common import BitSerialAccelerator, GroupCycleStats
from ..core.bitplane import to_bitplanes
from ..nn.synthetic import LayerWeights

__all__ = ["BitletAccelerator"]


class BitletAccelerator(BitSerialAccelerator):
    """Bit-significance-parallel zero-bit-skipping accelerator."""

    name = "Bitlet"

    def __init__(self, weight_bits: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.weight_bits = weight_bits

    def pe_design(self) -> PEDesign:
        return bitlet_pe()

    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        groups = self.layer_groups(layer)
        lanes = self.array.lanes_per_pe

        planes = to_bitplanes(groups, self.weight_bits)  # (G, group, bits)
        ones_per_significance = planes.sum(axis=1)  # (G, bits)
        # One lane per significance: the group drains when the most populated
        # significance has been fully absorbed.
        actual = ones_per_significance.max(axis=1).astype(np.float64)
        total_ones = ones_per_significance.sum(axis=1)
        minimal = np.ceil(total_ones / lanes).astype(np.float64)
        actual = np.maximum(actual, 1.0)
        minimal = np.minimum(np.maximum(minimal, 1.0), actual)
        return GroupCycleStats(actual=actual, minimal=minimal)
