"""Shared machinery of the cycle-level accelerator models.

Every accelerator in the paper's comparison (Figure 12/13) is normalized to
the same compute budget — 512 8-bit-multiplier equivalents, i.e. 4096
bit-serial multipliers — and the same 256 KB + 256 KB on-chip buffers.  The
performance of each design then depends on how its skipping scheme maps the
bit-level (or value-level) structure of the weights onto those lanes, and on
how much weight data it must move from DRAM.

The models here are *statistical cycle models*: for every layer we compute the
exact per-weight-group cycle cost of the scheme (from the synthetic INT8
weights), then account for the array-level synchronization (the slowest of the
weight groups processed in parallel gates each wave) by measuring the expected
maximum over randomly co-scheduled groups.  This reproduces the load-balance
behaviour the paper analyses in Figures 14/15 without simulating every cycle
of a multi-billion-MAC network in Python.  The substitution is recorded in
DESIGN.md.

Terminology used throughout:

* *group* — ``pe_group_size`` (16) weights along the reduction dimension that
  one PE processes bit-serially.
* *wave* — one round in which every PE column works on one group of its
  assigned output channel; the wave ends when the slowest column finishes
  (inter-PE synchronization).
* *useful / intra-PE / inter-PE cycles* — the breakdown of Figure 15: the
  minimum cycles the scheme could take with perfect balance inside a PE, the
  extra cycles lost to imbalance across the lanes of one PE, and the extra
  cycles lost waiting for slower PE columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

import numpy as np

from .area_power import PEDesign
from ..memory.hierarchy import MemorySystem, MemoryTraffic
from ..nn.model_zoo import ModelSpec
from ..nn.synthetic import LayerWeights
from ..nn.workloads import GemmWorkload, layer_workload

__all__ = [
    "ArrayConfig",
    "GroupCycleStats",
    "LayerPerformance",
    "ModelPerformance",
    "Accelerator",
    "BitSerialAccelerator",
    "expected_wave_cycles",
]


@dataclass(frozen=True)
class ArrayConfig:
    """Geometry of the PE array, shared by every accelerator in a comparison.

    The default geometry is BitVert's 16 x 32 array of 8-lane PEs (Figure 10);
    scaling every design to the same lane count is exactly the normalization
    the paper applies ("all accelerators are scaled to contain the same number
    of multipliers, where an 8-bit multiplier is equivalent to eight bit-serial
    multipliers").
    """

    pe_rows: int = 16
    pe_columns: int = 32
    lanes_per_pe: int = 8
    pe_group_size: int = 16
    clock_ghz: float = 0.8

    @property
    def total_lanes(self) -> int:
        return self.pe_rows * self.pe_columns * self.lanes_per_pe

    @property
    def eight_bit_multiplier_equivalents(self) -> int:
        return self.total_lanes // 8

    def with_columns(self, pe_columns: int) -> "ArrayConfig":
        return ArrayConfig(
            pe_rows=self.pe_rows,
            pe_columns=pe_columns,
            lanes_per_pe=self.lanes_per_pe,
            pe_group_size=self.pe_group_size,
            clock_ghz=self.clock_ghz,
        )


@dataclass
class GroupCycleStats:
    """Per-group cycle costs of one layer under one accelerator's scheme.

    ``actual`` is the number of cycles each weight group occupies its PE,
    including intra-PE imbalance; ``minimal`` is the lower bound the scheme
    could reach with perfectly balanced lanes (used for the Figure 15
    breakdown).  Both are 1-D arrays with one entry per sampled weight group.

    ``partition`` optionally labels each group with a scheduling class:
    groups of different classes are never co-scheduled in the same wave.  The
    BitVert channel-reordering mechanism creates exactly this situation
    (8-bit sensitive chunks vs pruned chunks), and modelling it removes the
    artificial inter-PE stall that mixing the two classes would imply.
    """

    actual: np.ndarray
    minimal: np.ndarray
    partition: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.actual = np.asarray(self.actual, dtype=np.float64)
        self.minimal = np.asarray(self.minimal, dtype=np.float64)
        if self.actual.shape != self.minimal.shape:
            raise ValueError("actual and minimal must have the same shape")
        if np.any(self.minimal - self.actual > 1e-9):
            raise ValueError("minimal cycles cannot exceed actual cycles")
        if self.partition is not None:
            self.partition = np.asarray(self.partition)
            if self.partition.shape != self.actual.shape:
                raise ValueError("partition labels must match the group count")


@dataclass
class LayerPerformance:
    """Performance and energy of one layer on one accelerator."""

    name: str
    compute_cycles: float
    dram_cycles: float
    useful_cycles: float
    intra_pe_stall_cycles: float
    inter_pe_stall_cycles: float
    compute_energy_pj: float
    sram_energy_pj: float
    dram_energy_pj: float
    stored_weight_bytes: float
    traffic: MemoryTraffic
    repeat: int = 1

    @property
    def total_cycles(self) -> float:
        """Execution cycles with compute/DRAM overlap (double buffering)."""
        return max(self.compute_cycles, self.dram_cycles)

    @property
    def total_energy_pj(self) -> float:
        return self.compute_energy_pj + self.sram_energy_pj + self.dram_energy_pj


@dataclass
class ModelPerformance:
    """Aggregated performance of a whole model on one accelerator."""

    accelerator: str
    model: str
    layers: list[LayerPerformance] = field(default_factory=list)
    clock_ghz: float = 0.8

    @property
    def total_cycles(self) -> float:
        return sum(layer.total_cycles * layer.repeat for layer in self.layers)

    @property
    def compute_cycles(self) -> float:
        return sum(layer.compute_cycles * layer.repeat for layer in self.layers)

    @property
    def dram_cycles(self) -> float:
        return sum(layer.dram_cycles * layer.repeat for layer in self.layers)

    @property
    def useful_cycles(self) -> float:
        return sum(layer.useful_cycles * layer.repeat for layer in self.layers)

    @property
    def intra_pe_stall_cycles(self) -> float:
        return sum(layer.intra_pe_stall_cycles * layer.repeat for layer in self.layers)

    @property
    def inter_pe_stall_cycles(self) -> float:
        return sum(layer.inter_pe_stall_cycles * layer.repeat for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.total_energy_pj * layer.repeat for layer in self.layers)

    @property
    def compute_energy_pj(self) -> float:
        return sum(layer.compute_energy_pj * layer.repeat for layer in self.layers)

    @property
    def on_chip_energy_pj(self) -> float:
        return sum(
            (layer.compute_energy_pj + layer.sram_energy_pj) * layer.repeat
            for layer in self.layers
        )

    @property
    def off_chip_energy_pj(self) -> float:
        return sum(layer.dram_energy_pj * layer.repeat for layer in self.layers)

    @property
    def execution_time_s(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def energy_delay_product(self) -> float:
        """EDP in joule-seconds."""
        return (self.total_energy_pj * 1e-12) * self.execution_time_s

    def speedup_over(self, baseline: "ModelPerformance") -> float:
        if self.total_cycles == 0:
            return float("inf")
        return baseline.total_cycles / self.total_cycles

    def energy_ratio_to(self, baseline: "ModelPerformance") -> float:
        if baseline.total_energy_pj == 0:
            return float("inf")
        return self.total_energy_pj / baseline.total_energy_pj

    def cycle_breakdown(self) -> dict[str, float]:
        """Normalized breakdown of compute cycles (Figure 15 bars)."""
        total = self.compute_cycles
        if total == 0:
            return {"useful": 0.0, "intra_pe_stall": 0.0, "inter_pe_stall": 0.0}
        return {
            "useful": self.useful_cycles / total,
            "intra_pe_stall": self.intra_pe_stall_cycles / total,
            "inter_pe_stall": self.inter_pe_stall_cycles / total,
        }


def expected_wave_cycles(
    per_group_cycles: np.ndarray,
    parallel_groups: int,
    num_batches: int = 512,
    seed: int = 0,
) -> float:
    """Expected cycles of one wave: the mean of the max over co-scheduled groups.

    When ``parallel_groups`` weight groups from different output channels are
    processed in lockstep, the wave lasts as long as the slowest one.  The
    groups co-scheduled in hardware are essentially arbitrary (different
    channels, same reduction offset), so we estimate the expectation of the
    maximum by resampling batches from the empirical per-group cycle
    distribution.
    """
    cycles = np.asarray(per_group_cycles, dtype=np.float64).ravel()
    if cycles.size == 0:
        return 0.0
    if parallel_groups <= 1:
        return float(cycles.mean())
    rng = np.random.default_rng(seed)
    samples = rng.choice(cycles, size=(num_batches, parallel_groups), replace=True)
    return float(samples.max(axis=1).mean())


class Accelerator:
    """Base class: one accelerator design evaluated on GEMM workloads."""

    #: Human-readable accelerator name (used in result tables).
    name: str = "abstract"

    def __init__(
        self,
        array: ArrayConfig | None = None,
        memory: MemorySystem | None = None,
    ) -> None:
        self.array = array or ArrayConfig()
        self.memory = memory or MemorySystem()

    # ------------------------------------------------------------------ hooks
    def pe_design(self) -> PEDesign:
        """The PE used for compute-energy accounting."""
        raise NotImplementedError

    def group_cycle_stats(self, layer: LayerWeights) -> GroupCycleStats:
        """Per-group cycle costs of this scheme for one layer's weights."""
        raise NotImplementedError

    def stored_weight_bytes(self, workload: GemmWorkload, layer: LayerWeights) -> float:
        """Weight bytes (including metadata) this design fetches for the layer."""
        return float(workload.weight_bytes)

    def activation_bits(self, workload: GemmWorkload) -> int:
        """Activation precision moved through the memory system."""
        return workload.activation_bits

    # -------------------------------------------------------------- execution
    def run_layer(self, workload: GemmWorkload, layer: LayerWeights) -> LayerPerformance:
        """Evaluate one layer and return its performance record."""
        stats = self.group_cycle_stats(layer)
        array = self.array

        groups_per_channel = ceil(workload.k / array.pe_group_size)
        channel_blocks = ceil(workload.n / array.pe_columns)
        pixel_blocks = ceil(workload.m / array.pe_rows)
        waves = groups_per_channel * channel_blocks

        parallel = min(array.pe_columns, workload.n)
        if stats.partition is None:
            wave_cycles = expected_wave_cycles(stats.actual, parallel)
        else:
            # Groups of different scheduling classes are never co-scheduled
            # (channel reordering); the wave expectation is the class-size
            # weighted mean of the per-class expectations.
            wave_cycles = 0.0
            total = stats.actual.size
            for label in np.unique(stats.partition):
                mask = stats.partition == label
                fraction = mask.sum() / total
                wave_cycles += fraction * expected_wave_cycles(stats.actual[mask], parallel)
        mean_actual = float(stats.actual.mean()) if stats.actual.size else 0.0
        mean_minimal = float(stats.minimal.mean()) if stats.minimal.size else 0.0

        compute_cycles = waves * wave_cycles * pixel_blocks
        useful = waves * mean_minimal * pixel_blocks
        intra = waves * (mean_actual - mean_minimal) * pixel_blocks
        inter = waves * (wave_cycles - mean_actual) * pixel_blocks

        stored_bytes = self.stored_weight_bytes(workload, layer)
        traffic = self.memory.layer_traffic(
            workload,
            stored_weight_bytes=stored_bytes,
            activation_bits=self.activation_bits(workload),
        )
        dram_cycles = self.memory.dram_cycles(traffic, array.clock_ghz)
        dram_energy, sram_energy = self.memory.traffic_energy_pj(traffic)

        pe = self.pe_design()
        active_pes = min(array.pe_columns, workload.n) * min(array.pe_rows, workload.m)
        compute_energy = compute_cycles * active_pes * pe.energy_per_cycle_pj(array.clock_ghz)

        return LayerPerformance(
            name=workload.name,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            useful_cycles=useful,
            intra_pe_stall_cycles=intra,
            inter_pe_stall_cycles=inter,
            compute_energy_pj=compute_energy,
            sram_energy_pj=sram_energy,
            dram_energy_pj=dram_energy,
            stored_weight_bytes=stored_bytes,
            traffic=traffic,
            repeat=workload.repeat,
        )

    def run_model(
        self, model: ModelSpec, weights: dict[str, LayerWeights]
    ) -> ModelPerformance:
        """Evaluate a whole model given its (synthetic) per-layer weights."""
        result = ModelPerformance(
            accelerator=self.name, model=model.name, clock_ghz=self.array.clock_ghz
        )
        for spec in model.layers:
            if spec.name not in weights:
                raise KeyError(f"missing weights for layer {spec.name!r}")
            workload = layer_workload(spec)
            result.layers.append(self.run_layer(workload, weights[spec.name]))
        return result


class BitSerialAccelerator(Accelerator):
    """Base class for weight-bit-serial designs (Stripes, Pragmatic, ...).

    Subclasses implement :meth:`group_cycle_stats` in terms of the bit-level
    structure of each 16-weight group; this base class provides the shared
    helper that reshapes a layer's sampled weight matrix into those groups.
    """

    def layer_groups(self, layer: LayerWeights) -> np.ndarray:
        """Sampled weights reshaped to ``(num_groups, pe_group_size)``."""
        weights = np.asarray(layer.int_weights)
        group = self.array.pe_group_size
        channels, reduction = weights.shape
        usable = reduction - (reduction % group)
        if usable == 0:
            padded = np.zeros((channels, group), dtype=weights.dtype)
            padded[:, :reduction] = weights
            return padded
        return weights[:, :usable].reshape(channels * (usable // group), group)
