"""BitWave-style sign-magnitude zero-column bit-flip pruning.

BitWave [39] (and the earlier bit-column pruning works the paper cites as
"previous" in Figure 1b) compresses an INT8 weight group by storing it in
sign-magnitude format and pruning bit columns that are entirely zero.  Because
DNN weights are small, the high-significance magnitude columns of a group are
often already all-zero ("inherent" zero columns); to reach a target number of
pruned columns, the remaining low-significance columns are force-flipped to
zero.  Unlike BBS, only the *zero* direction can be pruned, so every forced
column removes quantization levels (all odd values disappear when the LSB
column is flipped, and so on).

This module implements that strategy so the paper's KL-divergence (Fig. 6) and
accuracy (Fig. 11) comparisons against BBS can be reproduced, and so the
BitWave accelerator model has a matching compression front end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitplane import (
    from_sign_magnitude_planes,
    to_sign_magnitude_planes,
)
from ..core.encoding import group_storage_bits
from ..core.grouping import GroupedTensor, group_weights, ungroup_weights
from ..core.metrics import ReconstructionMetricsMixin

__all__ = ["BitFlipResult", "bitflip_group", "bitflip_tensor"]


@dataclass
class BitFlipResult(ReconstructionMetricsMixin):
    """A weight matrix after BitWave-style zero-column bit-flip pruning."""

    values: np.ndarray
    num_columns: int
    group_size: int
    inherent_zero_columns: np.ndarray
    forced_zero_columns: np.ndarray
    pruned_channel_mask: np.ndarray
    bits: int = 8
    original: np.ndarray | None = None

    def storage_bits(self) -> int:
        """Total storage in bits, pricing metadata like the BBS encoding.

        BitWave stores one small per-group descriptor indicating which columns
        were dropped; we charge the same 8 bits per compressed group as BBS so
        the footprint comparison is apples-to-apples.
        """
        total = 0
        channels, num_groups = self.inherent_zero_columns.shape
        for channel in range(channels):
            for _group in range(num_groups):
                if self.pruned_channel_mask[channel]:
                    total += group_storage_bits(self.group_size, self.num_columns, self.bits)
                else:
                    total += self.group_size * self.bits
        return total

    def effective_bits(self) -> float:
        channels, num_groups = self.inherent_zero_columns.shape
        num_weights = channels * num_groups * self.group_size
        if num_weights == 0:
            return 0.0
        return self.storage_bits() / num_weights

    def extra_scalars(self) -> dict[str, float]:
        return {
            "inherent_zero_columns": float(self.inherent_zero_columns.sum()),
            "forced_zero_columns": float(self.forced_zero_columns.sum()),
        }


def bitflip_group(group: np.ndarray, num_columns: int, bits: int = 8) -> tuple[np.ndarray, int, int]:
    """Prune ``num_columns`` zero columns from one group in sign-magnitude format.

    Returns ``(pruned_values, inherent, forced)`` where ``inherent`` counts the
    columns that were already all-zero (free to drop) and ``forced`` the
    columns whose one-bits had to be flipped to zero.
    """
    group = np.asarray(group).astype(np.int64)
    if group.ndim != 1:
        raise ValueError(f"expected a 1-D group, got shape {group.shape}")
    if num_columns < 0 or num_columns > bits - 1:
        raise ValueError(
            f"num_columns must be in [0, {bits - 1}] for sign-magnitude pruning, "
            f"got {num_columns}"
        )
    values, inherent, forced = _bitflip_batch(group[None, :], num_columns, bits)
    return values[0], int(inherent[0]), int(forced[0])


def _bitflip_batch(
    groups: np.ndarray, num_columns: int, bits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized zero-column pruning over ``(num_groups, group_size)`` groups."""
    lo = -(1 << (bits - 1))
    groups = np.where(groups == lo, lo + 1, groups)  # -128 has no sign-magnitude form
    planes = to_sign_magnitude_planes(groups, bits)  # (G, N, bits), col 0 = sign
    magnitude = planes[:, :, 1:]  # (G, N, bits - 1), MSB first
    column_has_one = magnitude.any(axis=1)  # (G, bits - 1)

    # Inherent zero columns: contiguous run of all-zero columns starting at the
    # most significant magnitude column (these are what sign-magnitude storage
    # drops for free).
    inherent_run = np.cumprod(~column_has_one, axis=1).sum(axis=1)
    inherent = np.minimum(inherent_run, num_columns).astype(np.int64)
    forced = (num_columns - inherent).astype(np.int64)

    # Flip the `forced` least significant magnitude columns of every group to
    # zero.  A column at index c (0 = sign, bits-1 = LSB) is flipped when
    # c >= bits - forced; the comparison below vectorizes that per group.
    column_index = np.arange(bits)[None, None, :]
    flip_mask = column_index >= (bits - forced[:, None, None])
    pruned_planes = np.where(flip_mask, 0, planes).astype(np.uint8)
    values = from_sign_magnitude_planes(pruned_planes)
    return values, inherent, forced


def bitflip_tensor(
    weights: np.ndarray,
    num_columns: int,
    group_size: int = 32,
    bits: int = 8,
    sensitive_channels: np.ndarray | None = None,
    keep_original: bool = True,
) -> BitFlipResult:
    """Apply BitWave-style zero-column pruning to a whole weight matrix.

    Mirrors :func:`repro.core.binary_pruning.prune_tensor` so the two methods
    can be compared with identical sensitive-channel handling.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    if not np.issubdtype(weights.dtype, np.integer):
        raise TypeError("bit-flip pruning operates on integer (quantized) weights")

    grouped = group_weights(weights, group_size)
    channels, num_groups, _ = grouped.groups.shape
    if sensitive_channels is None:
        sensitive = np.zeros(channels, dtype=bool)
    else:
        sensitive = np.asarray(sensitive_channels, dtype=bool)
        if sensitive.shape != (channels,):
            raise ValueError(
                f"sensitive_channels must have shape ({channels},), got {sensitive.shape}"
            )
    prune_mask = ~sensitive

    flat = grouped.groups.reshape(channels * num_groups, group_size).astype(np.int64)
    flat_mask = np.repeat(prune_mask, num_groups)
    pruned_flat = flat.copy()
    inherent = np.zeros(channels * num_groups, dtype=np.int64)
    forced = np.zeros(channels * num_groups, dtype=np.int64)

    if num_columns > 0 and flat_mask.any():
        values, inh, frc = _bitflip_batch(flat[flat_mask], num_columns, bits)
        pruned_flat[flat_mask] = values
        inherent[flat_mask] = inh
        forced[flat_mask] = frc

    pruned_grouped = GroupedTensor(
        groups=pruned_flat.reshape(channels, num_groups, group_size),
        original_shape=grouped.original_shape,
        group_size=group_size,
        pad=grouped.pad,
    )
    return BitFlipResult(
        values=ungroup_weights(pruned_grouped),
        num_columns=num_columns,
        group_size=group_size,
        inherent_zero_columns=inherent.reshape(channels, num_groups),
        forced_zero_columns=forced.reshape(channels, num_groups),
        pruned_channel_mask=prune_mask,
        bits=bits,
        original=weights.copy() if keep_original else None,
    )
