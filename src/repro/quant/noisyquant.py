"""NoisyQuant-style noisy-bias post-training quantization.

NoisyQuant [24] improves low-bit PTQ by adding a fixed, pre-sampled uniform
"noisy bias" to the tensor before uniform quantization and subtracting the
same bias after dequantization.  The added noise dithers values away from the
quantizer's decision boundaries, flattening heavy-tailed distributions and
reducing the worst-case rounding error of outlier-adjacent values.  The paper
uses it as a state-of-the-art PTQ baseline for the 6-bit weight comparison in
Table III.

Our implementation follows the published recipe: the noisy bias ``N`` is drawn
once per tensor from ``Uniform(-q/2, q/2)`` (``q`` = quantization step),
shared across the channel dimension, applied before rounding, and removed
after dequantization.  A small calibration sweep over the noise amplitude
picks the amplitude that minimizes reconstruction MSE, mirroring the paper's
calibrated deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import ReconstructionMetricsMixin

__all__ = ["NoisyQuantResult", "noisyquant_quantize"]


@dataclass(frozen=True)
class NoisyQuantResult(ReconstructionMetricsMixin):
    """Weights after NoisyQuant compression, expressed in the input domain."""

    values: np.ndarray
    bits: int
    noise_amplitude: float
    original: np.ndarray | None = None

    def effective_bits(self) -> float:
        return float(self.bits)

    def extra_scalars(self) -> dict[str, float]:
        return {"noise_amplitude": float(self.noise_amplitude)}


def _uniform_quantize(
    work: np.ndarray, noise: np.ndarray, bits: int
) -> np.ndarray:
    """Per-channel symmetric quantization of ``work + noise`` minus the noise."""
    qmax = (1 << (bits - 1)) - 1
    qmin = -(qmax + 1)
    max_abs = np.max(np.abs(work), axis=1, keepdims=True)
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    noisy = work + noise
    codes = np.clip(np.round(noisy / scales), qmin, qmax)
    return codes * scales - noise


def noisyquant_quantize(
    weights: np.ndarray,
    bits: int = 6,
    seed: int = 0,
    amplitude_candidates: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    keep_original: bool = True,
) -> NoisyQuantResult:
    """Quantize a weight matrix with the NoisyQuant noisy-bias recipe.

    Parameters
    ----------
    weights:
        ``(channels, reduction)`` matrix; integer (INT8) or floating point.
        The reconstruction is returned in the same domain as the input.
    bits:
        Target precision (6 in the paper's Table III).
    seed:
        Seed of the fixed noisy bias (the bias is sampled once and reused, as
        in the original method).
    amplitude_candidates:
        Noise amplitudes (as a fraction of half the quantization step) swept
        during calibration; 0.0 falls back to plain uniform PTQ.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    work = weights.astype(np.float64)
    rng = np.random.default_rng(seed)

    qmax = (1 << (bits - 1)) - 1
    max_abs = np.max(np.abs(work), axis=1, keepdims=True)
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    # The noisy bias is shared along the output-channel dimension (one value
    # per reduction index), scaled per channel by the quantization step.
    base_noise = rng.uniform(-0.5, 0.5, size=(1, work.shape[1]))

    best = None
    best_mse = np.inf
    best_amplitude = 0.0
    for amplitude in amplitude_candidates:
        noise = amplitude * base_noise * scales
        reconstructed = _uniform_quantize(work, noise, bits)
        err = float(np.mean((reconstructed - work) ** 2))
        if err < best_mse:
            best_mse = err
            best = reconstructed
            best_amplitude = float(amplitude)

    assert best is not None
    if np.issubdtype(weights.dtype, np.integer):
        best = np.clip(np.round(best), -(1 << 7), (1 << 7) - 1).astype(np.int64)

    return NoisyQuantResult(
        values=best,
        bits=bits,
        noise_amplitude=best_amplitude,
        original=weights.copy() if keep_original else None,
    )
