"""Quantization substrate and compression baselines.

* :mod:`repro.quant.ptq` — symmetric per-channel / per-tensor uniform PTQ,
  the 8-bit baseline every method in the paper starts from, plus the naive
  sub-8-bit PTQ baseline of Figure 11.
* :mod:`repro.quant.bitflip` — BitWave-style sign-magnitude zero-column
  pruning (the "previous bit-sparsity" baseline of Figures 1b, 6 and 11).
* :mod:`repro.quant.microscaling` — MX shared-exponent block format
  (Table III).
* :mod:`repro.quant.noisyquant` — NoisyQuant noisy-bias PTQ (Table III).
* :mod:`repro.quant.ant_datatype` — ANT adaptive datatype quantization
  (Table II).
* :mod:`repro.quant.olive` — Olive outlier-victim pair quantization
  (Figure 17 / Table VI).
"""

from .ant_datatype import AntResult, ant_quantize, datatype_codebook
from .bitflip import BitFlipResult, bitflip_group, bitflip_tensor
from .microscaling import MicroscalingResult, microscaling_quantize
from .noisyquant import NoisyQuantResult, noisyquant_quantize
from .olive import OliveResult, olive_quantize
from .ptq import (
    QuantizedTensor,
    dequantize,
    optimal_clip_scale,
    quantize_per_channel,
    quantize_per_tensor,
    requantize_to_lower_bits,
)

__all__ = [
    "AntResult",
    "ant_quantize",
    "datatype_codebook",
    "BitFlipResult",
    "bitflip_group",
    "bitflip_tensor",
    "MicroscalingResult",
    "microscaling_quantize",
    "NoisyQuantResult",
    "noisyquant_quantize",
    "OliveResult",
    "olive_quantize",
    "QuantizedTensor",
    "dequantize",
    "optimal_clip_scale",
    "quantize_per_channel",
    "quantize_per_tensor",
    "requantize_to_lower_bits",
]
