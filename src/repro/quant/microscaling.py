"""Microscaling (MX) shared-exponent block format.

The Microscaling format [36] groups ``block_size`` (32 in the paper's Table
III comparison) elements and stores one shared 8-bit power-of-two exponent per
block plus a low-precision signed integer mantissa per element.  The shared
exponent is chosen from the largest-magnitude element of the block, which is
exactly the weakness the BBS paper points at: small elements in a block that
contains an outlier are crushed to zero because the mantissa has too few bits
to represent them at the outlier's scale.

We implement the MXINT-style variant used for the weight-compression
comparison: ``element_bits``-wide two's-complement mantissas and an 8-bit
shared exponent, giving an effective width of ``element_bits + 8/block_size``
bits per weight (6.25 for the paper's MX6 configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import ReconstructionMetricsMixin

__all__ = ["MicroscalingResult", "microscaling_quantize"]


@dataclass(frozen=True)
class MicroscalingResult(ReconstructionMetricsMixin):
    """Weights after Microscaling compression, expressed in the input domain."""

    values: np.ndarray
    element_bits: int
    block_size: int
    shared_exponents: np.ndarray
    original: np.ndarray | None = None

    def effective_bits(self) -> float:
        """Average stored bits per weight (mantissa + amortized shared exponent)."""
        return self.element_bits + 8.0 / self.block_size


def microscaling_quantize(
    weights: np.ndarray,
    element_bits: int = 6,
    block_size: int = 32,
    keep_original: bool = True,
) -> MicroscalingResult:
    """Quantize a weight matrix with an MXINT-style shared-exponent format.

    Parameters
    ----------
    weights:
        ``(channels, reduction)`` matrix.  Integer (already-quantized INT8)
        and floating-point inputs are both accepted; the reconstruction is
        returned in the same domain as the input so it can be compared
        directly against the original.
    element_bits:
        Mantissa width including the sign bit (6 for the paper's comparison).
    block_size:
        Elements sharing one exponent (32 in the paper).
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    if element_bits < 2:
        raise ValueError("element_bits must be at least 2 (sign + 1 magnitude bit)")
    if block_size <= 0:
        raise ValueError("block_size must be positive")

    work = weights.astype(np.float64)
    channels, reduction = work.shape
    pad = (-reduction) % block_size
    if pad:
        work = np.pad(work, ((0, 0), (0, pad)))
    blocks = work.reshape(channels, -1, block_size)

    qmax = (1 << (element_bits - 1)) - 1
    max_abs = np.max(np.abs(blocks), axis=2)  # (channels, num_blocks)
    # Shared exponent: smallest power of two such that max_abs / 2**e fits in
    # the mantissa range.  Blocks that are all-zero keep exponent 0.
    with np.errstate(divide="ignore"):
        exponents = np.ceil(np.log2(np.where(max_abs > 0, max_abs / qmax, 1.0)))
    exponents = np.where(max_abs > 0, exponents, 0.0)
    scale = np.power(2.0, exponents)[..., None]

    mantissa = np.clip(np.round(blocks / scale), -(qmax + 1), qmax)
    reconstructed = mantissa * scale
    reconstructed = reconstructed.reshape(channels, -1)[:, :reduction]

    if np.issubdtype(weights.dtype, np.integer):
        lo = -(1 << 7)
        hi = (1 << 7) - 1
        reconstructed = np.clip(np.round(reconstructed), lo, hi).astype(np.int64)

    return MicroscalingResult(
        values=reconstructed,
        element_bits=element_bits,
        block_size=block_size,
        shared_exponents=exponents,
        original=weights.copy() if keep_original else None,
    )
