"""ANT adaptive-datatype quantization.

ANT [16] quantizes each weight tensor to a low bit width (the paper evaluates
the 6-bit configuration, which ANT shows to be accuracy-safe without
retraining) by adaptively choosing, per tensor region, among several numeric
datatypes:

* ``int`` — plain uniform integers, good for uniform-ish distributions,
* ``pot`` — power-of-two values, good for very peaked distributions,
* ``flint`` (float-int) — ANT's hybrid type whose codes near zero behave like
  a float (fine resolution) and far from zero like an int (wide range), good
  for Gaussian-like DNN weights.

We implement all three codebooks at an arbitrary bit width and the adaptive
per-channel selection that picks the datatype with the lowest reconstruction
MSE — the decision rule ANT's framework uses.  The reconstruction is returned
in the input domain so KL/MSE/accuracy comparisons against BBS (Table II) use
the same pipeline as every other method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import ReconstructionMetricsMixin

__all__ = ["AntResult", "ant_quantize", "datatype_codebook"]


@dataclass(frozen=True)
class AntResult(ReconstructionMetricsMixin):
    """Weights after ANT adaptive-datatype quantization."""

    values: np.ndarray
    bits: int
    chosen_datatypes: list[str]
    original: np.ndarray | None = None

    def effective_bits(self) -> float:
        """Stored bits per weight (the per-channel type tag is ~2 bits / channel)."""
        return float(self.bits)


def datatype_codebook(datatype: str, bits: int) -> np.ndarray:
    """Return the sorted list of representable values (codes) of a datatype.

    All codebooks are expressed on a normalized scale where the largest
    representable magnitude is 1.0; the quantizer scales each channel so its
    maximum absolute value maps to 1.0.

    Parameters
    ----------
    datatype:
        ``"int"``, ``"pot"`` (power of two), or ``"flint"`` (ANT's float-int).
    bits:
        Code width including the sign bit.
    """
    if bits < 3:
        raise ValueError("ANT datatypes need at least 3 bits")
    half_codes = 1 << (bits - 1)

    if datatype == "int":
        magnitudes = np.arange(half_codes) / float(half_codes - 1)
    elif datatype == "pot":
        # 0 plus powers of two spanning (half_codes - 1) octaves below 1.0.
        exponents = np.arange(half_codes - 1, dtype=np.float64)
        magnitudes = np.concatenate([[0.0], np.power(2.0, -exponents)[::-1]])
    elif datatype == "flint":
        # ANT's flint: half of the code space is spent on an int-like linear
        # region covering the top octave [0.5, 1.0], the other half on a
        # float-like region with per-octave subdivision below 0.5.  This gives
        # fine resolution near zero and wide range, matching the published
        # datatype's intent.
        linear_codes = half_codes // 2
        linear = 0.5 + 0.5 * np.arange(1, linear_codes + 1) / float(linear_codes)
        float_codes = half_codes - linear_codes - 1
        octaves = max(1, bits - 3)
        per_octave = max(1, float_codes // octaves)
        float_region: list[float] = [0.0]
        for octave in range(octaves):
            hi = 0.5 / (1 << octave)
            lo = hi / 2.0
            steps = np.linspace(lo, hi, per_octave, endpoint=False)
            float_region.extend(steps.tolist())
        magnitudes = np.unique(np.concatenate([float_region, linear]))
    else:
        raise ValueError(f"unknown ANT datatype {datatype!r}")

    codes = np.unique(np.concatenate([-magnitudes, magnitudes]))
    return np.sort(codes)


def _quantize_to_codebook(channel: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Snap every value of ``channel`` (normalized to [-1, 1]) to its nearest code."""
    indices = np.searchsorted(codebook, channel)
    indices = np.clip(indices, 1, len(codebook) - 1)
    left = codebook[indices - 1]
    right = codebook[indices]
    choose_right = np.abs(right - channel) < np.abs(left - channel)
    return np.where(choose_right, right, left)


def ant_quantize(
    weights: np.ndarray,
    bits: int = 6,
    datatypes: tuple[str, ...] = ("int", "pot", "flint"),
    keep_original: bool = True,
) -> AntResult:
    """Quantize a weight matrix with ANT's adaptive datatype selection.

    Each output channel is normalized by its maximum absolute value, snapped
    to each candidate codebook, and assigned the codebook with the lowest MSE.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    work = weights.astype(np.float64)

    codebooks = {name: datatype_codebook(name, bits) for name in datatypes}
    reconstructed = np.empty_like(work)
    chosen: list[str] = []
    for index, channel in enumerate(work):
        max_abs = float(np.max(np.abs(channel))) if channel.size else 0.0
        if max_abs == 0.0:
            reconstructed[index] = channel
            chosen.append("int")
            continue
        normalized = channel / max_abs
        best_name = None
        best_values = None
        best_mse = np.inf
        for name, codebook in codebooks.items():
            snapped = _quantize_to_codebook(normalized, codebook) * max_abs
            err = float(np.mean((snapped - channel) ** 2))
            if err < best_mse:
                best_mse = err
                best_name = name
                best_values = snapped
        assert best_name is not None and best_values is not None
        reconstructed[index] = best_values
        chosen.append(best_name)

    if np.issubdtype(weights.dtype, np.integer):
        reconstructed = np.clip(np.round(reconstructed), -(1 << 7), (1 << 7) - 1).astype(np.int64)

    return AntResult(
        values=reconstructed,
        bits=bits,
        chosen_datatypes=chosen,
        original=weights.copy() if keep_original else None,
    )
