"""Olive outlier-victim pair quantization.

Olive [15] quantizes weights to 4 bits while handling outliers in hardware
without any indexing metadata: whenever a value does not fit the 4-bit range
it becomes an *outlier* and borrows the encoding slot of its immediate
neighbour (the *victim*), which is forced to zero.  The outlier is then stored
with an extended-range encoding across the pair of slots.  The paper compares
BBS against Olive for Llama-3-8B weight compression (Figure 17) and compares
the BitVert PE against the Olive PE (Table VI).

Our implementation follows that scheme on a per-channel-scaled tensor:

* values are scaled so the *non-outlier* bulk fits the ``bits``-wide range,
* values outside the range are outliers; each outlier zeroes its paired
  neighbour and is itself quantized with an extended power-of-two range
  (Olive encodes outliers as 4-bit "abfloat" magnitudes),
* if both values of a pair are outliers only the larger keeps extended range
  (the other is clipped), which is Olive's documented behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import ReconstructionMetricsMixin

__all__ = ["OliveResult", "olive_quantize"]


@dataclass(frozen=True)
class OliveResult(ReconstructionMetricsMixin):
    """Weights after Olive outlier-victim pair quantization."""

    values: np.ndarray
    bits: int
    outlier_fraction: float
    original: np.ndarray | None = None

    def effective_bits(self) -> float:
        return float(self.bits)

    def extra_scalars(self) -> dict[str, float]:
        return {"outlier_fraction": float(self.outlier_fraction)}


def _outlier_codebook(bits: int, normal_max: float) -> np.ndarray:
    """Extended-range outlier magnitudes (power-of-two steps above the range).

    Olive stores outliers as low-precision floating-point magnitudes ("abfloat")
    whose range extends well past the normal grid; we model this with
    ``2**bits`` power-of-two magnitudes starting right above ``normal_max``.
    """
    exponents = np.arange(1, (1 << bits) + 1, dtype=np.float64)
    return normal_max * np.power(2.0, exponents / 2.0)


def olive_quantize(
    weights: np.ndarray,
    bits: int = 4,
    outlier_percentile: float = 99.0,
    keep_original: bool = True,
) -> OliveResult:
    """Quantize a weight matrix with Olive's outlier-victim pair scheme.

    Parameters
    ----------
    weights:
        ``(channels, reduction)`` matrix; integer or floating point.  The
        reconstruction is returned in the input domain.
    bits:
        Precision of normal values (4 in the paper's comparison).
    outlier_percentile:
        Percentile of the per-channel absolute values used as the normal-range
        boundary; values above it become outliers.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    if not 50.0 < outlier_percentile <= 100.0:
        raise ValueError("outlier_percentile must be in (50, 100]")
    work = weights.astype(np.float64)
    channels, reduction = work.shape

    qmax = (1 << (bits - 1)) - 1
    reconstructed = np.empty_like(work)
    total_outliers = 0

    for channel_index in range(channels):
        channel = work[channel_index]
        abs_channel = np.abs(channel)
        boundary = np.percentile(abs_channel, outlier_percentile) if channel.size else 0.0
        if boundary == 0.0:
            boundary = float(abs_channel.max()) if channel.size else 1.0
        if boundary == 0.0:
            reconstructed[channel_index] = channel
            continue
        scale = boundary / qmax

        codes = np.round(channel / scale)
        is_outlier = np.abs(codes) > qmax
        normal = np.clip(codes, -qmax - 1, qmax) * scale

        result = normal.copy()
        outlier_codebook = _outlier_codebook(bits, boundary)
        outlier_indices = np.flatnonzero(is_outlier)
        total_outliers += outlier_indices.size
        for index in outlier_indices:
            partner = index + 1 if index % 2 == 0 else index - 1
            magnitude = abs_channel[index]
            snapped = outlier_codebook[np.argmin(np.abs(outlier_codebook - magnitude))]
            snapped = min(snapped, magnitude + boundary)  # never overshoot wildly
            result[index] = np.sign(channel[index]) * snapped
            if 0 <= partner < reduction and not is_outlier[partner]:
                # The victim's slot is consumed by the outlier encoding.
                result[partner] = 0.0
        reconstructed[channel_index] = result

    if np.issubdtype(weights.dtype, np.integer):
        reconstructed = np.clip(np.round(reconstructed), -(1 << 7), (1 << 7) - 1).astype(np.int64)

    outlier_fraction = total_outliers / max(1, channels * reduction)
    return OliveResult(
        values=reconstructed,
        bits=bits,
        outlier_fraction=float(outlier_fraction),
        original=weights.copy() if keep_original else None,
    )
