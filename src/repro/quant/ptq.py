"""Post-training quantization (PTQ) substrate.

The paper's baseline models are 8-bit, per-channel, symmetrically quantized
DNNs (Section V-A) — the same baseline every compression method (BBS binary
pruning, BitWave bit-flip, Microscaling, NoisyQuant, ANT, Olive) starts from.
This module provides:

* symmetric per-channel / per-tensor uniform quantization with optional
  MSE-optimal clipping calibration,
* dequantization back to floating point,
* "naive PTQ below 8 bits" — re-quantizing an already-quantized 8-bit tensor
  to a lower precision while keeping a set of sensitive channels at 8 bits,
  which is the PTQ baseline of Figure 11.

All quantizers are deterministic and vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_per_channel",
    "quantize_per_tensor",
    "dequantize",
    "requantize_to_lower_bits",
    "optimal_clip_scale",
]


@dataclass(frozen=True)
class QuantizedTensor:
    """A symmetric, uniformly quantized weight matrix.

    Attributes
    ----------
    values:
        Integer codes of shape ``(channels, reduction)``.
    scales:
        Per-channel scale factors of shape ``(channels,)`` (a single repeated
        value for per-tensor quantization).  ``float = values * scales``.
    bits:
        Code word width.
    per_channel:
        Whether the scales are per-channel.
    """

    values: np.ndarray
    scales: np.ndarray
    bits: int
    per_channel: bool

    @property
    def num_channels(self) -> int:
        return self.values.shape[0]

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point weights."""
        return dequantize(self)

    def effective_bits(self) -> float:
        """Stored bits per weight (scales amortize to ~0 for realistic layers)."""
        return float(self.bits)


def _quant_bounds(bits: int) -> tuple[int, int]:
    if bits < 2:
        raise ValueError(f"need at least 2 bits for signed quantization, got {bits}")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def optimal_clip_scale(
    channel: np.ndarray, bits: int, num_candidates: int = 100
) -> float:
    """MSE-optimal symmetric clipping scale for one weight channel.

    Sweeps ``num_candidates`` clip thresholds between 20 % and 100 % of the
    channel's max absolute value and returns the scale (step size) that
    minimizes the reconstruction MSE.  This is the standard MSE calibration
    used by per-channel PTQ frameworks (e.g. TensorRT-style calibration).
    """
    channel = np.asarray(channel, dtype=np.float64)
    max_abs = float(np.max(np.abs(channel))) if channel.size else 0.0
    if max_abs == 0.0:
        return 1.0
    _, qmax = _quant_bounds(bits)
    best_scale = max_abs / qmax
    best_mse = np.inf
    for fraction in np.linspace(0.2, 1.0, num_candidates):
        clip = fraction * max_abs
        scale = clip / qmax
        codes = np.clip(np.round(channel / scale), *_quant_bounds(bits))
        err = float(np.mean((codes * scale - channel) ** 2))
        if err < best_mse:
            best_mse = err
            best_scale = scale
    return float(best_scale)


def quantize_per_channel(
    weights: np.ndarray, bits: int = 8, calibrate: bool = False
) -> QuantizedTensor:
    """Symmetric per-channel quantization of a floating-point weight matrix.

    Parameters
    ----------
    weights:
        ``(channels, reduction)`` floating-point matrix.
    bits:
        Target precision.
    calibrate:
        If True, use MSE-optimal clipping per channel instead of max-abs
        scaling.  Max-abs is the right default for 8-bit (negligible clipping
        benefit); calibration matters for aggressive precisions (< 6 bits).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    qmin, qmax = _quant_bounds(bits)
    if calibrate:
        scales = np.array(
            [optimal_clip_scale(channel, bits) for channel in weights]
        )
    else:
        max_abs = np.max(np.abs(weights), axis=1)
        scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    codes = np.clip(np.round(weights / scales[:, None]), qmin, qmax).astype(np.int64)
    return QuantizedTensor(values=codes, scales=scales, bits=bits, per_channel=True)


def quantize_per_tensor(
    weights: np.ndarray, bits: int = 8, calibrate: bool = False
) -> QuantizedTensor:
    """Symmetric per-tensor quantization (single scale for the whole matrix)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"expected (channels, reduction), got {weights.shape}")
    qmin, qmax = _quant_bounds(bits)
    if calibrate:
        scale = optimal_clip_scale(weights.ravel(), bits)
    else:
        max_abs = float(np.max(np.abs(weights))) if weights.size else 0.0
        scale = max_abs / qmax if max_abs > 0 else 1.0
    codes = np.clip(np.round(weights / scale), qmin, qmax).astype(np.int64)
    scales = np.full(weights.shape[0], scale)
    return QuantizedTensor(values=codes, scales=scales, bits=bits, per_channel=False)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Map integer codes back to floating point values."""
    return quantized.values.astype(np.float64) * quantized.scales[:, None]


def requantize_to_lower_bits(
    quantized: QuantizedTensor,
    target_bits: int,
    sensitive_channels: np.ndarray | None = None,
    calibrate: bool = True,
) -> QuantizedTensor:
    """Naive PTQ below 8 bits: re-quantize an INT8 tensor to ``target_bits``.

    This is the "PTQ" baseline of Figure 11: coarse clipping and re-scaling of
    the already-quantized tensor so that only ``2**target_bits`` quantization
    levels remain.  Channels marked sensitive keep their original 8-bit codes
    (and scales); the returned tensor therefore has mixed precision, exactly
    like the BBS and BitWave configurations it is compared against.

    The returned codes are expressed back in the *original* 8-bit integer
    domain (i.e. they are multiples of the coarser step), so that KL
    divergence and MSE can be measured directly against the 8-bit baseline.
    """
    if target_bits >= quantized.bits:
        raise ValueError(
            f"target_bits ({target_bits}) must be below the current precision "
            f"({quantized.bits})"
        )
    values = quantized.values.astype(np.float64)
    channels = values.shape[0]
    if sensitive_channels is None:
        sensitive = np.zeros(channels, dtype=bool)
    else:
        sensitive = np.asarray(sensitive_channels, dtype=bool)
        if sensitive.shape != (channels,):
            raise ValueError(
                f"sensitive_channels must have shape ({channels},), got {sensitive.shape}"
            )

    qmin, qmax = _quant_bounds(target_bits)
    new_values = quantized.values.copy()
    for channel in range(channels):
        if sensitive[channel]:
            continue
        row = values[channel]
        if calibrate:
            step = optimal_clip_scale(row, target_bits)
        else:
            max_abs = float(np.max(np.abs(row))) if row.size else 0.0
            step = max_abs / qmax if max_abs > 0 else 1.0
        codes = np.clip(np.round(row / step), qmin, qmax)
        # Express the coarse codes back in the original integer domain.
        reconstructed = np.round(codes * step)
        lo, hi = _quant_bounds(quantized.bits)
        new_values[channel] = np.clip(reconstructed, lo, hi).astype(np.int64)

    return QuantizedTensor(
        values=new_values,
        scales=quantized.scales.copy(),
        bits=quantized.bits,
        per_channel=quantized.per_channel,
    )
