"""Experiment harness reproducing every table and figure of the evaluation."""

from . import ablations, experiments
from .ablations import run_all_ablations
from .benchmarks import ACCELERATOR_NAMES, BENCHMARK_MODEL_NAMES, BenchmarkSuite
from .experiments import (
    figure1_motivation,
    figure3_sparsity_comparison,
    figure6_kl_divergence,
    figure11_accuracy,
    figure12_speedup,
    figure13_energy,
    figure14_load_balance,
    figure15_stall_breakdown,
    figure16_pareto,
    figure17_llm,
    run_all,
    table1_models,
    table2_ant_comparison,
    table3_ptq_comparison,
    table4_pe_design_space,
    table5_pe_comparison,
    table6_olive_pe,
)
from .reporting import format_table, geometric_mean

__all__ = [
    "ablations",
    "experiments",
    "run_all_ablations",
    "ACCELERATOR_NAMES",
    "BENCHMARK_MODEL_NAMES",
    "BenchmarkSuite",
    "figure1_motivation",
    "figure3_sparsity_comparison",
    "figure6_kl_divergence",
    "figure11_accuracy",
    "figure12_speedup",
    "figure13_energy",
    "figure14_load_balance",
    "figure15_stall_breakdown",
    "figure16_pareto",
    "figure17_llm",
    "run_all",
    "table1_models",
    "table2_ant_comparison",
    "table3_ptq_comparison",
    "table4_pe_design_space",
    "table5_pe_comparison",
    "table6_olive_pe",
    "format_table",
    "geometric_mean",
]
