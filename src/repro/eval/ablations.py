"""Ablation studies for the design choices called out in DESIGN.md.

The paper fixes several hyper-parameters — the weight group size (32), the
6-bit BBS-constant field, the 2-bit redundant-column field, the PE sub-group
size (8), the sensitive-channel fraction beta and the channel-parallelism
alignment CH — mostly with brief empirical justifications.  These ablations
re-derive those choices with the reproduction's models so the trade-offs are
visible and testable:

* :func:`group_size_ablation` — compression ratio vs reconstruction error as
  the encoding group size changes (metadata amortization vs pruning error).
* :func:`constant_bits_ablation` — effect of the zero-point constant's width
  on the zero-point-shifting search (why 6 bits is enough).
* :func:`beta_ablation` — sensitive-channel fraction vs error and footprint.
* :func:`sub_group_ablation` — BitVert PE area/power vs sub-group size, the
  Table IV trade-off, swept more finely.
* :func:`channel_alignment_ablation` — how the CH alignment inflates the
  sensitive fraction for narrow layers (the hardware-utilization cost of
  Algorithm 2's rounding).
"""

from __future__ import annotations

import numpy as np

from .reporting import format_table
from ..accelerators.area_power import bitvert_pe
from ..core.binary_pruning import prune_tensor
from ..core.encoding import PruningStrategy
from ..core.global_pruning import select_sensitive_channels
from ..core.metrics import kl_divergence, mse
from ..core.zero_point_shift import zero_point_shift_groups

__all__ = [
    "group_size_ablation",
    "constant_bits_ablation",
    "beta_ablation",
    "sub_group_ablation",
    "channel_alignment_ablation",
    "run_all_ablations",
]


def _synthetic_int8_matrix(
    channels: int = 128, reduction: int = 1024, seed: int = 0
) -> np.ndarray:
    """A per-channel-quantized-looking INT8 matrix with outlier channels."""
    rng = np.random.default_rng(seed)
    weights = rng.normal(0.0, 24.0, size=(channels, reduction))
    outliers = rng.choice(channels, size=max(1, channels // 12), replace=False)
    weights[outliers] *= 2.0
    return np.clip(np.round(weights), -128, 127).astype(np.int64)


def group_size_ablation(
    group_sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
    num_columns: int = 4,
    seed: int = 0,
) -> dict:
    """Compression/error trade-off of the encoding group size.

    Larger groups amortize the 8-bit metadata better (approaching the
    ``8 - num_columns`` bits/weight limit) but constrain the pruning: one
    zero-point constant and one redundant-column count must fit more weights,
    so the reconstruction error grows.  The paper picks 32.
    """
    weights = _synthetic_int8_matrix(seed=seed)
    rows = []
    for group_size in group_sizes:
        pruned = prune_tensor(
            weights, num_columns, PruningStrategy.ZERO_POINT_SHIFT, group_size=group_size
        )
        rows.append(
            {
                "group_size": group_size,
                "effective_bits": pruned.effective_bits(),
                "compression_ratio": pruned.compression_ratio(),
                "mse": pruned.mse(),
                "kl_divergence": pruned.kl_divergence(),
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Ablation: encoding group size")}


def constant_bits_ablation(
    constant_bits: tuple[int, ...] = (2, 3, 4, 5, 6, 7),
    num_columns: int = 4,
    seed: int = 0,
) -> dict:
    """Width of the zero-point constant vs reconstruction error.

    A wider constant widens Algorithm 1's search space; beyond 6 bits the
    improvement vanishes while the metadata grows, which is the paper's
    justification for the 2+6-bit metadata split.
    """
    weights = _synthetic_int8_matrix(seed=seed)
    groups = weights[:, : (weights.shape[1] // 32) * 32].reshape(-1, 32)
    rows = []
    for bits in constant_bits:
        values, _, _, constants = zero_point_shift_groups(
            groups, num_columns, constant_bits=bits
        )
        rows.append(
            {
                "constant_bits": bits,
                "mse": float(np.mean((values - groups) ** 2)),
                "mean_abs_constant": float(np.mean(np.abs(constants))),
                "metadata_bits_per_group": 2 + bits,
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Ablation: BBS constant width")}


def beta_ablation(
    betas: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20, 0.40),
    num_columns: int = 4,
    seed: int = 0,
) -> dict:
    """Sensitive-channel fraction vs error and footprint.

    More protected channels reduce the pruning error but dilute the
    compression; the paper settles on 10 % (conservative) and 20 % (moderate).
    """
    weights = _synthetic_int8_matrix(seed=seed)
    scores = np.abs(weights).max(axis=1).astype(np.float64)
    rows = []
    for beta in betas:
        masks = select_sensitive_channels({"layer": scores}, beta=beta, channel_parallelism=32)
        pruned = prune_tensor(
            weights,
            num_columns,
            PruningStrategy.ZERO_POINT_SHIFT,
            sensitive_channels=masks["layer"],
        )
        rows.append(
            {
                "beta": beta,
                "sensitive_fraction": float(masks["layer"].mean()),
                "effective_bits": pruned.effective_bits(),
                "mse": pruned.mse(),
                "kl_divergence": pruned.kl_divergence(),
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Ablation: sensitive-channel fraction")}


def sub_group_ablation(sub_groups: tuple[int, ...] = (16, 8, 4, 2)) -> dict:
    """BitVert PE area/power vs sub-group size (finer sweep of Table IV)."""
    rows = []
    for sub_group in sub_groups:
        for optimized in (False, True):
            design = bitvert_pe(sub_group=sub_group, optimized=optimized)
            rows.append(
                {
                    "sub_group": sub_group,
                    "optimized": optimized,
                    "area_um2": design.area_um2,
                    "power_mw": design.power_mw,
                    "area_x_power": design.area_um2 * design.power_mw,
                }
            )
    return {"rows": rows, "table": format_table(rows, title="Ablation: PE sub-group size")}


def channel_alignment_ablation(
    layer_widths: tuple[int, ...] = (32, 64, 128, 512, 2048),
    beta: float = 0.10,
    channel_parallelism: int = 32,
    seed: int = 0,
) -> dict:
    """Cost of rounding sensitive-channel counts up to a multiple of CH.

    Narrow layers pay the most: a single globally-sensitive channel forces a
    whole CH-wide chunk to stay at 8 bits.  This quantifies the effect the
    reproduction's sub-sampled experiments also exhibit (see EXPERIMENTS.md).
    """
    rng = np.random.default_rng(seed)
    rows = []
    for width in layer_widths:
        scores = {"layer": rng.lognormal(0.0, 0.5, size=width)}
        aligned = select_sensitive_channels(scores, beta=beta, channel_parallelism=channel_parallelism)
        unaligned = select_sensitive_channels(scores, beta=beta, channel_parallelism=1)
        rows.append(
            {
                "layer_channels": width,
                "target_beta": beta,
                "unaligned_fraction": float(unaligned["layer"].mean()),
                "aligned_fraction": float(aligned["layer"].mean()),
                "overhead": float(aligned["layer"].mean() - unaligned["layer"].mean()),
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Ablation: CH alignment overhead")}


def run_all_ablations(seed: int = 0) -> dict[str, dict]:
    """Run every ablation and return their results keyed by name."""
    return {
        "group_size": group_size_ablation(seed=seed),
        "constant_bits": constant_bits_ablation(seed=seed),
        "beta": beta_ablation(seed=seed),
        "sub_group": sub_group_ablation(),
        "channel_alignment": channel_alignment_ablation(seed=seed),
    }
