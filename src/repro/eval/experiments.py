"""Experiment harness: one function per table/figure of the paper's evaluation.

Every function returns a dict with at least a ``rows`` key (a list of row
dictionaries, one per bar / table line of the original figure) plus any
experiment-specific extras, and can be rendered with
:func:`repro.eval.reporting.format_table`.  EXPERIMENTS.md records the
paper-reported values next to the values these functions produce.

The accuracy-related experiments cannot use ImageNet/GLUE/Wikitext offline, so
they report (a) the paper's own distribution-level proxy — KL divergence and
MSE of the compressed weights against the 8-bit baseline — and (b) a real
end-to-end accuracy measurement on a small numpy MLP trained on a synthetic
task (Figure 11 and Tables II/III), and (c) an output-distortion measurement
for the LLM study (Figure 17).  The substitutions are listed in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .benchmarks import ACCELERATOR_NAMES, BENCHMARK_MODEL_NAMES, BenchmarkSuite
from .reporting import format_table, geometric_mean, to_jsonable
from ..accelerators import (
    ArrayConfig,
    BitletAccelerator,
    BitVertAccelerator,
    BitWaveAccelerator,
    ModelPerformance,
    PragmaticAccelerator,
    StripesAccelerator,
    bitvert_pe,
    olive_pe,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    PE_BUILDERS,
)
from ..core import (
    CONSERVATIVE_PRESET,
    MODERATE_PRESET,
    PruningPreset,
    PruningStrategy,
    global_binary_prune,
    kl_divergence,
    mse,
    normalized_kl,
    prune_tensor,
    sparsity_report,
)
from ..nn.model_zoo import get_model, llama3_8b
from ..nn.synthetic import LayerWeights, synthesize_model
from ..nn.trainer import (
    MLPClassifier,
    accuracy_under_compression,
    make_classification_dataset,
)
from ..quant import (
    ant_quantize,
    bitflip_tensor,
    microscaling_quantize,
    noisyquant_quantize,
    olive_quantize,
    quantize_per_channel,
    requantize_to_lower_bits,
)

__all__ = [
    "figure1_motivation",
    "figure3_sparsity_comparison",
    "figure6_kl_divergence",
    "figure11_accuracy",
    "table1_models",
    "table2_ant_comparison",
    "table3_ptq_comparison",
    "figure12_speedup",
    "figure13_energy",
    "figure14_load_balance",
    "figure15_stall_breakdown",
    "table4_pe_design_space",
    "table5_pe_comparison",
    "figure16_pareto",
    "figure17_llm",
    "table6_olive_pe",
    "json_payload",
    "run_all",
    "run_all_parallel",
    "SUITE_TASKS",
]


def json_payload(result: dict) -> dict:
    """Strictly-JSON view of one experiment result.

    Experiment dicts mix serializable fields (``rows``, ``table``) with live
    objects: the ``results`` key of Figures 12/13 holds ``ModelPerformance``
    instances whose per-layer records are orders of magnitude bigger than the
    rows they summarize, so that key is dropped outright.  Any remaining field
    that does not survive :func:`repro.eval.reporting.to_jsonable` is dropped
    rather than half-serialized.
    """
    payload: dict = {}
    for key, value in result.items():
        if key == "results":
            continue
        try:
            payload[key] = to_jsonable(value)
        except TypeError:
            continue
    return payload


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #


def _sensitive_masks(weights: dict[str, LayerWeights], beta: float, ch: int = 32):
    """Per-layer sensitive-channel masks using the global selection of Algorithm 2."""
    from ..core.global_pruning import select_sensitive_channels

    scores = {name: lw.channel_scores for name, lw in weights.items()}
    return select_sensitive_channels(scores, beta=beta, channel_parallelism=ch)


@dataclass
class CompressionOutcome:
    """A compression method applied to a whole (synthetic) model."""

    method: str
    effective_bits: float
    mean_kl: float
    mean_mse: float
    compression_ratio: float


def _compress_model(
    weights: dict[str, LayerWeights],
    method: str,
    group_size: int = 32,
) -> CompressionOutcome:
    """Apply one compression method to every layer and report KL/MSE/footprint.

    The supported methods mirror the paper's comparisons: ``bbs_cons`` /
    ``bbs_mod`` (binary pruning presets), ``bitwave`` (zero-column bit-flip),
    ``ptq4`` / ``ptq5`` / ``ptq6`` (naive sub-8-bit PTQ), ``microscaling6``,
    ``noisyquant6``, ``ant6`` and ``olive4``.
    """
    kls: list[float] = []
    mses: list[float] = []
    stored_bits = 0.0
    total_weights = 0

    preset_map = {"bbs_cons": CONSERVATIVE_PRESET, "bbs_mod": MODERATE_PRESET}
    if method in preset_map:
        preset = preset_map[method]
        layer_ints = {name: lw.int_weights for name, lw in weights.items()}
        scores = {name: lw.channel_scores for name, lw in weights.items()}
        result = global_binary_prune(layer_ints, scores, preset=preset)
        for pruned in result.pruned_layers.values():
            kls.append(pruned.kl_divergence())
            mses.append(pruned.mse())
            stored_bits += pruned.storage_bits()
            total_weights += pruned.values.size
    else:
        beta = 0.10 if method in ("bitwave2", "bitwave") else 0.20
        masks = _sensitive_masks(weights, beta=beta)
        for name, layer in weights.items():
            original = layer.int_weights
            sensitive = masks[name]
            if method in ("bitwave", "bitwave2", "bitwave4"):
                columns = {"bitwave": 3, "bitwave2": 2, "bitwave4": 4}[method]
                result = bitflip_tensor(
                    original, columns, group_size=group_size, sensitive_channels=sensitive
                )
                compressed = result.values
                stored_bits += result.storage_bits()
            elif method.startswith("ptq"):
                bits = int(method[len("ptq"):])
                requantized = requantize_to_lower_bits(
                    layer.quantized, bits, sensitive_channels=sensitive
                )
                compressed = requantized.values
                fraction_sensitive = sensitive.mean() if sensitive.size else 0.0
                stored_bits += original.size * (
                    fraction_sensitive * 8 + (1 - fraction_sensitive) * bits
                )
            elif method == "microscaling6":
                compressed = microscaling_quantize(original, 6, group_size).values
                stored_bits += original.size * (6 + 8 / group_size)
            elif method == "noisyquant6":
                compressed = noisyquant_quantize(original, 6).values
                stored_bits += original.size * 6
            elif method == "ant6":
                compressed = ant_quantize(original, 6).values
                stored_bits += original.size * 6
            elif method == "olive4":
                compressed = olive_quantize(original, 4).values
                stored_bits += original.size * 4
            else:
                raise ValueError(f"unknown compression method {method!r}")
            kls.append(kl_divergence(original, compressed))
            mses.append(mse(original, compressed))
            total_weights += original.size

    effective = stored_bits / total_weights if total_weights else 0.0
    ratio = 8.0 / effective if effective else float("inf")
    return CompressionOutcome(
        method=method,
        effective_bits=float(effective),
        mean_kl=float(np.mean(kls)) if kls else 0.0,
        mean_mse=float(np.mean(mses)) if mses else 0.0,
        compression_ratio=float(ratio),
    )


def _mlp_compressors() -> dict[str, object]:
    """Per-layer INT8 compression callbacks for the end-to-end MLP experiment."""

    def bbs(preset: PruningPreset):
        def compress(name: str, values: np.ndarray, scales: np.ndarray) -> np.ndarray:
            del name, scales
            count = int(np.ceil(preset.beta * values.shape[0]))
            order = np.argsort(-np.abs(values).max(axis=1), kind="stable")
            sensitive = np.zeros(values.shape[0], dtype=bool)
            sensitive[order[:count]] = True
            return prune_tensor(
                values,
                preset.num_columns,
                preset.strategy,
                group_size=preset.group_size,
                sensitive_channels=sensitive,
                keep_original=False,
            ).values

        return compress

    def bitwave(columns: int):
        def compress(name: str, values: np.ndarray, scales: np.ndarray) -> np.ndarray:
            del name, scales
            count = int(np.ceil(0.10 * values.shape[0]))
            order = np.argsort(-np.abs(values).max(axis=1), kind="stable")
            sensitive = np.zeros(values.shape[0], dtype=bool)
            sensitive[order[:count]] = True
            return bitflip_tensor(
                values, columns, sensitive_channels=sensitive, keep_original=False
            ).values

        return compress

    def ptq(bits: int):
        def compress(name: str, values: np.ndarray, scales: np.ndarray) -> np.ndarray:
            del name
            quantized = quantize_per_channel(values.astype(np.float64) * scales[:, None], 8)
            return requantize_to_lower_bits(quantized, bits).values

        return compress

    return {
        "INT8 baseline": lambda name, values, scales: values,
        "PTQ (6-bit)": ptq(6),
        "PTQ (4-bit)": ptq(4),
        "BitWave (4 cols)": bitwave(4),
        "BBS conservative": bbs(CONSERVATIVE_PRESET),
        "BBS moderate": bbs(MODERATE_PRESET),
    }


# --------------------------------------------------------------------------- #
# Figure 1 / Figure 3 / Figure 6: motivation and sparsity statistics
# --------------------------------------------------------------------------- #


def figure1_motivation(seed: int = 0) -> dict:
    """Figure 1: compression quality of PTQ vs zero-column pruning vs BBS.

    Uses a ResNet-50 convolution layer's synthetic INT8 weights, compresses to
    an effective ~5-bit width with the three approaches of the figure, and
    reports MSE and KL divergence against the 8-bit weights.
    """
    model = get_model("ResNet-50")
    weights = synthesize_model(model, seed=seed, max_channels=128, max_reduction=1024)
    layer = weights["layer3.conv1"]
    original = layer.int_weights

    ptq5 = requantize_to_lower_bits(layer.quantized, 5).values
    zero_column = bitflip_tensor(original, 3, group_size=4, keep_original=False).values
    bbs = prune_tensor(
        original, 3, PruningStrategy.ZERO_POINT_SHIFT, group_size=4, keep_original=False
    ).values

    rows = []
    for name, compressed in [
        ("PTQ INT5", ptq5),
        ("Sign-magnitude zero columns (3 pruned)", zero_column),
        ("BBS bi-directional columns (3 pruned)", bbs),
    ]:
        rows.append(
            {
                "method": name,
                "mse": mse(original, compressed),
                "kl_divergence": kl_divergence(original, compressed),
                "quantization_levels": int(len(np.unique(compressed))),
            }
        )
    return {"rows": rows, "layer": layer.name, "table": format_table(rows, title="Figure 1")}


def figure3_sparsity_comparison(
    models: list[str] | None = None, seed: int = 0, vector_size: int = 8
) -> dict:
    """Figure 3: value / bit (2's comp) / bit (sign-mag) / BBS sparsity per model."""
    models = models or ["VGG-16", "ResNet-34", "ResNet-50", "ViT-Small", "ViT-Base", "BERT-MRPC"]
    rows = []
    for name in models:
        weights = synthesize_model(
            get_model(name), seed=seed, max_channels=128, max_reduction=1024
        )
        reports = []
        sizes = []
        for layer in weights.values():
            reports.append(sparsity_report(layer.int_weights, vector_size=vector_size))
            sizes.append(layer.int_weights.size * layer.repeat)
        sizes = np.asarray(sizes, dtype=np.float64)
        sizes /= sizes.sum()
        rows.append(
            {
                "model": name,
                "value": float(np.dot(sizes, [r.value for r in reports])),
                "bit_twos_complement": float(
                    np.dot(sizes, [r.bit_twos_complement for r in reports])
                ),
                "bit_sign_magnitude": float(
                    np.dot(sizes, [r.bit_sign_magnitude for r in reports])
                ),
                "bbs": float(np.dot(sizes, [r.bbs for r in reports])),
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Figure 3")}


def figure6_kl_divergence(seed: int = 0, group_size: int = 32) -> dict:
    """Figure 6: normalized KL of zero-column vs rounded-avg vs zero-point pruning."""
    rows = []
    for model_name in ["ResNet-34", "ViT-Base"]:
        weights = synthesize_model(
            get_model(model_name), seed=seed, max_channels=128, max_reduction=1024
        )
        for columns in (2, 4):
            kls: dict[str, list[float]] = {
                "zero_column": [],
                "rounded_average": [],
                "zero_point_shift": [],
            }
            for layer in weights.values():
                original = layer.int_weights
                kls["zero_column"].append(
                    kl_divergence(
                        original,
                        bitflip_tensor(
                            original, columns, group_size=group_size, keep_original=False
                        ).values,
                    )
                )
                kls["rounded_average"].append(
                    kl_divergence(
                        original,
                        prune_tensor(
                            original,
                            columns,
                            PruningStrategy.ROUNDED_AVERAGE,
                            group_size=group_size,
                            keep_original=False,
                        ).values,
                    )
                )
                kls["zero_point_shift"].append(
                    kl_divergence(
                        original,
                        prune_tensor(
                            original,
                            columns,
                            PruningStrategy.ZERO_POINT_SHIFT,
                            group_size=group_size,
                            keep_original=False,
                        ).values,
                    )
                )
            means = {name: float(np.mean(values)) for name, values in kls.items()}
            normalized = normalized_kl(means)
            rows.append(
                {
                    "model": model_name,
                    "pruned_columns": columns,
                    "zero_column_norm_kl": normalized["zero_column"],
                    "rounded_average_norm_kl": normalized["rounded_average"],
                    "zero_point_shift_norm_kl": normalized["zero_point_shift"],
                }
            )
    return {"rows": rows, "table": format_table(rows, title="Figure 6")}


# --------------------------------------------------------------------------- #
# Figure 11 and Tables I-III: accuracy comparisons
# --------------------------------------------------------------------------- #


def table1_models() -> dict:
    """Table I: the evaluated models and their published FP32/INT8 accuracies."""
    rows = []
    for name in BENCHMARK_MODEL_NAMES:
        model = get_model(name)
        rows.append(
            {
                "model": model.name,
                "type": model.family,
                "dataset": model.dataset,
                "fp32_accuracy": model.fp32_accuracy,
                "int8_accuracy": model.int8_accuracy,
                "weights_millions": model.total_weights / 1e6,
                "gmacs": model.total_macs / 1e9,
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Table I")}


def figure11_accuracy(
    models: list[str] | None = None, seed: int = 0, include_mlp: bool = True
) -> dict:
    """Figure 11: accuracy impact of PTQ vs BitWave vs BBS (cons / mod).

    Reports, per benchmark model, the weight-distribution KL divergence of each
    method (the paper's own explanatory proxy) plus the effective bit width,
    and — once, since it is model-independent — the measured accuracy drop of
    each method on the end-to-end MLP task.
    """
    models = models or ["ResNet-34", "ResNet-50", "ViT-Small", "ViT-Base"]
    methods = ["ptq6", "ptq4", "bitwave2", "bitwave4", "bbs_cons", "bbs_mod"]
    rows = []
    for model_name in models:
        weights = synthesize_model(
            get_model(model_name), seed=seed, max_channels=96, max_reduction=768
        )
        for method in methods:
            outcome = _compress_model(weights, method)
            rows.append(
                {
                    "model": model_name,
                    "method": method,
                    "effective_bits": outcome.effective_bits,
                    "compression_ratio": outcome.compression_ratio,
                    "mean_kl": outcome.mean_kl,
                    "mean_mse": outcome.mean_mse,
                }
            )

    mlp_rows = []
    if include_mlp:
        dataset = make_classification_dataset(
            num_samples=6000, num_features=64, num_classes=16, seed=seed
        )
        mlp = MLPClassifier(dataset.num_features, dataset.num_classes, (192, 128), seed=seed)
        mlp.train(dataset, epochs=25, seed=seed)
        baseline = mlp.evaluate(dataset.test_x, dataset.test_y)
        for name, compressor in _mlp_compressors().items():
            accuracy = accuracy_under_compression(mlp, dataset, compressor)
            mlp_rows.append(
                {
                    "method": name,
                    "test_accuracy": accuracy,
                    "accuracy_loss_vs_fp32": baseline - accuracy,
                }
            )
    return {
        "rows": rows,
        "mlp_rows": mlp_rows,
        "table": format_table(rows, title="Figure 11 (weight-distribution proxy)")
        + ("\n" + format_table(mlp_rows, title="Figure 11 (end-to-end MLP)") if mlp_rows else ""),
    }


def table2_ant_comparison(seed: int = 0) -> dict:
    """Table II: BBS moderate pruning vs ANT 6-bit on VGG-16 and ResNet-50."""
    rows = []
    for model_name in ["VGG-16", "ResNet-50"]:
        weights = synthesize_model(
            get_model(model_name), seed=seed, max_channels=96, max_reduction=768
        )
        bbs = _compress_model(weights, "bbs_mod")
        ant = _compress_model(weights, "ant6")
        rows.append(
            {
                "model": model_name,
                "bbs_mod_bits": bbs.effective_bits,
                "bbs_mod_kl": bbs.mean_kl,
                "ant6_bits": ant.effective_bits,
                "ant6_kl": ant.mean_kl,
                "bbs_better": bbs.mean_kl < ant.mean_kl,
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Table II")}


def table3_ptq_comparison(seed: int = 0) -> dict:
    """Table III: BBS vs Microscaling and NoisyQuant on ViT-Small / ViT-Base."""
    rows = []
    for model_name in ["ViT-Small", "ViT-Base"]:
        weights = synthesize_model(
            get_model(model_name), seed=seed, max_channels=96, max_reduction=768
        )
        outcomes = {
            "Microscaling (6-bit)": _compress_model(weights, "microscaling6"),
            "NoisyQuant (6-bit)": _compress_model(weights, "noisyquant6"),
            "BBS (cons)": _compress_model(weights, "bbs_cons"),
            "BBS (mod)": _compress_model(weights, "bbs_mod"),
        }
        for method, outcome in outcomes.items():
            rows.append(
                {
                    "model": model_name,
                    "method": method,
                    "effective_bits": outcome.effective_bits,
                    "mean_kl": outcome.mean_kl,
                    "mean_mse": outcome.mean_mse,
                }
            )
    return {"rows": rows, "table": format_table(rows, title="Table III")}


# --------------------------------------------------------------------------- #
# Figures 12-15: accelerator performance, energy and load balance
# --------------------------------------------------------------------------- #


def _run_suite(
    suite: BenchmarkSuite, models: list[str], accelerators: list[str] | None = None
) -> dict[str, dict[str, ModelPerformance]]:
    """Run the accelerator line-up over the requested models.

    Delegates to :meth:`BenchmarkSuite.performances`, which fans the
    ``(model, accelerator)`` simulations out over a process pool when the
    suite was built with ``jobs > 1``.
    """
    return suite.performances(models, accelerators)


def figure12_speedup(
    models: list[str] | None = None, suite: BenchmarkSuite | None = None
) -> dict:
    """Figure 12: speedup of every accelerator over Stripes, per model + geomean."""
    models = models or BENCHMARK_MODEL_NAMES
    suite = suite or BenchmarkSuite()
    results = _run_suite(suite, models)

    rows = []
    speedups_by_accel: dict[str, list[float]] = {name: [] for name in ACCELERATOR_NAMES}
    for model_name in models:
        baseline = results[model_name]["Stripes"]
        row: dict[str, object] = {"model": model_name}
        for accel_name in ACCELERATOR_NAMES:
            speedup = results[model_name][accel_name].speedup_over(baseline)
            row[accel_name] = speedup
            speedups_by_accel[accel_name].append(speedup)
        rows.append(row)
    geomean_row: dict[str, object] = {"model": "Geomean"}
    for accel_name in ACCELERATOR_NAMES:
        geomean_row[accel_name] = geometric_mean(speedups_by_accel[accel_name])
    rows.append(geomean_row)
    return {"rows": rows, "results": results, "table": format_table(rows, title="Figure 12")}


def figure13_energy(
    models: list[str] | None = None,
    suite: BenchmarkSuite | None = None,
    results: dict[str, dict[str, ModelPerformance]] | None = None,
) -> dict:
    """Figure 13: energy (off-chip + on-chip) normalized to SparTen, per model."""
    models = models or BENCHMARK_MODEL_NAMES
    suite = suite or BenchmarkSuite()
    results = results or _run_suite(suite, models)

    rows = []
    totals: dict[str, list[float]] = {name: [] for name in ACCELERATOR_NAMES}
    for model_name in models:
        baseline_energy = results[model_name]["SparTen"].total_energy_pj
        for accel_name in ACCELERATOR_NAMES:
            perf = results[model_name][accel_name]
            normalized = perf.total_energy_pj / baseline_energy
            totals[accel_name].append(normalized)
            rows.append(
                {
                    "model": model_name,
                    "accelerator": accel_name,
                    "norm_energy": normalized,
                    "norm_off_chip": perf.off_chip_energy_pj / baseline_energy,
                    "norm_on_chip": perf.on_chip_energy_pj / baseline_energy,
                }
            )
    geomean_rows = [
        {
            "model": "Geomean",
            "accelerator": accel_name,
            "norm_energy": geometric_mean(values),
            "norm_off_chip": float("nan"),
            "norm_on_chip": float("nan"),
        }
        for accel_name, values in totals.items()
    ]
    rows.extend(geomean_rows)
    return {"rows": rows, "results": results, "table": format_table(rows, title="Figure 13")}


def _load_balance_accelerators(array: ArrayConfig) -> dict[str, object]:
    return {
        "Stripes": StripesAccelerator(array=array),
        "Pragmatic": PragmaticAccelerator(array=array),
        "Bitlet": BitletAccelerator(array=array),
        "BitWave": BitWaveAccelerator(array=array),
        "BitVert": BitVertAccelerator(preset=MODERATE_PRESET, array=array),
    }


def figure14_load_balance(
    models: list[str] | None = None,
    column_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
    suite: BenchmarkSuite | None = None,
) -> dict:
    """Figure 14: speedup over Stripes as the number of PE columns grows."""
    models = models or ["ResNet-50", "BERT-MRPC"]
    suite = suite or BenchmarkSuite()
    rows = []
    for model_name in models:
        model = suite.model(model_name)
        weights = suite.weights(model_name)
        for columns in column_counts:
            array = suite.array.with_columns(columns)
            accelerators = _load_balance_accelerators(array)
            baseline = accelerators["Stripes"].run_model(model, weights)
            row: dict[str, object] = {"model": model_name, "pe_columns": columns}
            for name, accelerator in accelerators.items():
                if name == "Stripes":
                    continue
                row[name] = accelerator.run_model(model, weights).speedup_over(baseline)
            rows.append(row)
    return {"rows": rows, "table": format_table(rows, title="Figure 14")}


def figure15_stall_breakdown(
    models: list[str] | None = None,
    column_counts: tuple[int, ...] = (8, 32),
    suite: BenchmarkSuite | None = None,
) -> dict:
    """Figure 15: useful / intra-PE-stall / inter-PE-stall cycle breakdown."""
    models = models or ["ResNet-50", "BERT-MRPC"]
    suite = suite or BenchmarkSuite()
    rows = []
    for model_name in models:
        model = suite.model(model_name)
        weights = suite.weights(model_name)
        for columns in column_counts:
            array = suite.array.with_columns(columns)
            for name, accelerator in _load_balance_accelerators(array).items():
                if name == "Stripes":
                    continue
                breakdown = accelerator.run_model(model, weights).cycle_breakdown()
                rows.append(
                    {
                        "model": model_name,
                        "pe_columns": columns,
                        "accelerator": name,
                        **breakdown,
                    }
                )
    return {"rows": rows, "table": format_table(rows, title="Figure 15")}


# --------------------------------------------------------------------------- #
# Tables IV-VI and Figures 16-17: PE design space, Pareto, LLM study
# --------------------------------------------------------------------------- #


def table4_pe_design_space() -> dict:
    """Table IV: BitVert PE area/power vs sub-group size, with/without optimizations."""
    rows = []
    for sub_group in (16, 8, 4):
        for optimized in (False, True):
            design = bitvert_pe(sub_group=sub_group, optimized=optimized)
            reference = PAPER_TABLE_IV[(sub_group, optimized)]
            rows.append(
                {
                    "sub_group": sub_group,
                    "optimized": optimized,
                    "model_area_um2": design.area_um2,
                    "model_power_mw": design.power_mw,
                    "paper_area_um2": reference["area_um2"],
                    "paper_power_mw": reference["power_mw"],
                }
            )
    return {"rows": rows, "table": format_table(rows, title="Table IV")}


def table5_pe_comparison() -> dict:
    """Table V: PE area/power of the bit-serial accelerators (model vs paper)."""
    rows = []
    stripes_area = PE_BUILDERS["Stripes"]().area_um2
    for name in ["Stripes", "Pragmatic", "Bitlet", "BitWave", "BitVert"]:
        design = PE_BUILDERS[name]()
        reference = PAPER_TABLE_V[name]
        rows.append(
            {
                "accelerator": name,
                "model_area_um2": design.area_um2,
                "model_area_ratio": design.area_um2 / stripes_area,
                "model_power_mw": design.power_mw,
                "paper_area_um2": reference["total_um2"],
                "paper_area_ratio": reference["total_um2"] / PAPER_TABLE_V["Stripes"]["total_um2"],
                "paper_power_mw": reference["power_mw"],
            }
        )
    return {"rows": rows, "table": format_table(rows, title="Table V")}


def figure16_pareto(seed: int = 0, suite: BenchmarkSuite | None = None) -> dict:
    """Figure 16: EDP vs accuracy-loss trade-off on ResNet-50.

    The accuracy axis uses the weight-distribution KL divergence (the offline
    stand-in for ImageNet accuracy loss; see DESIGN.md), normalized per run so
    points can be compared on one plot.  EDP is normalized to the worst design
    point, as in the paper.
    """
    suite = suite or BenchmarkSuite(seed=seed)
    model = suite.model("ResNet-50")
    weights = suite.weights("ResNet-50")

    points = []

    # Baseline accelerators (single configurations).
    stripes = StripesAccelerator(array=suite.array).run_model(model, weights)
    del stripes  # Stripes is not on the paper's Pareto plot; kept for clarity.
    bitlet_perf = BitletAccelerator(array=suite.array).run_model(model, weights)
    points.append({"design": "Bitlet", "kl_proxy": 0.0, "edp": bitlet_perf.energy_delay_product})

    ptq = _compress_model(weights, "ptq4")
    from ..accelerators import AntAccelerator

    ant_perf = AntAccelerator(array=suite.array).run_model(model, weights)
    ant_outcome = _compress_model(weights, "ant6")
    points.append(
        {"design": "ANT (6-bit)", "kl_proxy": ant_outcome.mean_kl, "edp": ant_perf.energy_delay_product}
    )
    stripes_perf = StripesAccelerator(array=suite.array).run_model(model, weights)
    points.append({"design": "PTQ (4-bit)", "kl_proxy": ptq.mean_kl, "edp": stripes_perf.energy_delay_product})

    bitwave_accel = BitWaveAccelerator(array=suite.array, pruned_columns=3)
    bitwave_perf = bitwave_accel.run_model(model, weights)
    bitwave_outcome = _compress_model(weights, "bitwave")
    points.append(
        {"design": "BitWave", "kl_proxy": bitwave_outcome.mean_kl, "edp": bitwave_perf.energy_delay_product}
    )

    # BitVert pruning-ratio sweep.
    sweep = [
        ("BitVert (beta 10%, 2 cols)", CONSERVATIVE_PRESET),
        (
            "BitVert (beta 20%, 3 cols)",
            PruningPreset("custom3", 0.20, 3, PruningStrategy.ZERO_POINT_SHIFT),
        ),
        ("BitVert (beta 20%, 4 cols)", MODERATE_PRESET),
        (
            "BitVert (beta 10%, 5 cols)",
            PruningPreset("custom5", 0.10, 5, PruningStrategy.ZERO_POINT_SHIFT),
        ),
    ]
    for label, preset in sweep:
        accel = BitVertAccelerator(preset=preset, array=suite.array)
        perf = accel.run_model(model, weights)
        layer_ints = {name: lw.int_weights for name, lw in weights.items()}
        scores = {name: lw.channel_scores for name, lw in weights.items()}
        pruned = global_binary_prune(layer_ints, scores, preset=preset)
        points.append(
            {"design": label, "kl_proxy": pruned.mean_kl_divergence(), "edp": perf.energy_delay_product}
        )

    max_edp = max(point["edp"] for point in points)
    for point in points:
        point["norm_edp"] = point["edp"] / max_edp
    return {"rows": points, "table": format_table(points, title="Figure 16")}


def figure17_llm(seed: int = 0, sample_layers: int | None = None) -> dict:
    """Figure 17: BBS vs Olive on Llama-3-8B weight compression.

    Without the Wikitext/C4 pipelines the reported metric is the *output
    distortion*: the relative error of each layer's GEMM output on synthetic
    activations, weighted by layer size — a measured (not fabricated) stand-in
    whose ordering tracks perplexity degradation.  Effective bit widths follow
    the paper exactly (6.25 / 4.25 for BBS cons/mod, 4 for Olive).
    """
    model = llama3_8b()
    weights = synthesize_model(model, seed=seed, max_channels=128, max_reduction=1024)
    rng = np.random.default_rng(seed)

    def output_distortion(compress) -> float:
        errors = []
        sizes = []
        for layer in weights.values():
            original = layer.int_weights
            compressed = compress(layer)
            activations = rng.integers(-64, 64, size=original.shape[1])
            reference = original @ activations
            approximate = compressed @ activations
            denom = np.linalg.norm(reference) or 1.0
            errors.append(float(np.linalg.norm(approximate - reference) / denom))
            sizes.append(layer.full_weight_count)
        sizes = np.asarray(sizes, dtype=np.float64)
        sizes /= sizes.sum()
        return float(np.dot(sizes, errors))

    def bbs(columns: int, strategy: PruningStrategy):
        def compress(layer: LayerWeights) -> np.ndarray:
            return prune_tensor(
                layer.int_weights, columns, strategy, group_size=32, keep_original=False
            ).values

        return compress

    rows = [
        {
            "method": "BBS conservative (6.25 bits)",
            "effective_bits": 6.25,
            "output_distortion": output_distortion(bbs(2, PruningStrategy.ROUNDED_AVERAGE)),
        },
        {
            "method": "BBS moderate (4.25 bits)",
            "effective_bits": 4.25,
            "output_distortion": output_distortion(bbs(4, PruningStrategy.ZERO_POINT_SHIFT)),
        },
        {
            "method": "Olive (4 bits)",
            "effective_bits": 4.0,
            "output_distortion": output_distortion(
                lambda layer: olive_quantize(layer.int_weights, 4, keep_original=False).values
            ),
        },
    ]
    del sample_layers
    return {"rows": rows, "table": format_table(rows, title="Figure 17")}


def table6_olive_pe() -> dict:
    """Table VI: Olive PE vs BitVert PE — area, power, throughput, perf/area.

    Under moderate pruning the BitVert PE finishes 16 multiplications in 4
    cycles (4 MACs/cycle); the Olive PE computes one multiplication per cycle.
    """
    bitvert = bitvert_pe(sub_group=8, optimized=True)
    olive = olive_pe()
    bitvert_throughput = 16.0 / 4.0
    olive_throughput = 1.0
    rows = [
        {
            "pe": "Olive",
            "model_area_um2": olive.area_um2,
            "model_power_mw": olive.power_mw,
            "norm_perf": 1.0,
            "norm_perf_per_area": 1.0,
            "paper_area_um2": PAPER_TABLE_VI["Olive"]["area_um2"],
        },
        {
            "pe": "BitVert (moderate)",
            "model_area_um2": bitvert.area_um2,
            "model_power_mw": bitvert.power_mw,
            "norm_perf": bitvert_throughput / olive_throughput,
            "norm_perf_per_area": (bitvert_throughput / bitvert.area_um2)
            / (olive_throughput / olive.area_um2),
            "paper_area_um2": PAPER_TABLE_VI["BitVert"]["area_um2"],
        },
    ]
    return {"rows": rows, "table": format_table(rows, title="Table VI")}


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #


def run_all(fast: bool = True, seed: int = 0, jobs: int = 1) -> dict[str, dict]:
    """Run every experiment and return their results keyed by experiment name.

    ``fast`` restricts the accelerator sweeps to a representative model subset
    so the whole paper reproduction completes in a few minutes; the full
    seven-model sweep is what the benchmark harness under ``benchmarks/``
    executes.

    ``jobs > 1`` fans the experiments out over a process pool (see
    :func:`run_all_parallel`); note that the parallel path returns the
    strictly-JSON payloads rather than the rich in-process result objects.
    """
    if jobs > 1:
        return run_all_parallel(fast=fast, seed=seed, jobs=jobs)
    suite = BenchmarkSuite(seed=seed)
    sweep_models = ["ResNet-50", "ViT-Small", "BERT-MRPC"] if fast else BENCHMARK_MODEL_NAMES
    accuracy_models = ["ResNet-34", "ViT-Base"] if fast else None

    results: dict[str, dict] = {}
    results["figure1"] = figure1_motivation(seed)
    results["figure3"] = figure3_sparsity_comparison(seed=seed)
    results["figure6"] = figure6_kl_divergence(seed)
    results["table1"] = table1_models()
    results["figure11"] = figure11_accuracy(models=accuracy_models, seed=seed)
    results["table2"] = table2_ant_comparison(seed)
    results["table3"] = table3_ptq_comparison(seed)
    fig12 = figure12_speedup(models=sweep_models, suite=suite)
    results["figure12"] = fig12
    results["figure13"] = figure13_energy(models=sweep_models, suite=suite, results=fig12["results"])
    results["figure14"] = figure14_load_balance(suite=suite)
    results["figure15"] = figure15_stall_breakdown(suite=suite)
    results["table4"] = table4_pe_design_space()
    results["table5"] = table5_pe_comparison()
    results["figure16"] = figure16_pareto(seed, suite=suite)
    results["figure17"] = figure17_llm(seed)
    results["table6"] = table6_olive_pe()
    return results


#: One process-pool task per entry; figure12/figure13 stay paired so the
#: energy figure reuses the speedup figure's accelerator results, exactly as
#: the serial driver does.
SUITE_TASKS = [
    "figure1",
    "figure3",
    "figure6",
    "table1",
    "figure11",
    "table2",
    "table3",
    "figure12+figure13",
    "figure14",
    "figure15",
    "table4",
    "table5",
    "figure16",
    "figure17",
    "table6",
]

#: Submission order for the pool: heaviest tasks first so the tail of the
#: schedule is short cheap tasks instead of one long straggler.
_TASK_SUBMIT_ORDER = [
    "figure12+figure13",
    "figure11",
    "figure14",
    "figure15",
    "figure16",
    "figure6",
    "figure17",
    "figure3",
    "table2",
    "table3",
    "figure1",
    "table1",
    "table4",
    "table5",
    "table6",
]


def _run_suite_task(task: str, fast: bool, seed: int) -> dict[str, dict]:
    """Run one :data:`SUITE_TASKS` entry standalone; returns JSON payloads.

    Used as the process-pool worker of :func:`run_all_parallel` (and runnable
    in-process): everything it needs travels as three picklable scalars, and
    everything it returns is strict JSON.
    """
    suite = BenchmarkSuite(seed=seed)
    sweep_models = ["ResNet-50", "ViT-Small", "BERT-MRPC"] if fast else BENCHMARK_MODEL_NAMES
    accuracy_models = ["ResNet-34", "ViT-Base"] if fast else None
    if task == "figure12+figure13":
        fig12 = figure12_speedup(models=sweep_models, suite=suite)
        fig13 = figure13_energy(models=sweep_models, suite=suite, results=fig12["results"])
        return {"figure12": json_payload(fig12), "figure13": json_payload(fig13)}
    runners = {
        "figure1": lambda: figure1_motivation(seed),
        "figure3": lambda: figure3_sparsity_comparison(seed=seed),
        "figure6": lambda: figure6_kl_divergence(seed),
        "table1": table1_models,
        "figure11": lambda: figure11_accuracy(models=accuracy_models, seed=seed),
        "table2": lambda: table2_ant_comparison(seed),
        "table3": lambda: table3_ptq_comparison(seed),
        "figure14": lambda: figure14_load_balance(suite=suite),
        "figure15": lambda: figure15_stall_breakdown(suite=suite),
        "table4": table4_pe_design_space,
        "table5": table5_pe_comparison,
        "figure16": lambda: figure16_pareto(seed, suite=suite),
        "figure17": lambda: figure17_llm(seed),
        "table6": table6_olive_pe,
    }
    return {task: json_payload(runners[task]())}


def run_all_parallel(fast: bool = True, seed: int = 0, jobs: int = 2) -> dict[str, dict]:
    """Run every experiment across a process pool (``repro all --jobs N``).

    Results are keyed and ordered like :func:`run_all` but hold the
    strictly-JSON payloads (the same dicts the service caches and ships),
    since rich result objects are wasteful to pickle back from workers.
    Numbers are identical to the serial driver's payloads: every experiment
    is deterministic in ``(fast, seed)``.
    """
    from concurrent.futures import ProcessPoolExecutor

    payloads: dict[str, dict[str, dict]] = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            task: pool.submit(_run_suite_task, task, fast, seed)
            for task in _TASK_SUBMIT_ORDER
        }
        for task, future in futures.items():
            payloads[task] = future.result()

    results: dict[str, dict] = {}
    for task in SUITE_TASKS:
        results.update(payloads[task])
    return results
