"""Plain-text result formatting for the experiment harness.

The paper's evaluation produces bar charts and tables; the reproduction's
experiment functions return their underlying numbers as lists of row dicts,
and this module renders them as aligned text tables so the benchmark harness
can print "the same rows/series the paper reports".
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import io
import math
from typing import Any, Iterable

import numpy as np

__all__ = [
    "flatten_scalars",
    "format_table",
    "format_value",
    "geometric_mean",
    "render_bar_chart",
    "rows_to_csv",
    "summarize_rows",
    "to_jsonable",
]


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get a fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Iterable[dict[str, Any]],
    columns: list[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a list of row dicts as an aligned text table.

    Parameters
    ----------
    rows:
        Row dictionaries; missing keys render as empty cells.
    columns:
        Column order (defaults to the keys of the first row).
    precision:
        Decimal places for floats.
    title:
        Optional heading printed above the table.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    if columns is None:
        columns = list(rows[0].keys())

    rendered = [
        [format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts += [header, separator, body]
    return "\n".join(parts) + "\n"


def render_bar_chart(
    series: dict[str, float],
    width: int = 50,
    title: str | None = None,
    reference: float | None = None,
) -> str:
    """Render a horizontal ASCII bar chart of a name -> value series.

    The paper's figures are bar charts; this renderer lets the CLI and the
    examples show the regenerated series directly in a terminal.  Bars are
    scaled to the largest value (or to ``reference`` when given, e.g. 1.0 for
    normalized energy) and annotated with the numeric value, one line per
    entry, e.g. ``BitVert |########## 3.031``.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if not series:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    scale = reference if reference is not None else max(series.values())
    if scale <= 0:
        scale = 1.0
    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for name, value in series.items():
        bar_length = int(round(min(max(value, 0.0), scale) / scale * width))
        bar = "#" * bar_length
        lines.append(f"{name.ljust(name_width)} |{bar.ljust(width)} {value:.3f}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonable(value: Any) -> Any:
    """Convert an experiment value to something ``json.dumps`` accepts strictly.

    Numpy scalars become Python scalars, arrays become nested lists, enums
    their value, dataclasses dicts, and non-finite floats ``None`` (strict
    JSON has no NaN/Infinity; the geomean rows of Figure 13 carry NaN cells).
    Unsupported types raise ``TypeError`` so callers can drop those fields
    explicitly instead of shipping unparseable payloads.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return to_jsonable(float(value))
    if isinstance(value, np.ndarray):
        return to_jsonable(value.tolist())
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if not isinstance(value, type) and callable(getattr(value, "to_jsonable", None)):
        # Result objects (codec CompressionResult, StageMetrics, the metric
        # mixin) know their own JSON form — and it deliberately excludes
        # heavyweight fields (tensors, backend payloads) that a naive
        # dataclasses.asdict walk would choke on.
        return to_jsonable(value.to_jsonable())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    raise TypeError(f"cannot convert {type(value).__name__!r} to JSON")


def flatten_scalars(value: Any, prefix: str = "", separator: str = ".") -> dict[str, Any]:
    """Flatten a nested JSON-able value into ``{"dot.path": scalar}`` leaves.

    The campaign aggregator uses this to turn heterogeneous per-cell result
    payloads into flat CSV rows and numeric summary columns.  Dicts contribute
    their keys as path segments, lists their indices; scalars (including
    ``None``) become leaves.  Keys are emitted in sorted order so the result
    is deterministic for any input layout.
    """
    value = to_jsonable(value)
    leaves: dict[str, Any] = {}

    def _walk(node: Any, path: str) -> None:
        if isinstance(node, dict):
            for key in sorted(node):
                _walk(node[key], f"{path}{separator}{key}" if path else str(key))
        elif isinstance(node, list):
            for index, item in enumerate(node):
                _walk(item, f"{path}{separator}{index}" if path else str(index))
        else:
            leaves[path or "value"] = node

    _walk(value, prefix)
    return leaves


def rows_to_csv(rows: Iterable[dict[str, Any]], columns: list[str] | None = None) -> str:
    """Render row dicts as CSV text (header + one line per row, ``\\n`` ends).

    ``columns`` defaults to the sorted union of every row's keys, so rows with
    different shapes (e.g. cells of different campaign grids) align into one
    rectangular table with empty cells where a row lacks a column (``None``
    also renders empty).
    """
    rows = list(rows)
    if columns is None:
        seen: set[str] = set()
        for row in rows:
            seen.update(row)
        columns = sorted(seen)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    # With lineterminator="\n" the minimal-quoting writer does not treat a
    # bare carriage return as special, so a field containing "\r" would be
    # written unquoted and break round-tripping through csv.reader.  Rows
    # with such fields fall back to quote-everything.
    quoting_writer = csv.writer(buffer, lineterminator="\n", quoting=csv.QUOTE_ALL)

    def _write(fields: list) -> None:
        needs_full_quoting = any(
            isinstance(field, str) and "\r" in field for field in fields
        )
        (quoting_writer if needs_full_quoting else writer).writerow(fields)

    _write(columns)
    for row in rows:
        _write(
            ["" if row.get(column) is None else row.get(column) for column in columns]
        )
    return buffer.getvalue()


def summarize_rows(rows: Iterable[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """Per-column min/mean/max over the numeric columns of flat row dicts.

    Booleans are excluded (they are ``int`` subclasses but not measurements);
    non-numeric and missing cells are simply skipped.  Returns
    ``{column: {"count": ..., "min": ..., "mean": ..., "max": ...}}`` with
    columns in sorted order, so the output is deterministic.
    """
    values: dict[str, list[float]] = {}
    for row in rows:
        for key, cell in row.items():
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            if isinstance(cell, float) and not math.isfinite(cell):
                continue
            values.setdefault(key, []).append(float(cell))
    return {
        column: {
            "count": len(samples),
            "min": min(samples),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        }
        for column, samples in sorted(values.items())
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for the "Geomean" column of Figures 12/13)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
