"""Benchmark suite: shared model/weight/accelerator setup for the experiments.

Synthesizing weights and compressing a model with the moderate (zero-point
shifting) preset are the expensive steps of the evaluation, so the suite
caches both per ``(model, seed)`` and exposes factory helpers for the standard
accelerator line-up of Figures 12/13.  Experiments and benchmarks construct
one suite and share it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..accelerators import (
    AntAccelerator,
    ArrayConfig,
    BitletAccelerator,
    BitVertAccelerator,
    BitWaveAccelerator,
    ModelPerformance,
    PragmaticAccelerator,
    SparTenAccelerator,
    StripesAccelerator,
)
from ..core.global_pruning import CONSERVATIVE_PRESET, MODERATE_PRESET
from ..core.hashing import stable_digest
from ..nn.model_zoo import ModelSpec, get_model
from ..nn.synthetic import LayerWeights, synthesize_model

__all__ = [
    "BenchmarkSuite",
    "BENCHMARK_MODEL_NAMES",
    "ACCELERATOR_NAMES",
    "performance_summary",
]


#: The seven DNN benchmarks of Table I, in the paper's order.
BENCHMARK_MODEL_NAMES = [
    "VGG-16",
    "ResNet-34",
    "ResNet-50",
    "ViT-Small",
    "ViT-Base",
    "BERT-MRPC",
    "BERT-SST2",
]

#: The accelerator line-up of Figures 12/13, in the paper's order.
ACCELERATOR_NAMES = [
    "SparTen",
    "ANT",
    "Stripes",
    "Pragmatic",
    "Bitlet",
    "BitWave",
    "BitVert (conservative)",
    "BitVert (moderate)",
]


@dataclass
class BenchmarkSuite:
    """Cached models, synthetic weights and accelerator factories.

    Parameters
    ----------
    seed:
        Seed for the synthetic weight generation.
    max_channels, max_reduction:
        Per-layer sampling caps passed to :func:`repro.nn.synthetic.synthesize_model`;
        the defaults keep a full 7-model × 8-accelerator sweep under a few
        minutes while preserving per-group statistics.
    """

    seed: int = 0
    max_channels: int = 128
    max_reduction: int = 1024
    array: ArrayConfig = field(default_factory=ArrayConfig)
    _weights: dict[str, dict[str, LayerWeights]] = field(default_factory=dict, repr=False)
    _models: dict[str, ModelSpec] = field(default_factory=dict, repr=False)

    def model(self, name: str) -> ModelSpec:
        if name not in self._models:
            self._models[name] = get_model(name)
        return self._models[name]

    def weights(self, name: str) -> dict[str, LayerWeights]:
        if name not in self._weights:
            self._weights[name] = synthesize_model(
                self.model(name),
                seed=self.seed,
                max_channels=self.max_channels,
                max_reduction=self.max_reduction,
            )
        return self._weights[name]

    def config(self) -> dict:
        """The suite parameters that determine every result it can produce.

        Used by the service layer to key cached results: two suites with equal
        configs synthesize identical weights and therefore identical numbers.
        """
        return {
            "seed": self.seed,
            "max_channels": self.max_channels,
            "max_reduction": self.max_reduction,
            "array": asdict(self.array),
        }

    def config_digest(self) -> str:
        """Stable hex digest of :meth:`config`."""
        return stable_digest("BenchmarkSuite", self.config())

    def accelerators(self, array: ArrayConfig | None = None) -> dict[str, object]:
        """The standard accelerator line-up (fresh instances, shared geometry)."""
        array = array or self.array
        return {
            "SparTen": SparTenAccelerator(array=array),
            "ANT": AntAccelerator(array=array),
            "Stripes": StripesAccelerator(array=array),
            "Pragmatic": PragmaticAccelerator(array=array),
            "Bitlet": BitletAccelerator(array=array),
            "BitWave": BitWaveAccelerator(array=array),
            "BitVert (conservative)": BitVertAccelerator(
                preset=CONSERVATIVE_PRESET, array=array
            ),
            "BitVert (moderate)": BitVertAccelerator(preset=MODERATE_PRESET, array=array),
        }


def performance_summary(performance: ModelPerformance) -> dict:
    """Flatten a :class:`ModelPerformance` into a JSON-serializable summary.

    Keeps the model-level aggregates the experiments report (cycles, energy
    split, stall breakdown, execution time, EDP) and drops the per-layer
    records, which are implementation detail and dominate the object's size.
    """
    return {
        "accelerator": performance.accelerator,
        "model": performance.model,
        "num_layers": len(performance.layers),
        "total_cycles": float(performance.total_cycles),
        "compute_cycles": float(performance.compute_cycles),
        "dram_cycles": float(performance.dram_cycles),
        "useful_cycles": float(performance.useful_cycles),
        "intra_pe_stall_cycles": float(performance.intra_pe_stall_cycles),
        "inter_pe_stall_cycles": float(performance.inter_pe_stall_cycles),
        "total_energy_pj": float(performance.total_energy_pj),
        "on_chip_energy_pj": float(performance.on_chip_energy_pj),
        "off_chip_energy_pj": float(performance.off_chip_energy_pj),
        "execution_time_s": float(performance.execution_time_s),
        "energy_delay_product": float(performance.energy_delay_product),
        "clock_ghz": float(performance.clock_ghz),
    }
