"""Benchmark suite: shared model/weight/accelerator setup for the experiments.

Synthesizing weights and compressing a model with the moderate (zero-point
shifting) preset are the expensive steps of the evaluation, so the suite
caches both per ``(model, seed)`` and exposes factory helpers for the standard
accelerator line-up of Figures 12/13.  Experiments and benchmarks construct
one suite and share it.

With ``jobs > 1`` the suite runs its accelerator sweeps on a process pool:
the numpy-heavy compression inside each simulation is partly GIL-bound, so
one ``(model, accelerator)`` simulation per task across processes scales with
cores.  Workers rebuild an identical suite from :meth:`BenchmarkSuite.config`
(results are deterministic in it) and lean on the per-process artifact memo
(:mod:`repro.core.memo`) to synthesize/compress each model only once.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field

from ..accelerators import (
    AntAccelerator,
    ArrayConfig,
    BitletAccelerator,
    BitVertAccelerator,
    BitWaveAccelerator,
    ModelPerformance,
    PragmaticAccelerator,
    SparTenAccelerator,
    StripesAccelerator,
)
from ..core.global_pruning import CONSERVATIVE_PRESET, MODERATE_PRESET
from ..core.hashing import stable_digest
from ..obs.timing import timed
from ..nn.model_zoo import ModelSpec, get_model
from ..nn.synthetic import LayerWeights, synthesize_model

__all__ = [
    "BenchmarkSuite",
    "BENCHMARK_MODEL_NAMES",
    "ACCELERATOR_NAMES",
    "performance_summary",
]


#: The seven DNN benchmarks of Table I, in the paper's order.
BENCHMARK_MODEL_NAMES = [
    "VGG-16",
    "ResNet-34",
    "ResNet-50",
    "ViT-Small",
    "ViT-Base",
    "BERT-MRPC",
    "BERT-SST2",
]

#: The accelerator line-up of Figures 12/13, in the paper's order.
ACCELERATOR_NAMES = [
    "SparTen",
    "ANT",
    "Stripes",
    "Pragmatic",
    "Bitlet",
    "BitWave",
    "BitVert (conservative)",
    "BitVert (moderate)",
]


@dataclass
class BenchmarkSuite:
    """Cached models, synthetic weights and accelerator factories.

    Parameters
    ----------
    seed:
        Seed for the synthetic weight generation.
    max_channels, max_reduction:
        Per-layer sampling caps passed to :func:`repro.nn.synthetic.synthesize_model`;
        the defaults keep a full 7-model × 8-accelerator sweep under a few
        minutes while preserving per-group statistics.
    """

    seed: int = 0
    max_channels: int = 128
    max_reduction: int = 1024
    array: ArrayConfig = field(default_factory=ArrayConfig)
    #: Process-pool width for :meth:`performances`; 1 means run in-process.
    jobs: int = 1
    _weights: dict[str, dict[str, LayerWeights]] = field(default_factory=dict, repr=False)
    _models: dict[str, ModelSpec] = field(default_factory=dict, repr=False)

    def model(self, name: str) -> ModelSpec:
        if name not in self._models:
            self._models[name] = get_model(name)
        return self._models[name]

    def weights(self, name: str) -> dict[str, LayerWeights]:
        if name not in self._weights:
            self._weights[name] = synthesize_model(
                self.model(name),
                seed=self.seed,
                max_channels=self.max_channels,
                max_reduction=self.max_reduction,
            )
        return self._weights[name]

    def config(self) -> dict:
        """The suite parameters that determine every result it can produce.

        Used by the service layer to key cached results: two suites with equal
        configs synthesize identical weights and therefore identical numbers.
        """
        return {
            "seed": self.seed,
            "max_channels": self.max_channels,
            "max_reduction": self.max_reduction,
            "array": asdict(self.array),
        }

    def config_digest(self) -> str:
        """Stable hex digest of :meth:`config`."""
        return stable_digest("BenchmarkSuite", self.config())

    def performances(
        self, models: list[str], accelerators: list[str] | None = None
    ) -> dict[str, dict[str, ModelPerformance]]:
        """Run the accelerator line-up over ``models``.

        Returns ``{model: {accelerator: ModelPerformance}}``.  With
        ``jobs > 1`` each ``(model, accelerator)`` simulation becomes one
        process-pool task; results are identical to the serial path because
        every simulation is deterministic in the suite config.

        The whole sweep is observed as one
        ``repro_operation_seconds{operation="benchmark.performances"}``
        sample — coarse on purpose: per-simulation timing would dominate the
        hot loop the perf gate watches.
        """
        with timed("benchmark.performances"):
            return self._performances(models, accelerators)

    def _performances(
        self, models: list[str], accelerators: list[str] | None = None
    ) -> dict[str, dict[str, ModelPerformance]]:
        accelerators = list(accelerators or ACCELERATOR_NAMES)
        results: dict[str, dict[str, ModelPerformance]] = {
            name: {} for name in models
        }
        if self.jobs > 1 and len(models) * len(accelerators) > 1:
            # Model-major task chunks: each task simulates one model on a
            # slice of the accelerator line-up, with just enough slices per
            # model to occupy the pool.  Coarser than one task per (model,
            # accelerator) pair so a model's synthesis + compression is
            # repeated in as few worker memos as possible, finer than one
            # task per model so a single-model sweep still parallelizes.
            slices_per_model = max(
                1, min(len(accelerators), -(-self.jobs // len(models)))
            )
            bounds = [
                round(index * len(accelerators) / slices_per_model)
                for index in range(slices_per_model + 1)
            ]
            config = self.config()
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    (
                        model_name,
                        pool.submit(
                            _simulate_task, config, model_name, accelerators[lo:hi]
                        ),
                    )
                    for model_name in models
                    for lo, hi in zip(bounds, bounds[1:], strict=False)
                    if hi > lo
                ]
                for model_name, future in futures:
                    results[model_name].update(future.result())
            return results
        for model_name in models:
            model = self.model(model_name)
            weights = self.weights(model_name)
            instances = self.accelerators()
            for accel_name in accelerators:
                results[model_name][accel_name] = instances[accel_name].run_model(
                    model, weights
                )
        return results

    def accelerators(self, array: ArrayConfig | None = None) -> dict[str, object]:
        """The standard accelerator line-up (fresh instances, shared geometry)."""
        array = array or self.array
        return {
            "SparTen": SparTenAccelerator(array=array),
            "ANT": AntAccelerator(array=array),
            "Stripes": StripesAccelerator(array=array),
            "Pragmatic": PragmaticAccelerator(array=array),
            "Bitlet": BitletAccelerator(array=array),
            "BitWave": BitWaveAccelerator(array=array),
            "BitVert (conservative)": BitVertAccelerator(
                preset=CONSERVATIVE_PRESET, array=array
            ),
            "BitVert (moderate)": BitVertAccelerator(preset=MODERATE_PRESET, array=array),
        }


def _simulate_task(
    config: dict, model_name: str, accel_names: list[str]
) -> dict[str, ModelPerformance]:
    """Process-pool worker: some accelerators on one model, from a suite config."""
    suite = BenchmarkSuite(
        seed=config["seed"],
        max_channels=config["max_channels"],
        max_reduction=config["max_reduction"],
        array=ArrayConfig(**config["array"]),
    )
    model = suite.model(model_name)
    weights = suite.weights(model_name)
    instances = suite.accelerators()
    return {
        name: instances[name].run_model(model, weights) for name in accel_names
    }


def performance_summary(performance: ModelPerformance) -> dict:
    """Flatten a :class:`ModelPerformance` into a JSON-serializable summary.

    Keeps the model-level aggregates the experiments report (cycles, energy
    split, stall breakdown, execution time, EDP) and drops the per-layer
    records, which are implementation detail and dominate the object's size.
    """
    return {
        "accelerator": performance.accelerator,
        "model": performance.model,
        "num_layers": len(performance.layers),
        "total_cycles": float(performance.total_cycles),
        "compute_cycles": float(performance.compute_cycles),
        "dram_cycles": float(performance.dram_cycles),
        "useful_cycles": float(performance.useful_cycles),
        "intra_pe_stall_cycles": float(performance.intra_pe_stall_cycles),
        "inter_pe_stall_cycles": float(performance.inter_pe_stall_cycles),
        "total_energy_pj": float(performance.total_energy_pj),
        "on_chip_energy_pj": float(performance.on_chip_energy_pj),
        "off_chip_energy_pj": float(performance.off_chip_energy_pj),
        "execution_time_s": float(performance.execution_time_s),
        "energy_delay_product": float(performance.energy_delay_product),
        "clock_ghz": float(performance.clock_ghz),
    }
