"""Campaign aggregation: one strict-JSON report (plus CSV) per campaign.

The aggregate report is built *only* from the expanded plan and the per-job
result payloads — never from wall-clock state — and is serialized with sorted
keys, so a resumed campaign produces a byte-identical report to an
uninterrupted one.  Every cell carries its provenance digest (the content
digest the result was checkpointed and cached under), which is what makes a
report auditable: any cell can be recomputed from its ``scenario`` +
``params`` and checked against its digest.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..eval.reporting import flatten_scalars, rows_to_csv, summarize_rows, to_jsonable
from .spec import CampaignPlan

__all__ = ["build_report", "report_csv", "serialize_report"]


#: Flattened per-cell result keys whose values are digests/labels, not
#: measurements; kept in the CSV but excluded from numeric summaries by type.
_CELL_COLUMNS = ("cell", "grid", "scenario", "digest")


def build_report(plan: CampaignPlan, results: Mapping[str, Any]) -> dict:
    """Aggregate per-job results into the campaign's strict-JSON report.

    Parameters
    ----------
    plan:
        The expanded campaign (defines cell order and provenance digests).
    results:
        ``{job digest: result payload}`` for every job of the plan; a missing
        digest raises ``KeyError`` — callers decide how to handle partial
        campaigns (the CLI refuses, the runner only reports when complete).
    """
    cells = []
    for job in plan.jobs:
        if job.digest not in results:
            raise KeyError(
                f"missing result for cell {job.cell} (digest {job.digest[:12]}...)"
            )
        cells.append(
            {
                "cell": job.cell,
                "grid": job.grid,
                "scenario": job.scenario,
                "params": to_jsonable(job.params),
                "digest": job.digest,
                "result": to_jsonable(results[job.digest]),
            }
        )

    summaries = {}
    for grid in plan.spec.grids:
        rows = [
            flatten_scalars(cell["result"])
            for cell in cells
            if cell["grid"] == grid.name
        ]
        summaries[grid.name] = {
            "scenario": grid.scenario,
            "cells": len(rows),
            "metrics": summarize_rows(rows),
        }

    return {
        "campaign": plan.spec.name,
        "description": plan.spec.description,
        "spec_digest": plan.spec_digest(),
        "total_cells": len(cells),
        "stage_order": list(plan.stage_order),
        "grids": summaries,
        "cells": cells,
    }


def report_csv(report: dict) -> str:
    """Flatten a report's cells into one rectangular CSV table.

    Each row is one cell: identity columns first, then the flattened
    ``params.*`` and ``result.*`` leaves; the column set is the sorted union
    over all cells, so grids of different scenarios align with empty cells.
    """
    rows = []
    for cell in report["cells"]:
        row: dict[str, Any] = {column: cell[column] for column in _CELL_COLUMNS}
        row.update(flatten_scalars(cell["params"], prefix="params"))
        row.update(flatten_scalars(cell["result"], prefix="result"))
        rows.append(row)
    extra = sorted(set().union(*(row.keys() for row in rows)) - set(_CELL_COLUMNS)) if rows else []
    return rows_to_csv(rows, columns=list(_CELL_COLUMNS) + extra)


def serialize_report(report: dict) -> str:
    """The canonical byte representation of a report (sorted keys, LF end)."""
    return json.dumps(report, indent=2, sort_keys=True, allow_nan=False) + "\n"
