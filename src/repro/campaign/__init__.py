"""Declarative experiment campaigns: grids of scenarios, run to a report.

This package turns the repository from "16 hard-coded experiments" into a
scenario engine: a JSON spec declares parameter grids (models, word widths,
group sizes, sparsity budgets, accelerators, quantization backends) over the
service registry's scenarios, and the engine expands them into a DAG of
content-addressed jobs, shards the jobs across the service worker pool,
checkpoints every result into a run directory (so interrupted runs resume
without recomputation), and aggregates everything into one deterministic
strict-JSON report plus a CSV table.

* :mod:`repro.campaign.spec` — spec parsing, validation, grid expansion.
* :mod:`repro.campaign.runner` — sharded execution, checkpoints, resume.
* :mod:`repro.campaign.dispatch` — federated execution across remote
  ``repro serve`` nodes, byte-identical to a local run.
* :mod:`repro.campaign.report` — aggregation into report.json / report.csv.

Entry points: ``repro campaign run|resume|report|dispatch`` on the CLI, and
the ``campaign`` scenario (``POST /campaign``) on the service.
"""

from .dispatch import CampaignDispatcher, DispatchError, dispatch_campaign
from .report import build_report, report_csv, serialize_report
from .runner import CampaignRunError, CampaignRunner, run_campaign
from .spec import (
    CampaignGrid,
    CampaignJob,
    CampaignPlan,
    CampaignSpec,
    CampaignSpecError,
    expand_spec,
    load_spec,
    parse_spec,
)

__all__ = [
    "CampaignDispatcher",
    "CampaignGrid",
    "CampaignJob",
    "CampaignPlan",
    "CampaignRunError",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSpecError",
    "DispatchError",
    "build_report",
    "dispatch_campaign",
    "expand_spec",
    "load_spec",
    "parse_spec",
    "report_csv",
    "run_campaign",
    "serialize_report",
]
