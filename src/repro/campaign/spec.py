"""Declarative campaign specs: JSON parameter grids over registry scenarios.

A campaign spec describes a *scenario space* instead of a single run: each
grid names one registry scenario (``prune_tensor``, ``simulate``,
``quantize_tensor``, any experiment, ...), fixes some parameters, and sweeps
others over lists of values.  Expansion takes the Cartesian product of every
grid's swept axes and yields one :class:`CampaignJob` per cell, each carrying
the stable content digest that the runner uses for checkpointing, resumption,
and work deduplication.

Spec layout (JSON object)::

    {
      "name": "pruning-grid",
      "description": "optional free text",
      "grids": [
        {
          "name": "pruning",
          "scenario": "prune_tensor",
          "params": {"rows": 64, "cols": 256},          # fixed for the grid
          "sweep": {                                     # one axis per key
            "num_columns": [2, 4],
            "strategy": ["rounded_average", "zero_point_shift"]
          },
          "depends_on": ["calibration"]                  # optional grid DAG
        }
      ]
    }

``depends_on`` edges order whole grids: a grid's jobs are dispatched only
after every job of its dependency grids has finished, which models
compress-then-simulate style pipelines.  The resulting graph must be acyclic.

Expansion is fully deterministic: axes are swept in sorted key order, cells
are numbered in row-major order over those axes, and the spec digest covers
the canonicalized spec, so two expansions of one spec agree byte-for-byte on
every digest — the property the resume machinery relies on.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..core.hashing import stable_digest

__all__ = [
    "CampaignGrid",
    "CampaignJob",
    "CampaignPlan",
    "CampaignSpec",
    "CampaignSpecError",
    "expand_spec",
    "load_spec",
    "parse_spec",
]


class CampaignSpecError(ValueError):
    """A campaign spec is malformed or references unknown scenarios/params."""


#: Scenarios a campaign may not contain (running a campaign inside a campaign
#: would recurse without bound through the service registry).
FORBIDDEN_SCENARIOS = frozenset({"campaign"})


@dataclass(frozen=True)
class CampaignGrid:
    """One parameter grid over a single registry scenario."""

    name: str
    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, list] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()

    def axes(self) -> list[tuple[str, list]]:
        """Swept axes in sorted key order (the deterministic cell order)."""
        return [(key, list(self.sweep[key])) for key in sorted(self.sweep)]

    def cell_count(self) -> int:
        count = 1
        for _, values in self.axes():
            count *= len(values)
        return count

    def cells(self) -> Iterable[dict[str, Any]]:
        """Yield the merged parameter dict of every cell, row-major."""
        axes = self.axes()
        keys = [key for key, _ in axes]
        for combo in itertools.product(*(values for _, values in axes)):
            yield {**self.params, **dict(zip(keys, combo))}


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated campaign: named grids forming a DAG."""

    name: str
    description: str
    grids: tuple[CampaignGrid, ...]
    raw: dict = field(repr=False)

    def digest(self) -> str:
        """Stable digest of the canonicalized spec (the campaign identity)."""
        return stable_digest("repro-campaign-spec", self.canonical())

    def canonical(self) -> dict:
        """The spec reduced to exactly the fields that determine its jobs."""
        return {
            "name": self.name,
            "description": self.description,
            "grids": [
                {
                    "name": grid.name,
                    "scenario": grid.scenario,
                    "params": dict(grid.params),
                    "sweep": {key: list(values) for key, values in grid.sweep.items()},
                    "depends_on": list(grid.depends_on),
                }
                for grid in self.grids
            ],
        }


@dataclass(frozen=True)
class CampaignJob:
    """One expanded cell: a scenario invocation with concrete parameters."""

    cell: str  #: ``"<grid>/<index>"`` — stable human-readable cell id
    grid: str
    index: int
    scenario: str
    params: dict
    digest: str  #: content digest of ``(scenario, canonicalized params)``


@dataclass(frozen=True)
class CampaignPlan:
    """A fully expanded campaign: every job, in deterministic order."""

    spec: CampaignSpec
    jobs: tuple[CampaignJob, ...]
    #: Grid names in topological (dispatch) order.
    stage_order: tuple[str, ...]

    def spec_digest(self) -> str:
        return self.spec.digest()

    def jobs_for_grid(self, grid: str) -> list[CampaignJob]:
        return [job for job in self.jobs if job.grid == grid]

    def shard(self, shard_index: int, shard_count: int) -> "CampaignPlan":
        """Deterministic round-robin shard of every grid's cells.

        Sharding is per-grid (cell ``index % shard_count``) rather than over
        the flat job list so each shard holds a slice of *every* grid and a
        grid's ``depends_on`` edges stay meaningful inside a single shard.
        """
        if shard_count <= 0:
            raise CampaignSpecError("shard_count must be positive")
        if not 0 <= shard_index < shard_count:
            raise CampaignSpecError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        if shard_count == 1:
            return self
        kept = tuple(
            job for job in self.jobs if job.index % shard_count == shard_index
        )
        return CampaignPlan(spec=self.spec, jobs=kept, stage_order=self.stage_order)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignSpecError(message)


def _parse_grid(entry: Any, position: int) -> CampaignGrid:
    _require(isinstance(entry, dict), f"grids[{position}] must be a JSON object")
    name = entry.get("name", f"grid{position}")
    _require(isinstance(name, str) and name, f"grids[{position}].name must be a non-empty string")
    _require("/" not in name, f"grid name {name!r} must not contain '/'")
    scenario = entry.get("scenario")
    _require(
        isinstance(scenario, str) and bool(scenario),
        f"grid {name!r} needs a non-empty string 'scenario'",
    )
    _require(
        scenario not in FORBIDDEN_SCENARIOS,
        f"grid {name!r}: scenario {scenario!r} cannot be nested inside a campaign",
    )
    params = entry.get("params", {})
    _require(isinstance(params, dict), f"grid {name!r}: 'params' must be a JSON object")
    sweep = entry.get("sweep", {})
    _require(isinstance(sweep, dict), f"grid {name!r}: 'sweep' must be a JSON object")
    for key, values in sweep.items():
        _require(
            isinstance(values, list) and len(values) > 0,
            f"grid {name!r}: sweep axis {key!r} must be a non-empty list",
        )
        _require(
            key not in params,
            f"grid {name!r}: {key!r} is both fixed in 'params' and swept in 'sweep'",
        )
    depends_on = entry.get("depends_on", [])
    _require(
        isinstance(depends_on, list) and all(isinstance(d, str) for d in depends_on),
        f"grid {name!r}: 'depends_on' must be a list of grid names",
    )
    unknown = set(entry) - {"name", "scenario", "params", "sweep", "depends_on"}
    _require(not unknown, f"grid {name!r}: unknown field(s) {sorted(unknown)}")
    return CampaignGrid(
        name=name,
        scenario=scenario,
        params=dict(params),
        sweep={key: list(values) for key, values in sweep.items()},
        depends_on=tuple(depends_on),
    )


def parse_spec(raw: Any) -> CampaignSpec:
    """Validate a decoded JSON object into a :class:`CampaignSpec`."""
    _require(isinstance(raw, dict), "campaign spec must be a JSON object")
    name = raw.get("name")
    _require(isinstance(name, str) and bool(name), "spec needs a non-empty string 'name'")
    # The name seeds the default run-directory path (runs/<name>-<digest>),
    # so it must not be able to escape it.
    _require(
        re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9 ._-]*", name) is not None,
        f"spec name {name!r} may contain only letters, digits, spaces, "
        "dots, underscores and dashes (and must start alphanumeric)",
    )
    description = raw.get("description", "")
    _require(isinstance(description, str), "'description' must be a string")
    grids_raw = raw.get("grids")
    _require(
        isinstance(grids_raw, list) and len(grids_raw) > 0,
        "spec needs a non-empty 'grids' list",
    )
    unknown = set(raw) - {"name", "description", "grids"}
    _require(not unknown, f"unknown top-level field(s) {sorted(unknown)}")

    grids = tuple(_parse_grid(entry, position) for position, entry in enumerate(grids_raw))
    names = [grid.name for grid in grids]
    _require(len(set(names)) == len(names), f"duplicate grid names in {names}")
    known = set(names)
    for grid in grids:
        missing = [dep for dep in grid.depends_on if dep not in known]
        _require(
            not missing,
            f"grid {grid.name!r} depends on unknown grid(s) {missing}",
        )
        _require(
            grid.name not in grid.depends_on,
            f"grid {grid.name!r} depends on itself",
        )
    spec = CampaignSpec(name=name, description=description, grids=grids, raw=dict(raw))
    _topological_order(spec.grids)  # raises on cycles
    return spec


def load_spec(path: str | Path) -> CampaignSpec:
    """Read and validate a campaign spec from a JSON file."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CampaignSpecError(f"{path}: invalid JSON: {error}") from None
    return parse_spec(raw)


def _topological_order(grids: tuple[CampaignGrid, ...]) -> tuple[str, ...]:
    """Kahn topological sort of the grid DAG, stable in spec order."""
    by_name = {grid.name: grid for grid in grids}
    remaining = {grid.name: set(grid.depends_on) for grid in grids}
    order: list[str] = []
    while remaining:
        ready = [name for name in (g.name for g in grids)
                 if name in remaining and not remaining[name]]
        if not ready:
            cycle = sorted(remaining)
            raise CampaignSpecError(f"grid dependency cycle among {cycle}")
        for name in ready:
            order.append(name)
            del remaining[name]
        for pending in remaining.values():
            pending.difference_update(ready)
    assert len(order) == len(by_name)
    return tuple(order)


def expand_spec(spec: CampaignSpec, registry=None) -> CampaignPlan:
    """Expand a spec into its deterministic job list.

    When ``registry`` (a :class:`repro.service.registry.ScenarioRegistry`) is
    given, every grid's scenario and parameter names are validated against it
    and each job's parameters are canonicalized against the scenario defaults
    before hashing — so ``{"seed": 0}`` and ``{}`` land on one digest, exactly
    as the service worker pool canonicalizes submissions.
    """
    from ..service.workers import job_digest

    jobs: list[CampaignJob] = []
    for grid in spec.grids:
        defaults: Mapping[str, Any] | None = None
        if registry is not None:
            try:
                declared = registry.get(grid.scenario)
            except ValueError as error:
                raise CampaignSpecError(f"grid {grid.name!r}: {error}") from None
            defaults = declared.defaults
            unknown = sorted(
                (set(grid.params) | set(grid.sweep)) - set(defaults)
            )
            _require(
                not unknown,
                f"grid {grid.name!r}: unknown parameter(s) {unknown} for scenario "
                f"{grid.scenario!r}; accepted: {sorted(defaults)}",
            )
        for index, cell_params in enumerate(grid.cells()):
            params = {**defaults, **cell_params} if defaults is not None else cell_params
            jobs.append(
                CampaignJob(
                    cell=f"{grid.name}/{index}",
                    grid=grid.name,
                    index=index,
                    scenario=grid.scenario,
                    params=params,
                    digest=job_digest(grid.scenario, params),
                )
            )
    return CampaignPlan(
        spec=spec, jobs=tuple(jobs), stage_order=_topological_order(spec.grids)
    )
