"""Declarative campaign specs: JSON parameter grids over registry scenarios.

A campaign spec describes a *scenario space* instead of a single run: each
grid names one registry scenario (``prune_tensor``, ``simulate``,
``quantize_tensor``, any experiment, ...), fixes some parameters, and sweeps
others over lists of values.  Expansion takes the Cartesian product of every
grid's swept axes and yields one :class:`CampaignJob` per cell, each carrying
the stable content digest that the runner uses for checkpointing, resumption,
and work deduplication.

Spec layout (JSON object)::

    {
      "name": "pruning-grid",
      "description": "optional free text",
      "grids": [
        {
          "name": "pruning",
          "scenario": "prune_tensor",
          "params": {"rows": 64, "cols": 256},          # fixed for the grid
          "sweep": {                                     # one axis per key
            "num_columns": [2, 4],
            "strategy": ["rounded_average", "zero_point_shift"]
          },
          "depends_on": ["calibration"]                  # optional grid DAG
        }
      ]
    }

``depends_on`` edges order whole grids: a grid's jobs are dispatched only
after every job of its dependency grids has finished, which models
compress-then-simulate style pipelines.  The resulting graph must be acyclic.

Instead of ``scenario``, a grid may name a codec of the :mod:`repro.codecs`
registry directly — the sugar desugars onto the ``codec_compress`` scenario::

    {"name": "mx-sweep", "codec": "microscaling",
     "params": {"rows": 64}, "sweep": {"bits": [4, 6, 8]}}

Tensor-source keys (``rows``/``cols``/``seed``/``scale``) stay scenario-level
parameters; every other fixed/swept key is validated against the codec's
``param_schema()`` and folded into its nested parameter object.  A key that
exists in *both* namespaces (e.g. ``noisyquant``'s ``seed``) feeds both — one
value drives the synthetic tensor and the codec alike, exactly as the legacy
``quantize_tensor`` scenario behaved.  Likewise a
``pipeline:`` grid sweeps a chained codec pipeline (its stage list is fixed;
only tensor-source axes may be swept)::

    {"name": "chain", "pipeline": [{"codec": "prune"}, {"codec": "ptq"}],
     "sweep": {"seed": [0, 1, 2]}}

Expansion is fully deterministic: axes are swept in sorted key order, cells
are numbered in row-major order over those axes, and the spec digest covers
the canonicalized spec, so two expansions of one spec agree byte-for-byte on
every digest — the property the resume machinery relies on.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..core.hashing import stable_digest

#: ``codec_compress`` parameters describing the tensor source; in ``codec:``
#: grids these stay scenario-level while everything else nests into the
#: codec's own parameter object.  One contract shared with the codec layer
#: and the ``/v1/compress`` endpoint.
from ..codecs import TENSOR_SOURCE_PARAMS as CODEC_SOURCE_PARAMS

__all__ = [
    "CODEC_SOURCE_PARAMS",
    "CampaignGrid",
    "CampaignJob",
    "CampaignPlan",
    "CampaignSpec",
    "CampaignSpecError",
    "expand_spec",
    "load_spec",
    "parse_spec",
]


class CampaignSpecError(ValueError):
    """A campaign spec is malformed or references unknown scenarios/params."""


#: Scenarios a campaign may not contain (running a campaign inside a campaign
#: would recurse without bound through the service registry).
FORBIDDEN_SCENARIOS = frozenset({"campaign"})




@dataclass(frozen=True)
class CampaignGrid:
    """One parameter grid over a single registry scenario.

    ``codec``/``pipeline`` record the sugar a grid was written with (see the
    module docstring); both desugar onto the ``codec_compress`` scenario.
    """

    name: str
    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, list] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()
    codec: str | None = None
    pipeline: tuple[dict, ...] | None = None

    def axes(self) -> list[tuple[str, list]]:
        """Swept axes in sorted key order (the deterministic cell order)."""
        return [(key, list(self.sweep[key])) for key in sorted(self.sweep)]

    def cell_count(self) -> int:
        count = 1
        for _, values in self.axes():
            count *= len(values)
        return count

    def cells(self) -> Iterable[dict[str, Any]]:
        """Yield the merged parameter dict of every cell, row-major.

        ``codec:``/``pipeline:`` grids desugar onto ``codec_compress``
        parameters with the codec-level parameters canonicalized against the
        codec's defaults, so ``{"bits": 6}`` and a fully spelled-out
        parameter dict land on one content digest — exactly how
        scenario-level parameters canonicalize against registry defaults.
        The fixed pipeline stage list is validated/canonicalized once per
        grid, not once per cell.
        """
        from ..codecs import CodecError, get_codec, validate_stages

        codec = stages = None
        try:
            if self.pipeline is not None:
                stages = validate_stages(list(self.pipeline))
            elif self.codec is not None:
                codec = get_codec(self.codec)
        except CodecError as error:
            raise CampaignSpecError(f"grid {self.name!r}: {error}") from None

        axes = self.axes()
        keys = [key for key, _ in axes]
        for combo in itertools.product(*(values for _, values in axes)):
            merged = {**self.params, **dict(zip(keys, combo, strict=True))}
            if stages is not None:
                source = {k: v for k, v in merged.items() if k in CODEC_SOURCE_PARAMS}
                yield {
                    **source,
                    "codec": "pipeline",
                    "stages": [
                        {"codec": s["codec"], "params": dict(s["params"])}
                        for s in stages
                    ],
                }
            elif codec is not None:
                # A key living in both namespaces (e.g. noisyquant's "seed")
                # feeds both the tensor source and the codec, matching the
                # legacy quantize_tensor scenario where one seed drove the
                # synthetic matrix and the dither alike.
                schema = set(codec.defaults)
                source = {k: v for k, v in merged.items() if k in CODEC_SOURCE_PARAMS}
                codec_params = {
                    k: v for k, v in merged.items()
                    if k not in CODEC_SOURCE_PARAMS or k in schema
                }
                try:
                    canonical = codec.validate_params(codec_params)
                except CodecError as error:
                    raise CampaignSpecError(f"grid {self.name!r}: {error}") from None
                yield {**source, "codec": self.codec, "params": canonical}
            else:
                yield merged


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated campaign: named grids forming a DAG."""

    name: str
    description: str
    grids: tuple[CampaignGrid, ...]
    raw: dict = field(repr=False)
    #: Optional per-job wall-clock budget: the dispatcher submits every cell
    #: with this ``deadline_s``, so one wedged job cannot stall a campaign.
    deadline_s: float | None = None

    def digest(self) -> str:
        """Stable digest of the canonicalized spec (the campaign identity)."""
        return stable_digest("repro-campaign-spec", self.canonical())

    def canonical(self) -> dict:
        """The spec reduced to exactly the fields that determine its jobs.

        ``codec``/``pipeline`` sugar appears only when used, so the digests
        of plain ``scenario`` specs are unchanged from earlier revisions.
        """
        grids = []
        for grid in self.grids:
            entry: dict = {
                "name": grid.name,
                "params": dict(grid.params),
                "sweep": {key: list(values) for key, values in grid.sweep.items()},
                "depends_on": list(grid.depends_on),
            }
            # Sugar grids keep their codec/pipeline form (the scenario is
            # derived on parse), so the canonical spec round-trips through
            # parse_spec — resume re-reads exactly this.
            if grid.codec is not None:
                entry["codec"] = grid.codec
            elif grid.pipeline is not None:
                entry["pipeline"] = [dict(stage) for stage in grid.pipeline]
            else:
                entry["scenario"] = grid.scenario
            grids.append(entry)
        canonical: dict = {
            "name": self.name,
            "description": self.description,
            "grids": grids,
        }
        # Only present when set, so the digests of every pre-deadline spec
        # are unchanged — and a deadline does not change *what* is computed,
        # but it bounds each attempt, which is execution policy worth pinning
        # in the campaign identity the way shard layout is not.  That makes
        # these reads a deliberate exception to the digest-exclusion rule
        # (which targets per-job digests, where deadline_s must stay out).
        if self.deadline_s is not None:  # repro: ignore[digest-purity]
            canonical["deadline_s"] = self.deadline_s  # repro: ignore[digest-purity]
        return canonical


@dataclass(frozen=True)
class CampaignJob:
    """One expanded cell: a scenario invocation with concrete parameters."""

    cell: str  #: ``"<grid>/<index>"`` — stable human-readable cell id
    grid: str
    index: int
    scenario: str
    params: dict
    digest: str  #: content digest of ``(scenario, canonicalized params)``


@dataclass(frozen=True)
class CampaignPlan:
    """A fully expanded campaign: every job, in deterministic order."""

    spec: CampaignSpec
    jobs: tuple[CampaignJob, ...]
    #: Grid names in topological (dispatch) order.
    stage_order: tuple[str, ...]

    def spec_digest(self) -> str:
        return self.spec.digest()

    def jobs_for_grid(self, grid: str) -> list[CampaignJob]:
        return [job for job in self.jobs if job.grid == grid]

    def shard(self, shard_index: int, shard_count: int) -> "CampaignPlan":
        """Deterministic round-robin shard of every grid's cells.

        Sharding is per-grid (cell ``index % shard_count``) rather than over
        the flat job list so each shard holds a slice of *every* grid and a
        grid's ``depends_on`` edges stay meaningful inside a single shard.
        """
        if shard_count <= 0:
            raise CampaignSpecError("shard_count must be positive")
        if not 0 <= shard_index < shard_count:
            raise CampaignSpecError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        if shard_count == 1:
            return self
        kept = tuple(
            job for job in self.jobs if job.index % shard_count == shard_index
        )
        return CampaignPlan(spec=self.spec, jobs=kept, stage_order=self.stage_order)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignSpecError(message)


def _parse_grid(entry: Any, position: int) -> CampaignGrid:
    _require(isinstance(entry, dict), f"grids[{position}] must be a JSON object")
    name = entry.get("name", f"grid{position}")
    _require(isinstance(name, str) and name, f"grids[{position}].name must be a non-empty string")
    _require("/" not in name, f"grid name {name!r} must not contain '/'")

    scenario = entry.get("scenario")
    codec = entry.get("codec")
    pipeline = entry.get("pipeline")
    declared = [key for key in ("scenario", "codec", "pipeline") if entry.get(key) is not None]
    _require(
        len(declared) == 1,
        f"grid {name!r} needs exactly one of 'scenario', 'codec', or "
        f"'pipeline' (got {declared or 'none'})",
    )
    if codec is not None:
        _require(
            isinstance(codec, str) and bool(codec),
            f"grid {name!r}: 'codec' must be a non-empty string",
        )
        scenario = "codec_compress"
    elif pipeline is not None:
        _require(
            isinstance(pipeline, list) and len(pipeline) > 0,
            f"grid {name!r}: 'pipeline' must be a non-empty list of stages",
        )
        scenario = "codec_compress"
    else:
        _require(
            isinstance(scenario, str) and bool(scenario),
            f"grid {name!r} needs a non-empty string 'scenario'",
        )
    _require(
        scenario not in FORBIDDEN_SCENARIOS,
        f"grid {name!r}: scenario {scenario!r} cannot be nested inside a campaign",
    )
    params = entry.get("params", {})
    _require(isinstance(params, dict), f"grid {name!r}: 'params' must be a JSON object")
    sweep = entry.get("sweep", {})
    _require(isinstance(sweep, dict), f"grid {name!r}: 'sweep' must be a JSON object")
    for key, values in sweep.items():
        _require(
            isinstance(values, list) and len(values) > 0,
            f"grid {name!r}: sweep axis {key!r} must be a non-empty list",
        )
        _require(
            key not in params,
            f"grid {name!r}: {key!r} is both fixed in 'params' and swept in 'sweep'",
        )
    depends_on = entry.get("depends_on", [])
    _require(
        isinstance(depends_on, list) and all(isinstance(d, str) for d in depends_on),
        f"grid {name!r}: 'depends_on' must be a list of grid names",
    )
    unknown = set(entry) - {"name", "scenario", "codec", "pipeline", "params", "sweep", "depends_on"}
    _require(not unknown, f"grid {name!r}: unknown field(s) {sorted(unknown)}")

    grid = CampaignGrid(
        name=name,
        scenario=scenario,
        params=dict(params),
        sweep={key: list(values) for key, values in sweep.items()},
        depends_on=tuple(depends_on),
        codec=codec,
        pipeline=tuple(dict(stage) for stage in pipeline) if pipeline is not None else None,
    )
    _validate_codec_grid(grid)
    return grid


def _validate_codec_grid(grid: CampaignGrid) -> None:
    """Early validation of ``codec:``/``pipeline:`` sugar (parse time).

    Codec names, stage lists, and codec parameter names are checked against
    the :mod:`repro.codecs` registry so a typo fails ``parse_spec`` — the
    same place scenario-level mistakes fail — instead of every expanded cell.
    """
    if grid.codec is None and grid.pipeline is None:
        return
    from ..codecs import CodecError, get_codec, validate_stages

    _require(
        grid.codec != "pipeline",
        f"grid {grid.name!r}: write pipelines with the 'pipeline' grid field "
        "(a stage list), not codec: \"pipeline\" — stage lists are validated "
        "and canonicalized only through that form",
    )
    grid_keys = set(grid.params) | set(grid.sweep)
    try:
        if grid.pipeline is not None:
            validate_stages(list(grid.pipeline))
            foreign = sorted(grid_keys - set(CODEC_SOURCE_PARAMS))
            _require(
                not foreign,
                f"grid {grid.name!r}: pipeline grids may only set/sweep the "
                f"tensor-source parameters {sorted(CODEC_SOURCE_PARAMS)}; "
                f"got {foreign} (stage parameters belong in the stage objects)",
            )
        else:
            codec = get_codec(grid.codec)
            codec_keys = grid_keys - set(CODEC_SOURCE_PARAMS)
            codec.validate_params(dict.fromkeys(codec_keys))
    except CodecError as error:
        raise CampaignSpecError(f"grid {grid.name!r}: {error}") from None


def parse_spec(raw: Any) -> CampaignSpec:
    """Validate a decoded JSON object into a :class:`CampaignSpec`."""
    _require(isinstance(raw, dict), "campaign spec must be a JSON object")
    name = raw.get("name")
    _require(isinstance(name, str) and bool(name), "spec needs a non-empty string 'name'")
    # The name seeds the default run-directory path (runs/<name>-<digest>),
    # so it must not be able to escape it.
    _require(
        re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9 ._-]*", name) is not None,
        f"spec name {name!r} may contain only letters, digits, spaces, "
        "dots, underscores and dashes (and must start alphanumeric)",
    )
    description = raw.get("description", "")
    _require(isinstance(description, str), "'description' must be a string")
    grids_raw = raw.get("grids")
    _require(
        isinstance(grids_raw, list) and len(grids_raw) > 0,
        "spec needs a non-empty 'grids' list",
    )
    unknown = set(raw) - {"name", "description", "grids", "deadline_s"}
    _require(not unknown, f"unknown top-level field(s) {sorted(unknown)}")
    deadline_s = raw.get("deadline_s")
    if deadline_s is not None:
        _require(
            isinstance(deadline_s, (int, float))
            and not isinstance(deadline_s, bool)
            and deadline_s > 0,
            "'deadline_s' must be a positive number of seconds",
        )
        deadline_s = float(deadline_s)

    grids = tuple(_parse_grid(entry, position) for position, entry in enumerate(grids_raw))
    names = [grid.name for grid in grids]
    _require(len(set(names)) == len(names), f"duplicate grid names in {names}")
    known = set(names)
    for grid in grids:
        missing = [dep for dep in grid.depends_on if dep not in known]
        _require(
            not missing,
            f"grid {grid.name!r} depends on unknown grid(s) {missing}",
        )
        _require(
            grid.name not in grid.depends_on,
            f"grid {grid.name!r} depends on itself",
        )
    spec = CampaignSpec(
        name=name,
        description=description,
        grids=grids,
        raw=dict(raw),
        deadline_s=deadline_s,
    )
    _topological_order(spec.grids)  # raises on cycles
    return spec


def load_spec(path: str | Path) -> CampaignSpec:
    """Read and validate a campaign spec from a JSON file."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CampaignSpecError(f"{path}: invalid JSON: {error}") from None
    return parse_spec(raw)


def _topological_order(grids: tuple[CampaignGrid, ...]) -> tuple[str, ...]:
    """Kahn topological sort of the grid DAG, stable in spec order."""
    by_name = {grid.name: grid for grid in grids}
    remaining = {grid.name: set(grid.depends_on) for grid in grids}
    order: list[str] = []
    while remaining:
        ready = [name for name in (g.name for g in grids)
                 if name in remaining and not remaining[name]]
        if not ready:
            cycle = sorted(remaining)
            raise CampaignSpecError(f"grid dependency cycle among {cycle}")
        for name in ready:
            order.append(name)
            del remaining[name]
        for pending in remaining.values():
            pending.difference_update(ready)
    assert len(order) == len(by_name)
    return tuple(order)


def expand_spec(spec: CampaignSpec, registry=None) -> CampaignPlan:
    """Expand a spec into its deterministic job list.

    When ``registry`` (a :class:`repro.service.registry.ScenarioRegistry`) is
    given, every grid's scenario and parameter names are validated against it
    and each job's parameters are canonicalized against the scenario defaults
    before hashing — so ``{"seed": 0}`` and ``{}`` land on one digest, exactly
    as the service worker pool canonicalizes submissions.
    """
    from ..service.workers import job_digest

    jobs: list[CampaignJob] = []
    for grid in spec.grids:
        defaults: Mapping[str, Any] | None = None
        if registry is not None:
            try:
                declared = registry.get(grid.scenario)
            except ValueError as error:
                raise CampaignSpecError(f"grid {grid.name!r}: {error}") from None
            defaults = declared.defaults
            if grid.codec is None and grid.pipeline is None:
                unknown = sorted(
                    (set(grid.params) | set(grid.sweep)) - set(defaults)
                )
                _require(
                    not unknown,
                    f"grid {grid.name!r}: unknown parameter(s) {unknown} for scenario "
                    f"{grid.scenario!r}; accepted: {sorted(defaults)}",
                )
            else:
                # codec:/pipeline: sugar — grid keys were validated against
                # the codec registry at parse time; only the tensor-source
                # keys must exist on the scenario this sugar desugars onto.
                foreign = sorted(
                    (set(grid.params) | set(grid.sweep))
                    & set(CODEC_SOURCE_PARAMS) - set(defaults)
                )
                _require(
                    not foreign,
                    f"grid {grid.name!r}: parameter(s) {foreign} not accepted by "
                    f"scenario {grid.scenario!r}",
                )
        for index, cell_params in enumerate(grid.cells()):
            params = {**defaults, **cell_params} if defaults is not None else cell_params
            jobs.append(
                CampaignJob(
                    cell=f"{grid.name}/{index}",
                    grid=grid.name,
                    index=index,
                    scenario=grid.scenario,
                    params=params,
                    digest=job_digest(grid.scenario, params),
                )
            )
    return CampaignPlan(
        spec=spec, jobs=tuple(jobs), stage_order=_topological_order(spec.grids)
    )
