"""Campaign execution: sharded runs over the worker pool, with checkpoints.

A campaign run owns a *run directory*::

    <run_dir>/
      spec.json            # the campaign spec, verbatim (resume re-reads it)
      manifest.json        # the expanded plan: every cell + its digest
      results/<digest>.json  # one checkpoint per completed job
      state.json           # last run's wall-clock stats (not part of the report)
      report.json          # aggregate report (written once all cells exist)
      report.csv           # the same cells as one rectangular table

Execution walks the grid DAG in topological order and ships each grid's
pending cells to a :class:`repro.service.workers.WorkerPool` (threads by
default, processes on request) — so a campaign is sharded across workers
exactly like service traffic, and identical cells inside one run collapse
onto a single computation through the pool's content-hash
:class:`~repro.core.cache.ResultCache` (worker processes additionally reuse
model/tensor artifacts through :mod:`repro.core.memo`).

Checkpoints make runs resumable: a cell whose ``results/<digest>.json``
already exists is never recomputed — killing a campaign after N of M jobs
and resuming runs exactly ``M - N`` jobs, and because the report is built
only from the manifest order and the checkpoint payloads, the resumed
aggregate is byte-identical to an uninterrupted run.  Multi-machine sharding
uses the same mechanism: ``shard 2/4`` runs every grid's cells with
``index % 4 == 2`` into a shared run directory, and the report is written by
whichever shard completes the manifest last (or by ``repro campaign report``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..eval.reporting import to_jsonable
from ..obs import trace as obs_trace
from ..obs.timing import timed
from .report import build_report, report_csv, serialize_report
from .spec import (
    CampaignJob,
    CampaignPlan,
    CampaignSpec,
    CampaignSpecError,
    expand_spec,
    load_spec,
    parse_spec,
)

__all__ = ["CampaignRunError", "CampaignRunner", "job_timing", "run_campaign"]


def job_timing(pool_job) -> dict:
    """Per-cell timing provenance from a finished pool job.

    Becomes the checkpoint's ``"timing"`` block: wall clock (submit to
    finish), the queue/run split, the worker that executed the cell, and
    whether it was served from cache.  Consumed by
    :func:`repro.obs.summary.summarize_run_dir`; never part of reports.
    """
    wall = None
    if pool_job.finished_at is not None and pool_job.submitted_at is not None:
        wall = max(pool_job.finished_at - pool_job.submitted_at, 0.0)
    return {
        "wall_seconds": wall,
        "queue_seconds": pool_job.queue_seconds,
        "run_seconds": pool_job.run_seconds,
        "worker": pool_job.worker,
        "cache_hit": pool_job.cache_hit,
    }


class CampaignRunError(RuntimeError):
    """One or more campaign cells failed; the run directory keeps the rest."""

    def __init__(self, failures: list[tuple[CampaignJob, str]]):
        self.failures = failures
        summary = ", ".join(job.cell for job, _ in failures[:5])
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(
            f"{len(failures)} campaign cell(s) failed: {summary}{more}; "
            "completed cells are checkpointed — fix and `repro campaign resume`"
        )


def _write_atomic(path: Path, text: str) -> None:
    """Write via a same-directory temp file + rename so readers never see
    a torn checkpoint (a killed run leaves either no file or a whole one)."""
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class CampaignRunner:
    """Execute (or resume) one campaign into a run directory."""

    def __init__(
        self,
        spec: CampaignSpec,
        run_dir: str | Path,
        jobs: int = 1,
        use_processes: bool = False,
        shard_index: int = 0,
        shard_count: int = 1,
        max_jobs: int | None = None,
        registry=None,
        ingest_db: str | Path | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_jobs is not None and max_jobs < 0:
            raise ValueError("max_jobs must be >= 0")
        self.spec = spec
        self.run_dir = Path(run_dir)
        #: Warehouse database to auto-ingest into when the report is written
        #: (``repro campaign run --ingest DB``); ``None`` disables.
        self.ingest_db = ingest_db
        self.jobs = jobs
        self.use_processes = use_processes
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.max_jobs = max_jobs
        if registry is None:
            from ..service.registry import build_default_registry

            registry = build_default_registry()
        self.registry = registry
        self.plan = expand_spec(spec, registry=registry)
        self.stats: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def resume(cls, run_dir: str | Path, **kwargs) -> "CampaignRunner":
        """Rebuild a runner from a run directory's own ``spec.json``."""
        run_dir = Path(run_dir)
        spec_path = run_dir / "spec.json"
        if not spec_path.is_file():
            raise CampaignSpecError(
                f"{run_dir} is not a campaign run directory (no spec.json)"
            )
        return cls(load_spec(spec_path), run_dir, **kwargs)

    # ------------------------------------------------------------------ #
    # Run-directory layout
    # ------------------------------------------------------------------ #

    @property
    def results_dir(self) -> Path:
        return self.run_dir / "results"

    def _result_path(self, digest: str) -> Path:
        return self.results_dir / f"{digest}.json"

    def completed_digests(self) -> set[str]:
        """Digests of every checkpointed cell currently in the run directory."""
        wanted = {job.digest for job in self.plan.jobs}
        return {
            path.stem
            for path in self.results_dir.glob("*.json")
            if path.stem in wanted
        }

    def load_results(self) -> dict[str, Any]:
        """Read every checkpoint payload, keyed by digest."""
        results: dict[str, Any] = {}
        for digest in self.completed_digests():
            with open(self._result_path(digest)) as stream:
                results[digest] = json.load(stream)["result"]
        return results

    def prepare_run_dir(self) -> None:
        """Create the run directory, pin ``spec.json``, write the manifest.

        Shared by local execution (:meth:`run`) and the federated dispatcher
        (:mod:`repro.campaign.dispatch`), so both produce identical layouts.
        """
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(exist_ok=True)
        spec_path = self.run_dir / "spec.json"
        canonical = self.spec.canonical()
        if spec_path.is_file():
            existing = parse_spec(json.loads(spec_path.read_text()))
            if existing.digest() != self.spec.digest():
                raise CampaignSpecError(
                    f"{spec_path} holds a different campaign "
                    f"({existing.name!r}, digest {existing.digest()[:12]}...); "
                    "use a fresh --run-dir for a changed spec"
                )
        else:
            _write_atomic(spec_path, json.dumps(canonical, indent=2, sort_keys=True) + "\n")
        manifest = {
            "campaign": self.spec.name,
            "spec_digest": self.plan.spec_digest(),
            "stage_order": list(self.plan.stage_order),
            "total_cells": len(self.plan.jobs),
            "cells": [
                {
                    "cell": job.cell,
                    "grid": job.grid,
                    "scenario": job.scenario,
                    "params": to_jsonable(job.params),
                    "digest": job.digest,
                }
                for job in self.plan.jobs
            ],
        }
        _write_atomic(
            self.run_dir / "manifest.json",
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> dict:
        """Execute every pending cell of this shard; return the run stats.

        When the whole manifest (all shards) is checkpointed afterwards, the
        aggregate ``report.json``/``report.csv`` are (re)written as well and
        the returned stats carry ``"report_written": True``.
        """
        from ..core.cache import ResultCache
        from ..service.jobs import JobState
        from ..service.workers import WorkerPool

        failures: list[tuple[CampaignJob, str]] = []
        report_written = False
        # The root span makes this run one trace: pool.submit captures the
        # active context, so every cell's job.run (and its codec spans)
        # nests under campaign.run.
        with timed("campaign.run") as timer, obs_trace.span(
            "campaign.run",
            attrs={"campaign": self.spec.name, "run_dir": str(self.run_dir)},
        ):
            self.prepare_run_dir()
            shard_plan = self.plan.shard(self.shard_index, self.shard_count)
            completed = self.completed_digests()

            pool = WorkerPool(
                self.registry,
                cache=ResultCache(max_entries=max(256, len(shard_plan.jobs))),
                max_workers=self.jobs,
                use_processes=self.use_processes,
            )
            executed = 0
            skipped = 0
            budget_left = self.max_jobs
            failed_grids: set[str] = set()
            interrupted = False
            try:
                for grid_name in shard_plan.stage_order:
                    grid = next(g for g in self.spec.grids if g.name == grid_name)
                    if any(dep in failed_grids for dep in grid.depends_on):
                        failed_grids.add(grid_name)  # dependents of failures stay pending
                        continue
                    pending = [
                        job
                        for job in shard_plan.jobs_for_grid(grid_name)
                        if job.digest not in completed
                    ]
                    skipped += len(shard_plan.jobs_for_grid(grid_name)) - len(pending)
                    if budget_left is not None:
                        if budget_left == 0 and pending:
                            interrupted = True
                            break
                        pending = pending[:budget_left]
                    # One grid is a barrier (its cells may be another grid's
                    # dependency); inside it, cells fan out across the pool.
                    in_flight = [
                        (job, pool.submit(
                            job.scenario, job.params,
                            deadline_s=self.spec.deadline_s,
                        ))
                        for job in pending
                    ]
                    for job, pool_job in in_flight:
                        pool_job.wait()
                        if pool_job.state is JobState.FAILED:
                            failures.append((job, pool_job.error or "unknown error"))
                            failed_grids.add(grid_name)
                            continue
                        self.checkpoint(job, pool_job.result, timing=job_timing(pool_job))
                        completed.add(job.digest)
                        executed += 1
                    if budget_left is not None:
                        budget_left -= len(in_flight)
                        if budget_left <= 0 and self._shard_pending(shard_plan, completed):
                            interrupted = True
                            break
            finally:
                pool.shutdown()

            if not failures and not interrupted:
                # Re-glob rather than trusting the start-of-run snapshot: in a
                # shared run directory other shards may have checkpointed cells
                # while this shard executed, and the last finisher must notice.
                completed = self.completed_digests()
                if not self._plan_pending(completed):
                    self.write_report()
                    report_written = True

        self.stats = {
            "campaign": self.spec.name,
            "spec_digest": self.plan.spec_digest(),
            "run_dir": str(self.run_dir),
            "shard": {"index": self.shard_index, "count": self.shard_count},
            "total_cells": len(self.plan.jobs),
            "shard_cells": len(shard_plan.jobs),
            "executed": executed,
            "skipped_checkpointed": skipped,
            "failed": len(failures),
            "interrupted": interrupted,
            "report_written": report_written,
            "elapsed_seconds": timer.seconds,
            "pool": pool.stats(),
        }
        _write_atomic(
            self.run_dir / "state.json",
            json.dumps(to_jsonable(self.stats), indent=2, sort_keys=True) + "\n",
        )
        if failures:
            raise CampaignRunError(failures)
        return self.stats

    def _shard_pending(self, shard_plan: CampaignPlan, completed: set[str]) -> bool:
        return any(job.digest not in completed for job in shard_plan.jobs)

    def _plan_pending(self, completed: set[str]) -> bool:
        return any(job.digest not in completed for job in self.plan.jobs)

    def checkpoint(
        self, job: CampaignJob, result: Any, timing: dict | None = None
    ) -> None:
        """Atomically persist one cell's result as ``results/<digest>.json``.

        ``timing`` is per-cell latency provenance (wall clock, queue/run
        split, worker identity) for ``repro obs summary``.  It lives as a
        *sibling* of ``result``: :meth:`load_results` reads only the result
        payload and reports are built purely from results + manifest order,
        so timing never leaks into ``report.json``/``report.csv`` — those
        must stay byte-identical across local, resumed, and federated runs.
        """
        payload = {
            "cell": job.cell,
            "grid": job.grid,
            "scenario": job.scenario,
            "params": to_jsonable(job.params),
            "digest": job.digest,
            "result": to_jsonable(result),
        }
        if timing is not None:
            payload["timing"] = to_jsonable(timing)
        _write_atomic(
            self._result_path(job.digest),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def build_report(self) -> dict:
        """Aggregate the checkpointed results (raises if any cell is missing)."""
        return build_report(self.plan, self.load_results())

    def write_report(self) -> dict:
        """Build and persist ``report.json`` + ``report.csv``; return the report.

        With :attr:`ingest_db` set, the finished run is also ingested into
        that warehouse database (idempotent by digest, so re-reporting or
        resuming never duplicates rows).
        """
        report = self.build_report()
        _write_atomic(self.run_dir / "report.json", serialize_report(report))
        _write_atomic(self.run_dir / "report.csv", report_csv(report))
        if self.ingest_db is not None:
            from .. import warehouse

            conn = warehouse.connect(self.ingest_db)
            try:
                warehouse.ingest_run_dir(conn, self.run_dir)
            finally:
                conn.close()
        return report


def run_campaign(
    spec: dict | CampaignSpec,
    jobs: int = 1,
    run_dir: str | Path | None = None,
    **kwargs,
) -> dict:
    """Run a campaign start-to-finish and return its aggregate report.

    The service's ``campaign`` scenario uses this entry point: with no
    ``run_dir`` the checkpoints live in a temporary directory that is removed
    afterwards (the report is the product; the service cache keeps it).
    """
    if not isinstance(spec, CampaignSpec):
        spec = parse_spec(spec)
    if run_dir is not None:
        runner = CampaignRunner(spec, run_dir, jobs=jobs, **kwargs)
        runner.run()
        return runner.build_report()
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as scratch:
        runner = CampaignRunner(spec, scratch, jobs=jobs, **kwargs)
        runner.run()
        return runner.build_report()
