"""Federated campaign execution: fan cells out over remote ``repro serve`` nodes.

The dispatcher takes the same expanded, content-addressed plan the local
:class:`~repro.campaign.runner.CampaignRunner` executes, but ships each cell
to one of N remote service endpoints (``repro serve``) instead of a local
worker pool.  Everything else is deliberately identical:

* the run directory layout (``spec.json``/``manifest.json``/``results/``) is
  produced by the same :class:`CampaignRunner` code path;
* each finished cell is checkpointed atomically as ``results/<digest>.json``
  with the same payload bytes a local run writes;
* the aggregate ``report.json``/``report.csv`` are built only from the
  manifest order and the checkpoint payloads.

So a campaign dispatched across machines produces a report **byte-identical**
to a local run, resumes idempotently (checkpointed cells are never
re-sent), and tolerates node loss: when a node stops answering, its
outstanding cells are reassigned to the surviving nodes, and a fully dead
fleet fails the dispatch with the checkpoints intact — re-dispatching (or
running locally) finishes the remainder.

Grid DAG semantics match the local runner: a grid's cells are dispatched only
after its dependency grids completed, and grids depending on a failed grid
stay pending.  Load balancing is pull-based: each node holds at most
``max_inflight`` cells, so fast nodes drain more of the queue and a node's
``max_queued`` backpressure limit is respected by construction.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..eval.reporting import to_jsonable
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics
from ..obs.timing import timed
from ..service.client import (
    ServiceClient,
    ServiceError,
    ServiceRequestError,
    ServiceUnavailable,
)
from .runner import CampaignRunError, CampaignRunner, _write_atomic
from .spec import CampaignJob, CampaignSpec

__all__ = ["CampaignDispatcher", "DispatchError", "dispatch_campaign"]

_COOLDOWNS_TOTAL = get_metrics().counter(
    "repro_dispatch_cooldowns_total",
    "Dispatcher 429-saturation cooldowns (node window shrunk, cell parked).",
)

#: Remote job states that end a cell.
_TERMINAL = ("done", "failed", "cancelled")

#: A cell is failed (not retried forever) once it has been (re)submitted
#: this many times without reaching a checkpoint — the backstop against a
#: persistently broken cell (e.g. a result the node cannot serialize)
#: turning the dispatch loop into a livelock.
MAX_CELL_ATTEMPTS = 5


class DispatchError(RuntimeError):
    """No reachable node is left to run the remaining cells."""


def _codec_uses(job: CampaignJob) -> list[tuple[str, dict]]:
    """Every ``(codec name, params)`` pair a ``codec_compress`` job invokes."""
    if job.scenario != "codec_compress":
        return []
    uses: list[tuple[str, dict]] = []
    name = job.params.get("codec")
    if isinstance(name, str) and name:
        uses.append((name, dict(job.params.get("params") or {})))
    for stage in job.params.get("stages") or []:
        if isinstance(stage, dict) and isinstance(stage.get("codec"), str):
            uses.append((stage["codec"], dict(stage.get("params") or {})))
    return uses


@dataclass
class _Node:
    """One remote endpoint and what the dispatcher knows about it."""

    url: str
    client: ServiceClient
    alive: bool = True
    reason: str = ""
    outstanding: int = 0
    completed: int = 0
    submitted: int = 0
    #: Current submission window; shrunk when the node reports saturation.
    window: int = 1
    #: Monotonic time before which a saturated node is not offered new cells.
    cooldown_until: float = 0.0

    def summary(self) -> dict:
        summary = {
            "url": self.url,
            "alive": self.alive,
            "reason": self.reason,
            "submitted": self.submitted,
            "completed": self.completed,
        }
        # Real ServiceClients carry a circuit breaker; test doubles may not.
        breaker = getattr(self.client, "breaker", None)
        if breaker is not None:
            summary["breaker"] = breaker.stats()
        return summary


@dataclass
class _Cell:
    """One in-flight cell: where it currently runs and under which remote id."""

    job: CampaignJob
    node: _Node
    remote_id: str
    attempts: int = field(default=1)
    #: The cell's ``dispatch.cell`` span, open from first submission until
    #: checkpoint or give-up; reassignments keep (and re-propagate) it, so
    #: one cell is one span however many nodes it visited.
    span: obs_trace.Span | None = field(default=None, repr=False)
    #: Wall-clock first-submission time, surviving reassignments — the basis
    #: of the checkpoint's ``wall_seconds``.
    started_at: float = field(default_factory=time.time)


class CampaignDispatcher:
    """Execute (or resume) one campaign across remote service endpoints."""

    def __init__(
        self,
        spec: CampaignSpec,
        endpoints: list[str],
        run_dir: str | Path,
        registry=None,
        poll_interval: float = 0.05,
        max_inflight: int = 8,
        client_factory=ServiceClient,
        client_options: dict | None = None,
        ingest_db: str | None = None,
        gateway: str | None = None,
    ):
        # Gateway mode: one front-door URL replaces the node list — the
        # gateway routes each cell by content digest, so the dispatcher's
        # own load balancing degenerates to a single "node" while routing,
        # failover, and cache affinity happen behind the URL.
        self.gateway = gateway.rstrip("/") if gateway else None
        if self.gateway is not None:
            if endpoints:
                raise ValueError("pass either endpoints or gateway=, not both")
            endpoints = [self.gateway]
        if not endpoints:
            raise ValueError("at least one service endpoint is required")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        # The runner provides the identical run-dir layout, checkpointing,
        # and report machinery (including --ingest auto-warehousing); the
        # dispatcher only replaces execution.
        self.runner = CampaignRunner(spec, run_dir, registry=registry, ingest_db=ingest_db)
        self.spec = self.runner.spec
        self.plan = self.runner.plan
        self.run_dir = self.runner.run_dir
        self.poll_interval = poll_interval
        self.max_inflight = max_inflight
        options = dict(client_options or {})
        self.nodes = [
            _Node(url.rstrip("/"), client_factory(url, **options), window=max_inflight)
            for url in endpoints
        ]
        self._rr = 0  # round-robin tiebreak between equally loaded nodes
        self.stats: dict[str, Any] = {}
        self._cooldowns = 0
        self._root_span: obs_trace.Span | None = None

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #

    def _alive_nodes(self) -> list[_Node]:
        return [node for node in self.nodes if node.alive]

    def _mark_dead(self, node: _Node, reason: str) -> None:
        node.alive = False
        node.reason = reason

    def _probe_nodes(self) -> None:
        """Health-check and registry-validate every node before submitting.

        Beyond liveness, each node's ``GET /v1/scenarios`` listing is checked
        against every scenario and parameter name the plan will submit —
        registry skew (a node built from a different revision) is caught at
        probe time instead of burning submissions.  A node down or skewed at
        start is skipped, not fatal.
        """
        requirements: dict[str, set[str]] = {}
        codec_requirements: dict[str, set[str]] = {}
        for job in self.plan.jobs:
            requirements.setdefault(job.scenario, set()).update(job.params)
            for name, params in _codec_uses(job):
                codec_requirements.setdefault(name, set()).update(params)
        for node in self.nodes:
            try:
                node.client.health()
                for scenario, param_names in sorted(requirements.items()):
                    node.client.validate_job(scenario, dict.fromkeys(param_names))
                if codec_requirements:
                    self._validate_node_codecs(node, codec_requirements)
            except ServiceError as error:
                self._mark_dead(node, f"health check failed: {error}")
            except ValueError as error:
                self._mark_dead(node, f"registry skew: {error}")
        if not self._alive_nodes():
            raise DispatchError(self._dead_fleet_message())

    @staticmethod
    def _validate_node_codecs(node: _Node, required: dict[str, set[str]]) -> None:
        """Check the node's ``/v1/codecs`` against every codec the plan uses.

        ``codec_compress`` cells pass the scenario-level probe on any node —
        their codec identity lives in nested parameters — so codec-level skew
        (a missing plugin codec, an older codec schema) must be caught here
        or every affected cell burns its submission retries at run time.
        """
        available = {
            entry["name"]: set(entry.get("params", {}))
            for entry in node.client.codecs()
        }
        for name, param_names in sorted(required.items()):
            if name not in available:
                raise ValueError(
                    f"{node.url}: codec {name!r} is not registered on the node; "
                    f"available: {sorted(available)}"
                )
            unknown = sorted(param_names - available[name])
            if unknown:
                raise ValueError(
                    f"{node.url}: codec {name!r} does not accept parameter(s) "
                    f"{unknown}; accepted: {sorted(available[name])}"
                )

    def _dead_fleet_message(self) -> str:
        details = "; ".join(f"{node.url}: {node.reason}" for node in self.nodes)
        return f"no reachable service node left ({details})"

    def _pick_node(self, ignore_window: bool = False) -> _Node | None:
        """Least-loaded alive node under ``max_inflight``, round-robin on ties.

        ``ignore_window=True`` (used when reassigning a dead node's cells,
        which must land *somewhere*) picks the least-loaded alive node even
        if every window is full.
        """
        candidates = self._alive_nodes()
        if not ignore_window:
            now = time.monotonic()
            candidates = [
                n for n in candidates
                if n.outstanding < n.window and now >= n.cooldown_until
            ]
        if not candidates:
            return None
        load = min(node.outstanding for node in candidates)
        tied = [node for node in candidates if node.outstanding == load]
        self._rr += 1
        return tied[self._rr % len(tied)]

    # ------------------------------------------------------------------ #
    # Cell submission / completion
    # ------------------------------------------------------------------ #

    def _submit_cell(
        self,
        job: CampaignJob,
        attempts: int = 1,
        ignore_window: bool = False,
        cell_span: obs_trace.Span | None = None,
        started_at: float | None = None,
    ) -> _Cell:
        """Submit one cell to some alive node, failing over on dead ones.

        The cell's ``dispatch.cell`` span (created on first submission,
        reused on reassignments) is *activated* around the submit call, so
        the client propagates it in ``X-Repro-Trace`` and the remote node's
        ``http.request``/``job.run`` spans become its children — one
        connected trace per cell across machines.
        """
        if cell_span is None:
            cell_span = obs_trace.start_span(
                "dispatch.cell",
                attrs={"cell": job.cell, "grid": job.grid, "scenario": job.scenario},
                parent=self._root_span.context if self._root_span else None,
            )
        if started_at is None:
            started_at = time.time()
        while True:
            node = self._pick_node(ignore_window=ignore_window)
            if node is None and self._alive_nodes():
                # A failover mid-submit can leave every survivor at its
                # window limit; the cell still has to land somewhere.
                node = self._pick_node(ignore_window=True)
            if node is None:
                cell_span.finish(error="no reachable node left")
                raise DispatchError(self._dead_fleet_message())
            # The spec's per-job budget rides along on every cell (only when
            # set, so client doubles without the kwarg keep working).
            submit_kwargs: dict = {}
            if getattr(self.spec, "deadline_s", None) is not None:
                submit_kwargs["deadline_s"] = self.spec.deadline_s
            try:
                with obs_trace.activate(cell_span):
                    record = node.client.submit(
                        job.scenario, to_jsonable(job.params), **submit_kwargs
                    )
            except ServiceUnavailable as error:
                if error.saturated:
                    # A full queue (429 through every retry) is backpressure,
                    # not death: shrink the node's window, let it cool down,
                    # and place the cell elsewhere (or wait for a drain).
                    node.window = max(1, node.outstanding)
                    node.cooldown_until = time.monotonic() + max(self.poll_interval, 0.05)
                    self._cooldowns += 1
                    _COOLDOWNS_TOTAL.inc()
                    if self._pick_node() is None:
                        time.sleep(max(self.poll_interval, 0.05))
                    continue
                self._mark_dead(node, str(error))
                continue
            except ServiceRequestError as error:
                # The node rejected the submission outright (e.g. its registry
                # does not know the scenario): version skew — refuse the node,
                # keep the cell for the rest of the fleet.
                self._mark_dead(node, f"rejected {job.cell}: {error}")
                continue
            if record.get("digest") != job.digest:
                # The node canonicalizes against a different registry than the
                # local plan: its results would be checkpointed under the
                # wrong content address.  Refuse the node, not the cell.
                self._mark_dead(
                    node,
                    f"digest mismatch for cell {job.cell} (local {job.digest[:12]}..., "
                    f"remote {str(record.get('digest'))[:12]}...): registry skew",
                )
                continue
            node.outstanding += 1
            node.submitted += 1
            cell_span.set_attr("node", node.url)
            return _Cell(
                job=job,
                node=node,
                remote_id=record["job_id"],
                attempts=attempts,
                span=cell_span,
                started_at=started_at,
            )

    def _reassign(self, cell: _Cell, reason: str) -> _Cell:
        """Move a dead node's cell to a surviving node (window ignored)."""
        self._mark_dead(cell.node, reason)
        cell.node.outstanding = 0
        return self._submit_cell(
            cell.job,
            attempts=cell.attempts + 1,
            ignore_window=True,
            cell_span=cell.span,
            started_at=cell.started_at,
        )

    @staticmethod
    def _cell_timing(cell: _Cell, record: dict) -> dict:
        """Provenance block for a remotely executed cell's checkpoint.

        Mirrors :func:`repro.campaign.runner.job_timing` for local runs, with
        the node URL as the worker identity; ``wall_seconds`` spans from first
        submission, so reassignments and retries are included.
        """
        worker = cell.node.url
        remote_worker = record.get("worker")
        if isinstance(remote_worker, str) and remote_worker:
            worker = f"{worker}#{remote_worker}"
        return {
            "wall_seconds": max(time.time() - cell.started_at, 0.0),
            "queue_seconds": record.get("queue_seconds"),
            "run_seconds": record.get("run_seconds"),
            "worker": worker,
            "cache_hit": record.get("cache_hit"),
            "attempts": cell.attempts,
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> dict:
        """Dispatch every pending cell; return the run stats.

        Writes the aggregate report when the whole manifest is checkpointed
        (exactly like a completing local run) and raises
        :class:`~repro.campaign.runner.CampaignRunError` when cells failed
        remotely, or :class:`DispatchError` when every node died.
        """
        executed = 0
        skipped = 0
        failures: list[tuple[CampaignJob, str]] = []
        failed_grids: set[str] = set()
        report_written = False
        # The root span is created but NOT activated for the whole run: cell
        # spans parent to it explicitly, while the poll-loop GETs stay out of
        # the trace (hundreds of poll requests would drown the cell tree).
        self._root_span = obs_trace.start_span(
            "campaign.dispatch",
            attrs={
                "campaign": self.spec.name,
                "run_dir": str(self.run_dir),
                "nodes": [node.url for node in self.nodes],
            },
        )
        with timed("campaign.dispatch") as timer:
            try:
                self.runner.prepare_run_dir()
                completed = self.runner.completed_digests()
                self._probe_nodes()

                for grid_name in self.plan.stage_order:
                    grid = next(g for g in self.spec.grids if g.name == grid_name)
                    if any(dep in failed_grids for dep in grid.depends_on):
                        failed_grids.add(grid_name)  # dependents of failures stay pending
                        continue
                    grid_jobs = self.plan.jobs_for_grid(grid_name)
                    pending = [job for job in grid_jobs if job.digest not in completed]
                    skipped += len(grid_jobs) - len(pending)
                    executed += self._run_grid(
                        grid_name, pending, completed, failures, failed_grids
                    )

                if not failures:
                    completed = self.runner.completed_digests()
                    if not any(job.digest not in completed for job in self.plan.jobs):
                        self.runner.write_report()
                        report_written = True
            finally:
                self._root_span.finish(status="error" if failures else "ok")

        self.stats = {
            "campaign": self.spec.name,
            "spec_digest": self.plan.spec_digest(),
            "run_dir": str(self.run_dir),
            "mode": "gateway" if self.gateway is not None else "dispatch",
            "trace_id": self._root_span.trace_id,
            "nodes": [node.summary() for node in self.nodes],
            "total_cells": len(self.plan.jobs),
            "executed": executed,
            "skipped_checkpointed": skipped,
            "failed": len(failures),
            "report_written": report_written,
            "elapsed_seconds": timer.seconds,
            "client": self._client_summary(),
        }
        _write_atomic(
            self.run_dir / "state.json",
            json.dumps(to_jsonable(self.stats), indent=2, sort_keys=True) + "\n",
        )
        if failures:
            raise CampaignRunError(failures)
        return self.stats

    def _client_summary(self) -> dict:
        """Aggregate retry/cooldown counts for the end-of-run summary.

        Tolerates client doubles without the retry tally (tests inject
        factories); real :class:`ServiceClient` instances always have it.
        """
        total = 0
        by_reason: dict[str, int] = {}
        for node in self.nodes:
            tally = getattr(node.client, "retries_by_reason", None) or {}
            for reason, count in tally.items():
                by_reason[reason] = by_reason.get(reason, 0) + count
                total += count
        return {
            "retries": total,
            "retries_by_reason": dict(sorted(by_reason.items())),
            "cooldowns_429": self._cooldowns,
        }

    def _run_grid(
        self,
        grid_name: str,
        pending: list[CampaignJob],
        completed: set[str],
        failures: list[tuple[CampaignJob, str]],
        failed_grids: set[str],
    ) -> int:
        """Fan one grid's pending cells over the fleet; return cells executed."""
        queue = list(pending)
        outstanding: dict[str, _Cell] = {}  # digest -> in-flight cell
        executed = 0
        idle_sleep = self.poll_interval

        while queue or outstanding:
            # Keep every node's window full (fast nodes pull more cells).
            while queue and self._pick_node() is not None:
                cell = self._submit_cell(queue.pop(0))
                outstanding[cell.job.digest] = cell

            progressed = False
            for digest, cell in list(outstanding.items()):
                if not cell.node.alive:
                    # The node died while other cells were being handled; do
                    # not burn a full retry cycle against it per cell.
                    outstanding[digest] = self._submit_cell(
                        cell.job,
                        attempts=cell.attempts + 1,
                        ignore_window=True,
                        cell_span=cell.span,
                        started_at=cell.started_at,
                    )
                    progressed = True
                    continue
                try:
                    record = cell.node.client.job(cell.remote_id)
                    if record["state"] == "done":
                        record = cell.node.client.result(cell.remote_id)
                except ServiceUnavailable as error:
                    outstanding[digest] = self._reassign(cell, str(error))
                    progressed = True
                    continue
                except ServiceRequestError as error:
                    # Usually the remote job store evicted this record (its
                    # finished history is bounded) and the result is still in
                    # the node's content-hash cache, so resubmitting is an
                    # instant hit.  Bounded, because a *persistent* error
                    # (e.g. a result the node cannot serialize is a 500 on
                    # every fetch) would otherwise livelock the dispatch.
                    cell.node.outstanding = max(cell.node.outstanding - 1, 0)
                    del outstanding[digest]
                    progressed = True
                    if cell.attempts >= MAX_CELL_ATTEMPTS:
                        failures.append(
                            (cell.job,
                             f"gave up after {cell.attempts} attempt(s): {error}")
                        )
                        failed_grids.add(grid_name)
                        if cell.span is not None:
                            cell.span.finish(
                                error=f"gave up after {cell.attempts} attempt(s)"
                            )
                    else:
                        outstanding[digest] = self._submit_cell(
                            cell.job,
                            attempts=cell.attempts + 1,
                            ignore_window=True,
                            cell_span=cell.span,
                            started_at=cell.started_at,
                        )
                    continue
                if record["state"] not in _TERMINAL:
                    continue
                cell.node.outstanding = max(cell.node.outstanding - 1, 0)
                del outstanding[digest]
                progressed = True
                if record["state"] == "done":
                    self.runner.checkpoint(
                        cell.job, record["result"], timing=self._cell_timing(cell, record)
                    )
                    completed.add(digest)
                    cell.node.completed += 1
                    executed += 1
                    if cell.span is not None:
                        cell.span.set_attr("attempts", cell.attempts)
                        cell.span.finish()
                else:
                    failures.append(
                        (cell.job, record.get("error") or f"remote job {record['state']}")
                    )
                    failed_grids.add(grid_name)
                    if cell.span is not None:
                        cell.span.finish(error=f"remote job {record['state']}")
            if progressed:
                idle_sleep = self.poll_interval
            elif queue or outstanding:
                # Sweeps that find nothing back off (capped at 1s) so a grid
                # of slow cells is not polled at full tilt for minutes.
                time.sleep(idle_sleep)
                idle_sleep = min(idle_sleep * 1.5, 1.0)
        return executed


def dispatch_campaign(
    spec: dict | CampaignSpec,
    endpoints: list[str],
    run_dir: str | Path,
    **kwargs,
) -> dict:
    """Dispatch a campaign across ``endpoints`` and return the run stats."""
    from .spec import parse_spec

    if not isinstance(spec, CampaignSpec):
        spec = parse_spec(spec)
    return CampaignDispatcher(spec, endpoints, run_dir, **kwargs).run()
