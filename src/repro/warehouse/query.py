"""Query layer over the warehouse: filters, sorting, and Pareto frontiers.

One text syntax serves the CLI (``repro warehouse query --where ...``) and
the HTTP API (``GET /v1/results?where=...``): a filter is ``NAME OP VALUE``
with ``OP`` one of ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.  ``NAME`` is
either a cell identity column (``digest``, ``cell``, ``grid``, ``scenario``,
``codec``, ``campaign``, ``run_dir``, ``spec_digest``, ``source``) or any
flattened metric leaf (``mse``, ``effective_bits``, ``params.bits``, ...).
``VALUE`` is parsed as JSON when possible (numbers compare numerically) and
as a bare string otherwise::

    effective_bits<4
    codec=prune
    params.bits>=6

Filtering happens in SQL (an ``EXISTS`` probe per metric filter, so the
``metrics_by_name`` index does the work); the matched cells are then
pivoted into flat row dicts — identity columns plus every metric leaf —
and sorted/paginated deterministically (ties break on digest).  A cell
without a filtered metric never matches that filter, including for ``!=``.

:func:`pareto_front` reduces any row set to its two-metric Pareto frontier
(minimizing by default, per-axis ``maximize`` flags), which is how "best
codec under 4 effective bits" style questions get their short answer.
"""

from __future__ import annotations

import json
import re
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics

__all__ = [
    "CELL_FIELDS",
    "Filter",
    "QueryError",
    "cell_detail",
    "default_columns",
    "parse_filter",
    "pareto_front",
    "query_cells",
]

_QUERY_SECONDS = get_metrics().histogram(
    "repro_warehouse_query_seconds",
    "Warehouse query latency (filter + pivot + sort).",
)

#: Identity columns answered straight from ``cells``/``runs`` (name -> SQL).
CELL_FIELDS: dict[str, str] = {
    "digest": "c.digest",
    "cell": "c.cell",
    "grid": "c.grid",
    "scenario": "c.scenario",
    "codec": "c.codec",
    "campaign": "r.campaign",
    "run_dir": "r.run_dir",
    "spec_digest": "r.spec_digest",
    "source": "r.source",
}

#: Comparison operators, longest first so ``<=`` wins over ``<``.
_OPERATORS = ("<=", ">=", "!=", "=", "<", ">")

_NAME_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


class QueryError(ValueError):
    """A filter expression or query option could not be understood."""


@dataclass(frozen=True)
class Filter:
    """One parsed ``NAME OP VALUE`` comparison."""

    name: str
    op: str
    value: Any

    def describe(self) -> str:
        """The filter back as its textual form (error messages, spans)."""
        return f"{self.name}{self.op}{json.dumps(self.value)}"


def parse_filter(text: str) -> Filter:
    """Parse one ``NAME OP VALUE`` expression into a :class:`Filter`.

    The value is JSON-decoded when possible, so ``bits=4`` compares
    numerically while ``codec=prune`` compares as text; quoting a number
    (``cell="4"``) forces a text comparison.
    """
    text = text.strip()
    for op in _OPERATORS:
        index = text.find(op)
        if index > 0:
            name, raw_value = text[:index].strip(), text[index + len(op):].strip()
            if not _NAME_PATTERN.match(name):
                raise QueryError(f"invalid column name {name!r} in filter {text!r}")
            if not raw_value:
                raise QueryError(f"missing value in filter {text!r}")
            try:
                value = json.loads(raw_value)
            except json.JSONDecodeError:
                value = raw_value
            if isinstance(value, (dict, list)):
                raise QueryError(
                    f"filter {text!r} compares against a JSON container; "
                    "only scalar values are comparable"
                )
            if isinstance(value, bool):
                value = int(value)  # metrics store booleans as 0/1
            return Filter(name, op, value)
    raise QueryError(
        f"cannot parse filter {text!r}; expected NAME OP VALUE with OP one of "
        f"{list(_OPERATORS)}"
    )


def parse_filters(texts: Iterable[str]) -> list[Filter]:
    """Parse several filter expressions (the CLI's repeated ``--where``)."""
    return [parse_filter(text) for text in texts]


def default_columns(filters: Sequence[Filter], sort: str | None) -> list[str]:
    """The presentation columns implied by a query: identity + referenced.

    Shared by the CLI's table output and ``GET /v1/results`` so both
    surfaces answer the same shape unless the caller asks for explicit
    columns: the stable identity set, then every metric named in a filter
    or the sort key, in first-use order.
    """
    columns = ["digest", "cell", "scenario", "codec"]
    for name in [flt.name for flt in filters] + ([sort] if sort else []):
        if name not in columns:
            columns.append(name)
    return columns


def _filter_clause(flt: Filter) -> tuple[str, list]:
    """One filter as ``(SQL condition, bind parameters)``."""
    if flt.op not in _OPERATORS:
        raise QueryError(f"unsupported operator {flt.op!r}")
    sql_op = "==" if flt.op == "=" else flt.op
    if flt.name in CELL_FIELDS:
        return f"{CELL_FIELDS[flt.name]} {sql_op} ?", [flt.value]
    if not _NAME_PATTERN.match(flt.name):
        raise QueryError(f"invalid column name {flt.name!r}")
    return (
        "EXISTS (SELECT 1 FROM metrics m WHERE m.digest = c.digest "
        f"AND m.name = ? AND m.value {sql_op} ?)",
        [flt.name, flt.value],
    )


def _sort_key(column: str):
    """Deterministic ordering over heterogeneous rows.

    Missing values sort last, numbers before text, ties break on digest —
    so pagination is stable whatever mix of cells a filter matches.
    """

    def key(row: dict):
        """Rank one row: (type class, numeric value, text value, digest)."""
        value = row.get(column)
        if value is None:
            return (2, 0, "", row.get("digest", ""))
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return (1, 0, str(value), row.get("digest", ""))
        return (0, float(value), "", row.get("digest", ""))

    return key


def _pivot(conn: sqlite3.Connection, identity_rows: list[dict]) -> list[dict]:
    """Join each identity row with its flattened metric leaves.

    A result payload may carry leaves named like identity columns (a
    ``codec_compress`` record has its own ``digest`` and ``codec`` fields);
    identity wins, matching :func:`_filter_clause`, which also resolves
    those names to the identity columns.
    """
    rows_by_digest = {row["digest"]: dict(row) for row in identity_rows}
    digests = list(rows_by_digest)
    for start in range(0, len(digests), 500):  # SQLite bind-parameter limit
        chunk = digests[start:start + 500]
        placeholders = ",".join("?" * len(chunk))
        for digest, name, value in conn.execute(
            f"SELECT digest, name, value FROM metrics WHERE digest IN ({placeholders})",
            chunk,
        ):
            if name not in CELL_FIELDS:
                rows_by_digest[digest][name] = value
    return [rows_by_digest[digest] for digest in digests]


def query_cells(
    conn: sqlite3.Connection,
    filters: Sequence[Filter] = (),
    sort: str | None = None,
    descending: bool = False,
    offset: int = 0,
    limit: int | None = None,
    columns: Sequence[str] | None = None,
) -> tuple[list[dict], int]:
    """Run one warehouse query; returns ``(rows, total matched)``.

    ``rows`` are flat dicts (identity columns + metric leaves), sorted by
    ``sort`` (digest order when unset), windowed by ``offset``/``limit``
    *after* sorting, and restricted to ``columns`` when given (absent
    values become ``None`` so every row is rectangular).  ``total`` counts
    every match before the window — the HTTP pagination envelope's total.
    """
    if offset < 0:
        raise QueryError("offset must be >= 0")
    if limit is not None and limit < 0:
        raise QueryError("limit must be >= 0")
    started = time.perf_counter()
    with obs_trace.span(
        "warehouse.query",
        attrs={"filters": len(filters), "sort": sort or ""},
    ):
        conditions, parameters = [], []
        for flt in filters:
            clause, binds = _filter_clause(flt)
            conditions.append(clause)
            parameters.extend(binds)
        sql = (
            "SELECT c.digest, c.cell, c.grid, c.scenario, c.codec, "
            "r.campaign, r.run_dir, r.spec_digest, r.source "
            "FROM cells c JOIN runs r ON r.run_id = c.run_id"
        )
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += " ORDER BY c.digest"
        identity_rows = [dict(row) for row in conn.execute(sql, parameters)]
        total = len(identity_rows)
        rows = _pivot(conn, identity_rows)
        if sort is not None:
            rows.sort(key=_sort_key(sort), reverse=descending)
        rows = rows[offset:] if limit is None else rows[offset:offset + limit]
        if columns is not None:
            rows = [{column: row.get(column) for column in columns} for row in rows]
    _QUERY_SECONDS.observe(time.perf_counter() - started)
    return rows, total


def cell_detail(conn: sqlite3.Connection, digest: str) -> dict | None:
    """The full record of one cell: identity, params, result, metric leaves.

    ``None`` when the digest is unknown.  This is what
    ``GET /v1/results/<digest>`` answers — params and result come back as
    the parsed JSON payloads the checkpoint carried.
    """
    row = conn.execute(
        "SELECT c.digest, c.cell, c.grid, c.scenario, c.codec, c.params, "
        "c.result, r.campaign, r.run_dir, r.spec_digest, r.source "
        "FROM cells c JOIN runs r ON r.run_id = c.run_id WHERE c.digest = ?",
        (digest,),
    ).fetchone()
    if row is None:
        return None
    record = dict(row)
    record["params"] = json.loads(record["params"])
    record["result"] = json.loads(record["result"])
    record["metrics"] = {
        name: value
        for name, value in conn.execute(
            "SELECT name, value FROM metrics WHERE digest = ? ORDER BY name",
            (digest,),
        )
    }
    return record


def pareto_front(
    rows: Iterable[dict],
    x: str,
    y: str,
    maximize_x: bool = False,
    maximize_y: bool = False,
) -> list[dict]:
    """The Pareto-optimal subset of ``rows`` over metric columns ``x``/``y``.

    Both axes minimize by default (bits and MSE are costs); flip either
    with the ``maximize`` flags.  Rows missing a numeric value on either
    axis are excluded.  The frontier comes back sorted along ``x`` in the
    preferred direction, ties broken on digest — a row is kept when no
    other row is at least as good on both axes and better on one.
    """

    def numeric(row: dict, name: str) -> float | None:
        """The row's value for ``name`` as a float, or None if non-numeric."""
        value = row.get(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    candidates = []
    for row in rows:
        x_value, y_value = numeric(row, x), numeric(row, y)
        if x_value is None or y_value is None:
            continue
        cost_x = -x_value if maximize_x else x_value
        cost_y = -y_value if maximize_y else y_value
        candidates.append((cost_x, cost_y, row.get("digest", ""), row))

    candidates.sort(key=lambda item: (item[0], item[1], item[2]))
    frontier: list[dict] = []
    best_y = float("inf")
    for _cost_x, cost_y, _, row in candidates:
        if cost_y < best_y:
            frontier.append(row)
            best_y = cost_y
    return frontier
