"""SQLite schema and versioned migrations for the results warehouse.

The warehouse is one ordinary SQLite file (stdlib :mod:`sqlite3`, no server,
no dependencies) holding three tables:

``runs``
    One row per ingested source: a campaign run directory, a bare
    checkpoint collection, or a service node's journal+cache directory.
    Keyed on ``(source, run_dir, spec_digest)`` so re-ingesting the same
    source reuses its row.
``cells``
    One row per result, keyed on the **provenance digest** — the same
    content digest the campaign checkpoints, the worker-pool cache, and the
    job journal already use.  Content addressing is what makes ingest
    idempotent: the digest of identical work is identical everywhere, so a
    cell ingested twice (or from two nodes) lands on one row.
``metrics``
    The flattened scalar leaves of every cell's result payload (via
    :func:`repro.eval.reporting.flatten_scalars`) plus the cell's
    parameters under a ``params.`` prefix.  SQLite's dynamic typing keeps
    numbers numeric and labels textual in one ``value`` column, so filter
    expressions compare naturally either way.

Migrations are versioned and applied in order inside one transaction per
version; the applied version is stored in ``PRAGMA user_version``, so opening
an old warehouse upgrades it in place and opening a newer one than this code
understands fails loudly instead of corrupting it.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "SchemaError", "connect", "connect_readonly", "schema_version"]

#: The schema version this code writes; migrations below go up to here.
SCHEMA_VERSION = 1

#: ``{version: [statements]}`` applied in ascending order.  Append new
#: versions; never edit an existing one (old warehouses replay them).
MIGRATIONS: dict[int, tuple[str, ...]] = {
    1: (
        """
        CREATE TABLE runs (
            run_id      INTEGER PRIMARY KEY,
            source      TEXT NOT NULL,
            run_dir     TEXT NOT NULL,
            campaign    TEXT,
            spec_digest TEXT,
            UNIQUE (source, run_dir, spec_digest)
        )
        """,
        """
        CREATE TABLE cells (
            digest   TEXT PRIMARY KEY,
            run_id   INTEGER NOT NULL REFERENCES runs(run_id),
            cell     TEXT,
            grid     TEXT,
            scenario TEXT NOT NULL,
            codec    TEXT,
            params   TEXT NOT NULL,
            result   TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE metrics (
            digest TEXT NOT NULL REFERENCES cells(digest),
            name   TEXT NOT NULL,
            value,
            PRIMARY KEY (digest, name)
        ) WITHOUT ROWID
        """,
        "CREATE INDEX metrics_by_name ON metrics (name, value)",
        "CREATE INDEX cells_by_scenario ON cells (scenario)",
        "CREATE INDEX cells_by_codec ON cells (codec)",
    ),
}


class SchemaError(RuntimeError):
    """The warehouse file is newer than this code (or not a warehouse)."""


def schema_version(conn: sqlite3.Connection) -> int:
    """The migration version currently applied to ``conn``'s database."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def _apply_migrations(conn: sqlite3.Connection) -> None:
    """Bring the database up to :data:`SCHEMA_VERSION`, one version at a time."""
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise SchemaError(
            f"warehouse schema version {current} is newer than this code "
            f"understands ({SCHEMA_VERSION}); upgrade repro"
        )
    for version in range(current + 1, SCHEMA_VERSION + 1):
        with conn:  # one transaction per migration version
            for statement in MIGRATIONS[version]:
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version = {version}")


def connect(path: str | Path) -> sqlite3.Connection:
    """Open (creating and migrating as needed) a warehouse database.

    ``path`` may be ``":memory:"`` for a throwaway in-memory warehouse
    (tests); a file path gets its parent directory created.  Row access is
    by column name (:class:`sqlite3.Row`).
    """
    if path != ":memory:":
        Path(path).parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path))
    conn.row_factory = sqlite3.Row
    _apply_migrations(conn)
    return conn


def connect_readonly(path: str | Path) -> sqlite3.Connection:
    """Open an existing warehouse read-only (the HTTP server's access mode).

    Raises :class:`FileNotFoundError` if there is no database at ``path``
    and :class:`SchemaError` if it was written by a newer schema.  Never
    creates or migrates anything — a reader must not mutate the file the
    ingest side owns.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no warehouse database at {path}")
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    conn.row_factory = sqlite3.Row
    version = schema_version(conn)
    if version > SCHEMA_VERSION:
        conn.close()
        raise SchemaError(
            f"warehouse schema version {version} is newer than this code "
            f"understands ({SCHEMA_VERSION}); upgrade repro"
        )
    if version < 1:
        conn.close()
        raise SchemaError(f"{path} is not a repro warehouse (no schema applied)")
    return conn
