"""repro.warehouse — a queryable SQLite warehouse for campaign results.

Campaign runs, bare checkpoint files, and service node caches all stamp
results with the same content-addressed provenance digest; the warehouse
ingests any of them into one SQLite file (``runs``/``cells``/``metrics``
tables, stdlib :mod:`sqlite3` only) keyed on that digest, so ingest is
idempotent and results born on many nodes land in one queryable view.

Three surfaces answer questions over it: the ``repro warehouse
ingest/query/pareto`` CLI, ``GET /v1/results`` on the service API, and
:meth:`repro.service.client.ServiceClient.results` — all backed by
:func:`query_cells` and the shared ``NAME OP VALUE`` filter syntax
(:func:`parse_filter`).  See ``docs/query-cookbook.md`` for worked
recipes.
"""

from .ingest import IngestError, IngestStats, ingest_path, ingest_paths, ingest_run_dir
from .query import (
    CELL_FIELDS,
    Filter,
    QueryError,
    cell_detail,
    default_columns,
    pareto_front,
    parse_filter,
    parse_filters,
    query_cells,
)
from .schema import SCHEMA_VERSION, SchemaError, connect, connect_readonly, schema_version

__all__ = [
    "CELL_FIELDS",
    "Filter",
    "IngestError",
    "IngestStats",
    "QueryError",
    "SCHEMA_VERSION",
    "SchemaError",
    "cell_detail",
    "connect",
    "connect_readonly",
    "default_columns",
    "ingest_path",
    "ingest_paths",
    "ingest_run_dir",
    "pareto_front",
    "parse_filter",
    "parse_filters",
    "query_cells",
    "schema_version",
]
