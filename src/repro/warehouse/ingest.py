"""Ingest results into the warehouse: campaign runs, checkpoints, node caches.

Three source shapes, all keyed on the provenance digests the rest of the
stack already stamps on every result:

* **Campaign run directory** — a ``CampaignRunner``/``CampaignDispatcher``
  run dir: ``results/<digest>.json`` checkpoints, identity from
  ``manifest.json``.  Each checkpoint carries its cell/grid/scenario/params
  and the result payload.
* **Bare checkpoint file(s)** — one ``<digest>.json`` checkpoint, or a
  directory of them (a ``results/`` dir copied off a shard).
* **Service node directory** — a ``repro serve --journal DIR`` directory:
  the journal's ``submit`` lines provide scenario/params/digest and the
  persistent cache under ``DIR/cache`` provides the payloads, so results
  born from ad-hoc service traffic are queryable too.

Ingest is **idempotent by digest**: a cell whose digest is already present
is counted as a duplicate and skipped, so re-running ingest (or ingesting
the same campaign from two shards' directories) adds zero rows.  Torn or
otherwise invalid checkpoint files are skipped and counted — ingest of a
partially-written run directory never crashes.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..eval.reporting import flatten_scalars, to_jsonable
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics

__all__ = ["IngestError", "IngestStats", "ingest_path", "ingest_paths", "ingest_run_dir"]

_INGESTED = get_metrics().counter(
    "repro_warehouse_ingested_total",
    "Warehouse ingest outcomes per cell, by outcome "
    "(inserted, duplicate, invalid).",
    ("outcome",),
)


class IngestError(ValueError):
    """The path is not an ingestable source (no checkpoints, no journal)."""


@dataclass
class IngestStats:
    """Counters for one ingest pass (summed over sources by the CLI)."""

    sources: int = 0
    inserted: int = 0
    duplicates: int = 0
    invalid: int = 0
    invalid_files: list[str] = field(default_factory=list)

    def merge(self, other: "IngestStats") -> "IngestStats":
        """Fold another pass's counters into this one (returns self)."""
        self.sources += other.sources
        self.inserted += other.inserted
        self.duplicates += other.duplicates
        self.invalid += other.invalid
        self.invalid_files.extend(other.invalid_files)
        return self

    def to_jsonable(self) -> dict:
        """The stats as a plain JSON object (the CLI's ``--json`` output)."""
        return {
            "sources": self.sources,
            "inserted": self.inserted,
            "duplicates": self.duplicates,
            "invalid": self.invalid,
            "invalid_files": list(self.invalid_files),
        }


def _extract_codec(params: dict, result: Any) -> str | None:
    """Best-effort codec/backend identity of a cell, for the ``codec`` column.

    ``codec_compress`` results carry ``codec``, ``quantize_tensor`` carries
    ``backend`` (every backend name is also a codec name); campaign ``codec:``
    grids put the codec in the params.  Cells without either (experiments,
    simulate) have no codec identity and store NULL.
    """
    for source in (result if isinstance(result, dict) else {}, params):
        for key in ("codec", "backend"):
            value = source.get(key)
            if isinstance(value, str) and value:
                return value
    return None


def _metric_rows(digest: str, params: dict, result: Any) -> list[tuple[str, str, Any]]:
    """Flatten one cell into ``metrics`` rows: result leaves + ``params.*``.

    Booleans become integers (SQLite has no boolean storage class and
    ``sqlite3`` would store them as such anyway); non-scalar leaves are
    already scalars after :func:`flatten_scalars`.
    """
    leaves = flatten_scalars(result)
    leaves.update(flatten_scalars(params, prefix="params"))
    rows = []
    for name, value in leaves.items():
        if isinstance(value, bool):
            value = int(value)
        rows.append((digest, name, value))
    return rows


def _ingest_cell(
    conn: sqlite3.Connection,
    run_id: int,
    digest: str,
    scenario: str,
    params: dict,
    result: Any,
    cell: str | None = None,
    grid: str | None = None,
) -> bool:
    """Insert one cell (and its metrics) unless its digest already exists."""
    params = to_jsonable(params)
    result = to_jsonable(result)
    cursor = conn.execute(
        "INSERT INTO cells (digest, run_id, cell, grid, scenario, codec, params, result) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?) ON CONFLICT(digest) DO NOTHING",
        (
            digest,
            run_id,
            cell,
            grid,
            scenario,
            _extract_codec(params, result),
            json.dumps(params, sort_keys=True),
            json.dumps(result, sort_keys=True),
        ),
    )
    if cursor.rowcount == 0:
        _INGESTED.inc(outcome="duplicate")
        return False
    conn.executemany(
        "INSERT INTO metrics (digest, name, value) VALUES (?, ?, ?)",
        _metric_rows(digest, params, result),
    )
    _INGESTED.inc(outcome="inserted")
    return True


def _run_row(
    conn: sqlite3.Connection,
    source: str,
    run_dir: str,
    campaign: str | None,
    spec_digest: str | None,
) -> int:
    """Find or create the ``runs`` row for one ingest source; return its id."""
    conn.execute(
        "INSERT INTO runs (source, run_dir, campaign, spec_digest) "
        "VALUES (?, ?, ?, ?) ON CONFLICT(source, run_dir, spec_digest) DO NOTHING",
        (source, run_dir, campaign, spec_digest),
    )
    row = conn.execute(
        "SELECT run_id FROM runs WHERE source = ? AND run_dir = ? "
        "AND spec_digest IS ?",
        (source, run_dir, spec_digest),
    ).fetchone()
    return int(row[0])


def _load_checkpoint(path: Path) -> dict | None:
    """Parse one checkpoint file; ``None`` for torn/invalid content."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if not isinstance(payload.get("digest"), str) or not payload["digest"]:
        return None
    if not isinstance(payload.get("scenario"), str) or not payload["scenario"]:
        return None
    if not isinstance(payload.get("params"), dict) or "result" not in payload:
        return None
    return payload


def _ingest_checkpoint_files(
    conn: sqlite3.Connection, run_id: int, files: list[Path], stats: IngestStats
) -> None:
    """Ingest a list of checkpoint files, skipping (and counting) bad ones."""
    for path in sorted(files):
        payload = _load_checkpoint(path)
        if payload is None:
            stats.invalid += 1
            stats.invalid_files.append(str(path))
            _INGESTED.inc(outcome="invalid")
            continue
        inserted = _ingest_cell(
            conn,
            run_id,
            payload["digest"],
            payload["scenario"],
            payload["params"],
            payload["result"],
            cell=payload.get("cell"),
            grid=payload.get("grid"),
        )
        stats.inserted += inserted
        stats.duplicates += not inserted


def ingest_run_dir(conn: sqlite3.Connection, run_dir: str | Path) -> IngestStats:
    """Ingest one campaign run directory (``results/*.json`` checkpoints).

    Campaign identity (name + spec digest) comes from ``manifest.json``;
    a directory missing it (e.g. a copied-off ``results/`` dir) is ingested
    with NULL identity.  Partial runs are fine — whatever checkpoints exist
    are ingested, and a later re-ingest picks up only the new ones.
    """
    run_dir = Path(run_dir)
    results_dir = run_dir / "results" if (run_dir / "results").is_dir() else run_dir
    # A run dir's own housekeeping files are not checkpoints; skip them when
    # globbing a directory that holds its checkpoints at the top level.
    housekeeping = {"manifest.json", "spec.json", "report.json", "state.json"}
    files = [
        path for path in results_dir.glob("*.json") if path.name not in housekeeping
    ]
    campaign = spec_digest = None
    manifest_path = run_dir / "manifest.json"
    if manifest_path.is_file():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            campaign = manifest.get("campaign")
            spec_digest = manifest.get("spec_digest")
        except (OSError, json.JSONDecodeError):
            pass  # identity is best-effort; the checkpoints still ingest
    stats = IngestStats(sources=1)
    with obs_trace.span(
        "warehouse.ingest", attrs={"source": "campaign", "run_dir": str(run_dir)}
    ):
        with conn:
            run_id = _run_row(conn, "campaign", str(run_dir), campaign, spec_digest)
            _ingest_checkpoint_files(conn, run_id, files, stats)
    return stats


def _ingest_journal_dir(conn: sqlite3.Connection, directory: Path) -> IngestStats:
    """Ingest a ``repro serve --journal`` directory: journal + cache join.

    The journal's ``submit`` lines carry each job's scenario, params, and
    digest; the persistent cache holds the payload under
    ``cache/<digest>.json``.  Only digests with a cached payload ingest
    (an unfinished or uncached job has no result to warehouse); corrupt
    journal lines are simply skipped — the journal's own replay machinery
    owns quarantine.
    """
    journal_path = directory / "journal.jsonl"
    cache_dir = directory / "cache"
    stats = IngestStats(sources=1)
    submissions: dict[str, tuple[str, dict]] = {}
    try:
        lines = journal_path.read_text(encoding="utf-8").splitlines()
    except OSError:
        lines = []
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict) or record.get("event") != "submit":
            continue
        digest, scenario, params = (
            record.get("digest"), record.get("type"), record.get("params")
        )
        if isinstance(digest, str) and isinstance(scenario, str) and isinstance(params, dict):
            submissions[digest] = (scenario, params)
    with obs_trace.span(
        "warehouse.ingest", attrs={"source": "service", "run_dir": str(directory)}
    ):
        with conn:
            run_id = _run_row(conn, "service", str(directory), None, None)
            for digest in sorted(submissions):
                scenario, params = submissions[digest]
                payload_path = cache_dir / f"{digest}.json"
                if not payload_path.is_file():
                    continue
                try:
                    result = json.loads(payload_path.read_text(encoding="utf-8"))
                except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                    stats.invalid += 1
                    stats.invalid_files.append(str(payload_path))
                    _INGESTED.inc(outcome="invalid")
                    continue
                inserted = _ingest_cell(conn, run_id, digest, scenario, params, result)
                stats.inserted += inserted
                stats.duplicates += not inserted
    return stats


def ingest_path(conn: sqlite3.Connection, path: str | Path) -> IngestStats:
    """Ingest whatever ``path`` is: run dir, node dir, checkpoint file or dir.

    Dispatch order: a directory with a ``journal.jsonl`` is a service node
    directory; a directory with checkpoints (``results/`` or ``*.json``
    directly) is a campaign run dir; a single ``.json`` file is one
    checkpoint.  Anything else raises :class:`IngestError`.
    """
    path = Path(path)
    if path.is_dir():
        if (path / "journal.jsonl").is_file():
            return _ingest_journal_dir(conn, path)
        if (path / "results").is_dir() or list(path.glob("*.json")):
            return ingest_run_dir(conn, path)
        raise IngestError(
            f"{path} has neither checkpoints (results/*.json) nor a journal.jsonl"
        )
    if path.is_file():
        stats = IngestStats(sources=1)
        with obs_trace.span(
            "warehouse.ingest", attrs={"source": "checkpoint", "run_dir": str(path)}
        ):
            with conn:
                run_id = _run_row(conn, "checkpoint", str(path.parent), None, None)
                _ingest_checkpoint_files(conn, run_id, [path], stats)
        return stats
    raise IngestError(f"{path} does not exist")


def ingest_paths(conn: sqlite3.Connection, paths: list[str | Path]) -> IngestStats:
    """Ingest several sources into one warehouse; returns merged stats."""
    stats = IngestStats()
    for path in paths:
        stats.merge(ingest_path(conn, path))
    return stats
