"""The ``pipeline`` codec: chain codecs with per-stage metrics.

A pipeline is described by a ``stages`` list, each stage naming a registered
codec and its parameters::

    run_codec("pipeline", tensor, {"stages": [
        {"codec": "prune", "params": {"num_columns": 2}},
        {"codec": "ptq", "params": {"bits": 6}},
        {"codec": "bitplane", "params": {}},
    ]})

Each stage compresses the previous stage's reconstruction (the classic
prune -> quantize -> encode flow), so the final reconstruction reflects the
whole chain.  The result's ``stages`` field records, per stage, the MSE
against that stage's own input, the cumulative MSE against the pipeline's
original input, and the stage's storage footprint; the pipeline's own
``storage_bits`` is the *final* stage's footprint — that is the artifact a
deployment would actually store.

Pipelines are themselves codecs, so they appear in ``/v1/codecs``, can be
submitted through ``/v1/compress``, and can be swept by campaign
``pipeline:`` grids.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from ..core.metrics import mse as _mse
from ..obs.metrics import get_metrics
from ..obs.trace import span as _trace_span
from .base import Codec, CodecError, CompressionResult, StageMetrics
from .registry import get_codec, register_codec

__all__ = ["PipelineCodec", "validate_stages"]


def validate_stages(stages: Any) -> list[dict]:
    """Validate and canonicalize a pipeline ``stages`` list.

    Each entry must be ``{"codec": <registered name>, "params": {...}}``
    (``params`` optional); parameters are canonicalized against the stage
    codec's defaults so two spellings of the same pipeline share a digest.
    Nested pipelines are rejected — flatten the stages instead.
    """
    if not isinstance(stages, (list, tuple)) or not stages:
        raise CodecError('"stages" must be a non-empty list of stage objects')
    canonical: list[dict] = []
    for position, entry in enumerate(stages):
        if not isinstance(entry, Mapping):
            raise CodecError(f"stages[{position}] must be an object, got {entry!r}")
        unknown = sorted(set(entry) - {"codec", "params"})
        if unknown:
            raise CodecError(f"stages[{position}]: unknown field(s) {unknown}")
        name = entry.get("codec")
        if not isinstance(name, str) or not name:
            raise CodecError(f"stages[{position}] needs a non-empty string 'codec'")
        if name == PipelineCodec.name:
            raise CodecError(
                f"stages[{position}]: pipelines cannot nest; flatten the stages"
            )
        codec = get_codec(name)  # raises CodecError on unknown names
        params = entry.get("params", {})
        if not isinstance(params, Mapping):
            raise CodecError(f"stages[{position}]: 'params' must be an object")
        try:
            merged = codec.validate_params(params)
        except CodecError as error:
            raise CodecError(f"stages[{position}]: {error}") from None
        canonical.append({"codec": name, "params": merged})
    return canonical


@register_codec
class PipelineCodec(Codec):
    name = "pipeline"
    version = "1"
    summary = "Chain registered codecs (e.g. prune -> ptq -> bitplane) with per-stage metrics."
    defaults = {"stages": None}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        stages = validate_stages(params.get("stages"))
        original = np.asarray(tensor)

        current = original
        stage_metrics: list[StageMetrics] = []
        last: CompressionResult | None = None
        stage_seconds = get_metrics().histogram(
            "repro_pipeline_stage_seconds",
            "Per-stage compress latency inside pipeline codecs.",
            ("codec",),
        )
        for position, entry in enumerate(stages):
            codec = get_codec(entry["codec"])
            # One span + one latency sample per stage; timing stays out of
            # StageMetrics because those feed result payloads and campaign
            # reports, which must be byte-identical across runs.
            stage_start = time.perf_counter()
            with _trace_span(
                "pipeline.stage", attrs={"codec": codec.name, "position": position}
            ):
                result = codec.compress(current, **entry["params"])
            stage_seconds.observe(
                time.perf_counter() - stage_start, codec=codec.name
            )
            stage_metrics.append(
                StageMetrics(
                    codec=codec.name,
                    version=codec.version,
                    params=dict(entry["params"]),
                    stage_mse=float(result.mse()),
                    cumulative_mse=_mse(original, result.values),
                    effective_bits=float(result.effective_bits()),
                    storage_bits=float(result.storage_bits),
                )
            )
            current = result.values
            last = result

        assert last is not None  # validate_stages guarantees >= 1 stage
        return self._result(
            original,
            current,
            storage_bits=last.storage_bits,
            params={"stages": stages},
            payload=last,
            extras={"num_stages": float(len(stages))},
            stages=stage_metrics,
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Decode the final stage's artifact (the stored representation)."""
        if result.payload is None:
            return super().decompress(result)
        final: CompressionResult = result.payload
        return get_codec(final.codec).decompress(final)
